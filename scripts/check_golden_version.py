#!/usr/bin/env python
"""CI guard: golden fixtures may only change together with CODE_VERSION.

The golden tests pin the engine's exact event trajectories.  A diff
that touches ``tests/golden/*.json`` is therefore a statement that the
simulated sequence changed -- which is only legitimate as a deliberate
re-anchor, and every re-anchor must bump ``CODE_VERSION`` in
``src/repro/system/parallel.py`` (it keys the cross-process result
cache and the perf-snapshot comparability check).  This script fails
when a diff regenerates goldens while leaving CODE_VERSION untouched.

Usage::

    python scripts/check_golden_version.py --base origin/main

The diff is taken from ``--base`` to the working tree, so the check
works both in CI (where the tree is the PR head) and locally before
committing.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from typing import List, Optional, Sequence

GOLDEN_PREFIX = "tests/golden/"
VERSION_FILE = "src/repro/system/parallel.py"

_VERSION_RE = re.compile(r"^CODE_VERSION\s*=\s*[\"']([^\"']+)[\"']", re.MULTILINE)


def extract_code_version(source: str) -> Optional[str]:
    """The CODE_VERSION literal in ``source``, or None if absent."""
    match = _VERSION_RE.search(source)
    return match.group(1) if match else None


def golden_changes(paths: Sequence[str]) -> List[str]:
    """The golden fixture files among the changed ``paths``."""
    return [
        path
        for path in paths
        if path.startswith(GOLDEN_PREFIX) and path.endswith(".json")
    ]


def check(
    changed_paths: Sequence[str],
    base_version: Optional[str],
    head_version: Optional[str],
) -> List[str]:
    """Error messages for the diff; empty when the diff is acceptable."""
    goldens = golden_changes(changed_paths)
    if not goldens:
        return []
    if base_version is None or head_version is None:
        return [
            f"golden fixtures changed but CODE_VERSION could not be read "
            f"from {VERSION_FILE} "
            f"(base: {base_version!r}, head: {head_version!r})"
        ]
    if base_version == head_version:
        listing = ", ".join(sorted(goldens))
        return [
            f"golden fixtures changed without a CODE_VERSION bump "
            f"(still {head_version!r}): {listing}",
            f"every golden regeneration is a re-anchor of the event "
            f"trajectories; bump CODE_VERSION in {VERSION_FILE} in the "
            f"same change (see EXPERIMENTS.md, 're-anchoring the "
            f"trajectory')",
        ]
    return []


def _git(*args: str) -> str:
    return subprocess.run(
        ["git", *args], check=True, capture_output=True, text=True
    ).stdout


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--base", default="origin/main",
        help="ref the working tree is diffed against (default: origin/main)",
    )
    args = parser.parse_args(argv)

    merge_base = _git("merge-base", args.base, "HEAD").strip()
    changed = _git("diff", "--name-only", merge_base).split()
    try:
        base_source = _git("show", f"{merge_base}:{VERSION_FILE}")
    except subprocess.CalledProcessError:
        base_source = ""
    try:
        with open(VERSION_FILE, encoding="utf-8") as handle:
            head_source = handle.read()
    except OSError:
        head_source = ""

    errors = check(
        changed,
        extract_code_version(base_source),
        extract_code_version(head_source),
    )
    for error in errors:
        print(f"check_golden_version: {error}", file=sys.stderr)
    if not errors:
        goldens = golden_changes(changed)
        state = (
            f"{len(goldens)} golden fixture(s) changed with a CODE_VERSION bump"
            if goldens
            else "no golden fixtures changed"
        )
        print(f"check_golden_version: OK ({state})", file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    raise SystemExit(main())
