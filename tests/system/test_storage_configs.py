"""Integration tests for the storage-allocation configurations
(the Fig 4.3 / Fig 4.4 code paths end to end)."""

import pytest

from repro.db.schema import StorageKind
from repro.system.cluster import Cluster
from repro.system.runner import run_simulation

from tests.helpers import bt_storage_config as config_with_bt_storage


class TestGemResidentPartition:
    def test_force_writes_go_to_gem(self):
        config = config_with_bt_storage(StorageKind.GEM)
        cluster = Cluster(config)
        cluster.sim.run(until=2.0)
        # FORCE writes the B/T page every transaction: GEM page traffic.
        assert cluster.gem.page_accesses > 50
        assert "BRANCH_TELLER" not in cluster.disk_arrays

    def test_gem_allocation_beats_disk_for_force(self):
        disk = run_simulation(config_with_bt_storage(StorageKind.DISK))
        gem = run_simulation(config_with_bt_storage(StorageKind.GEM))
        assert gem.mean_response_time < disk.mean_response_time

    def test_gem_allocation_coherent_under_contention(self):
        # Random routing + FORCE + GEM file: heavy cross-node write
        # traffic through GEM; the ledger verifies every read.
        result = run_simulation(
            config_with_bt_storage(StorageKind.GEM, num_nodes=3)
        )
        assert result.completed > 100


class TestDiskCaches:
    def test_nonvolatile_cache_absorbs_force_writes(self):
        config = config_with_bt_storage(StorageKind.DISK_NONVOLATILE_CACHE)
        cluster = Cluster(config)
        cluster.sim.run(until=2.0)
        array = cluster.disk_arrays["BRANCH_TELLER"]
        assert array.cache.write_hits > 50
        # Destage keeps running in the background.
        assert array.disk_writes > 0

    def test_volatile_cache_serves_reads_only(self):
        config = config_with_bt_storage(StorageKind.DISK_VOLATILE_CACHE)
        cluster = Cluster(config)
        cluster.sim.run(until=2.0)
        array = cluster.disk_arrays["BRANCH_TELLER"]
        assert array.cache.read_hits > 0
        assert array.cache.write_hits == 0
        # Writes still hit the disks.
        assert array.disk_writes > 50

    def test_nonvolatile_cache_close_to_gem_allocation(self):
        gem = run_simulation(config_with_bt_storage(StorageKind.GEM))
        nv = run_simulation(
            config_with_bt_storage(StorageKind.DISK_NONVOLATILE_CACHE)
        )
        assert nv.mean_response_time == pytest.approx(
            gem.mean_response_time, rel=0.2
        )

    def test_cache_hierarchy_ordering_for_force_random(self):
        """disk >= volatile cache >= non-volatile cache (Fig 4.4)."""
        rts = {}
        for storage in (
            StorageKind.DISK,
            StorageKind.DISK_VOLATILE_CACHE,
            StorageKind.DISK_NONVOLATILE_CACHE,
        ):
            rts[storage] = run_simulation(
                config_with_bt_storage(storage)
            ).mean_response_time
        assert rts[StorageKind.DISK] > rts[StorageKind.DISK_NONVOLATILE_CACHE]
        assert (
            rts[StorageKind.DISK_VOLATILE_CACHE]
            >= rts[StorageKind.DISK_NONVOLATILE_CACHE] * 0.9
        )
