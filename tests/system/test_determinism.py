"""Cross-process determinism of simulation results.

Same-process replays are checked elsewhere (test_end_to_end, the
goldens); these tests pin down the stronger guarantee the result cache
and the parallel sweep runner rely on: a ``(config, seed)`` pair must
produce a byte-identical deterministic result JSON in *any* process --
fresh interpreters, and any worker-pool size.  The configuration
includes a scripted node crash so the fault-injection and recovery
paths are covered by the guarantee too.
"""

import json
import os
import subprocess
import sys

REPO_ROOT = os.path.abspath(
    os.path.join(os.path.dirname(__file__), "..", "..")
)

from repro.system.parallel import SweepRunner

from tests.helpers import system_config

#: Built inside the test *and* inside fresh interpreters; keep it a
#: plain kwargs dict so both sides construct the identical config.
CONFIG_KWARGS = dict(
    num_nodes=3,
    coupling="pcl",
    arrival_rate_per_node=50.0,
    warmup_time=0.3,
    measure_time=1.2,
    faults={"crashes": [{"node": 1, "time": 0.6, "down_time": 0.3}]},
)

_CHILD_SCRIPT = """\
import json, sys
from repro.system.config import SystemConfig
from repro.system.runner import run_simulation

kwargs = json.loads(sys.argv[1])
defaults = dict(num_nodes=2, coupling="gem", routing="affinity",
                update_strategy="noforce", warmup_time=0.5, measure_time=2.0)
defaults.update(kwargs)
result = run_simulation(SystemConfig(**defaults))
sys.stdout.write(json.dumps(result.deterministic_dict(),
                            sort_keys=True, default=str))
"""


def run_in_fresh_process() -> bytes:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env.pop("PYTHONHASHSEED", None)  # determinism must not rely on it
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, json.dumps(CONFIG_KWARGS)],
        capture_output=True,
        env=env,
        cwd=REPO_ROOT,
    )
    assert proc.returncode == 0, proc.stderr.decode()
    return proc.stdout


class TestCrossProcess:
    def test_fresh_interpreters_agree_byte_for_byte(self):
        first = run_in_fresh_process()
        second = run_in_fresh_process()
        assert first, "child produced no output"
        assert first == second

    def test_jobs_one_and_four_agree(self):
        config = system_config(**CONFIG_KWARGS)
        with SweepRunner(jobs=1, seeds=2) as serial:
            a = serial.run(config)
        with SweepRunner(jobs=4, seeds=2) as pool:
            b = pool.run(config)
        assert a.seeds == b.seeds
        for x, y in zip(a.results, b.results):
            assert x.deterministic_dict() == y.deterministic_dict()
