"""Unit tests for the time-series monitor."""

import pytest

from repro.system.cluster import Cluster
from repro.system.monitor import TimeSeriesMonitor

from tests.helpers import system_config


def make_cluster(**overrides):
    overrides.setdefault("warmup_time", 0.0)
    overrides.setdefault("measure_time", 1.0)
    return Cluster(system_config(**overrides))


class TestMonitor:
    def test_samples_at_interval(self):
        cluster = make_cluster()
        monitor = TimeSeriesMonitor(cluster, interval=0.5)
        cluster.sim.run(until=2.6)
        assert len(monitor.samples) == 5
        assert monitor.column("time") == pytest.approx([0.5, 1.0, 1.5, 2.0, 2.5])

    def test_throughput_tracks_completions(self):
        cluster = make_cluster()
        monitor = TimeSeriesMonitor(cluster, interval=1.0)
        cluster.sim.run(until=4.0)
        total_from_windows = sum(monitor.column("throughput"))
        completed = sum(n.completions.count for n in cluster.nodes)
        # Completions within sampled windows (the run end may cut the
        # last window short).
        assert total_from_windows == pytest.approx(completed, abs=50)
        assert all(t >= 0 for t in monitor.column("throughput"))

    def test_response_time_positive_once_running(self):
        cluster = make_cluster()
        monitor = TimeSeriesMonitor(cluster, interval=1.0)
        cluster.sim.run(until=3.0)
        later_samples = monitor.samples[1:]
        assert all(row["mean_response_time"] > 0 for row in later_samples)

    def test_utilization_fields_bounded(self):
        cluster = make_cluster()
        monitor = TimeSeriesMonitor(cluster, interval=1.0)
        cluster.sim.run(until=3.0)
        for row in monitor.samples:
            assert 0.0 <= row["cpu_avg"] <= row["cpu_max"] <= 1.0
            assert 0.0 <= row["gem_utilization"] <= 1.0

    def test_csv_export(self):
        cluster = make_cluster()
        monitor = TimeSeriesMonitor(cluster, interval=1.0)
        cluster.sim.run(until=2.5)
        csv = monitor.to_csv()
        lines = csv.splitlines()
        assert lines[0].startswith("time,")
        assert len(lines) == 1 + len(monitor.samples)

    def test_empty_csv(self):
        cluster = make_cluster()
        monitor = TimeSeriesMonitor(cluster, interval=10.0)
        assert monitor.to_csv() == ""

    def test_invalid_interval(self):
        cluster = make_cluster()
        with pytest.raises(ValueError):
            TimeSeriesMonitor(cluster, interval=0.0)


class TestMonitorAcrossResets:
    def test_notify_reset_rebaselines_windows(self):
        cluster = make_cluster()
        monitor = TimeSeriesMonitor(cluster, interval=1.0)
        cluster.sim.run(until=2.0)
        cluster.reset_stats()
        monitor.notify_reset()
        cluster.sim.run(until=5.0)
        assert all(t >= 0 for t in monitor.column("throughput"))
        assert all(rt >= 0 for rt in monitor.column("mean_response_time"))
        # Post-reset windows keep measuring real completions.
        assert sum(monitor.column("throughput")[2:]) > 0

    def test_unnotified_reset_detected(self):
        # Without notify_reset() the monitor must still never report
        # negative window throughput: the counter regression is
        # detected and the window re-baselined from zero.
        cluster = make_cluster()
        monitor = TimeSeriesMonitor(cluster, interval=1.0)
        cluster.sim.run(until=2.0)
        cluster.reset_stats()
        cluster.sim.run(until=5.0)
        assert all(t >= 0 for t in monitor.column("throughput"))

    def test_windows_sum_to_post_reset_completions(self):
        cluster = make_cluster()
        monitor = TimeSeriesMonitor(cluster, interval=0.5)
        cluster.sim.run(until=1.0)
        cluster.reset_stats()
        monitor.notify_reset()
        cluster.sim.run(until=4.0)
        post_reset_windows = monitor.samples[2:]
        counted = sum(row["throughput"] * monitor.interval
                      for row in post_reset_windows)
        completed = sum(n.completions.count for n in cluster.nodes)
        # Windows cover completions up to the last sample tick.
        assert counted == pytest.approx(completed, abs=30)


class TestCsvRoundTrip:
    def test_csv_parses_back_to_samples(self):
        cluster = make_cluster()
        monitor = TimeSeriesMonitor(cluster, interval=1.0)
        cluster.sim.run(until=3.5)
        csv = monitor.to_csv()
        lines = csv.splitlines()
        keys = lines[0].split(",")
        assert keys == list(monitor.samples[0])
        parsed = [
            dict(zip(keys, (float(cell) for cell in line.split(","))))
            for line in lines[1:]
        ]
        assert len(parsed) == len(monitor.samples)
        for row, original in zip(parsed, monitor.samples):
            for key in keys:
                # to_csv renders %.6g: six significant digits.
                assert row[key] == pytest.approx(float(original[key]), rel=1e-5)
