"""Unit tests for SystemConfig validation and helpers."""

import pytest

from repro.system.config import (
    Coupling,
    RoutingStrategy,
    SystemConfig,
    UpdateStrategy,
)


class TestValidation:
    def test_defaults_match_table_41(self):
        config = SystemConfig()
        assert config.arrival_rate_per_node == 100.0
        assert config.cpus_per_node == 4
        assert config.mips_per_cpu == 10.0
        assert config.buffer_pages_per_node == 200
        assert config.gem_page_access_time == pytest.approx(50e-6)
        assert config.gem_entry_access_time == pytest.approx(2e-6)
        assert config.instructions_msg_short == 5000
        assert config.instructions_msg_long == 8000
        assert config.instructions_per_io == 3000
        assert config.instructions_per_gem_io == 300
        assert config.disk_time_db == pytest.approx(0.015)
        assert config.disk_time_log == pytest.approx(0.005)
        assert config.network_bandwidth == pytest.approx(10e6)
        assert config.debit_credit.branches_per_node == 100
        assert config.debit_credit.accounts_per_branch == 100_000
        assert config.debit_credit.account_blocking_factor == 10
        assert config.debit_credit.history_blocking_factor == 20
        assert config.debit_credit.account_local_probability == 0.85

    def test_path_length_matches_table_41(self):
        config = SystemConfig()
        # 4 record accesses -> the paper's 250k instructions.
        assert config.path_length(4) == pytest.approx(250_000)

    def test_enums_coerced_from_strings(self):
        config = SystemConfig(
            coupling="pcl", routing="random", update_strategy="force"
        )
        assert config.coupling is Coupling.PCL
        assert config.routing is RoutingStrategy.RANDOM
        assert config.update_strategy is UpdateStrategy.FORCE
        assert config.force and not config.noforce

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(num_nodes=0)
        with pytest.raises(ValueError):
            SystemConfig(arrival_rate_per_node=0)
        with pytest.raises(ValueError):
            SystemConfig(workload="nosuch")
        with pytest.raises(ValueError):
            SystemConfig(coupling="smelly")
        with pytest.raises(ValueError):
            SystemConfig(mpl_per_node=0)
        with pytest.raises(ValueError):
            SystemConfig(buffer_pages_per_node=1)

    def test_replace_creates_modified_copy(self):
        base = SystemConfig()
        changed = base.replace(num_nodes=5, coupling="pcl")
        assert changed.num_nodes == 5
        assert changed.coupling is Coupling.PCL
        assert base.num_nodes == 1  # original untouched

    def test_cpu_speed(self):
        assert SystemConfig().cpu_speed == pytest.approx(10e6)

    def test_total_arrival_rate(self):
        config = SystemConfig(num_nodes=4, arrival_rate_per_node=50.0)
        assert config.total_arrival_rate == pytest.approx(200.0)
