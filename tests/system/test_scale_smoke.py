"""Scale smoke tests: 64 nodes, ~100k transactions, both protocols.

Marked ``slow`` (deselected by default; run with ``-m slow``).  These
are not performance measurements -- they assert that a large open-model
run completes, keeps its concurrency-control state consistent at the
horizon, and produces finite, sane statistics.  The wall-clock ceiling
is a last-resort guard against accidental quadratic behaviour at
scale, set far above normal run times so machine noise cannot trip it.
"""

import math
import time

import pytest

from repro.system.cluster import Cluster
from repro.system.config import SystemConfig

pytestmark = pytest.mark.slow

NUM_NODES = 64
ARRIVAL_RATE = 170.0
MEASURE_TIME = 9.0          # ~64 * 170 * 9 ~= 98k arrivals
EXPECTED_TXNS = NUM_NODES * ARRIVAL_RATE * MEASURE_TIME
WALL_CLOCK_CEILING_S = 600.0


@pytest.fixture(scope="module", params=["gem", "pcl"])
def scale_run(request):
    """One 64-node run per protocol, shared by every assertion below."""
    config = SystemConfig(
        num_nodes=NUM_NODES,
        coupling=request.param,
        routing="affinity",
        update_strategy="noforce",
        buffer_pages_per_node=1000,
        arrival_rate_per_node=ARRIVAL_RATE,
        warmup_time=0.25,
        measure_time=MEASURE_TIME,
        random_seed=42,
    )
    started = time.perf_counter()
    cluster = Cluster(config)
    cluster.sim.run(until=config.warmup_time)
    cluster.reset_stats()
    cluster.sim.run(until=config.warmup_time + config.measure_time)
    wall_clock = time.perf_counter() - started
    result = cluster.collect_results(config.measure_time)
    return cluster, result, wall_clock


def lock_tables(cluster):
    protocol = cluster.protocol
    if hasattr(protocol, "glt"):
        return [protocol.glt]          # GEM: one global lock table
    return list(protocol.tables)       # PCL: one table per GLA node


class TestScaleSmoke:
    def test_run_completes_about_100k_transactions(self, scale_run):
        _cluster, result, _wall = scale_run
        # Open model at a fixed rate: completions track arrivals with
        # some lag (the operating point sits near 80% CPU utilization,
        # so queues hold a tail of in-flight work; measured runs
        # complete ~90% of arrivals).  80% is far below any healthy
        # run and far above a stalled one.
        assert result.completed >= 0.8 * EXPECTED_TXNS
        assert result.throughput_total == pytest.approx(
            result.completed / MEASURE_TIME
        )

    def test_no_leaked_lock_grants_at_the_horizon(self, scale_run):
        cluster, result, _wall = scale_run
        holding_txns = set()
        for table in lock_tables(cluster):
            for page, entry in table._entries.items():
                holders = set(entry.holders)
                queued = {waiter.txn for waiter in entry.queue}
                # A transaction never waits for a page it already holds
                # (lock modes are acquired once and upgraded in place).
                assert not holders & queued, (page, holders, queued)
                holding_txns |= holders
            # Every blocked transaction is queued on the page the
            # blocked-index claims, and nothing else.
            for txn, page in table._blocked.items():
                entry = table.peek(page)
                assert entry is not None
                assert any(waiter.txn == txn for waiter in entry.queue)
        # Held locks belong to in-flight transactions only.  In-flight
        # population at 80% utilization is a few per node; orders of
        # magnitude below the ~100k transactions that ran through.
        assert len(holding_txns) <= 50 * NUM_NODES
        assert len(holding_txns) < 0.05 * result.completed

    def test_statistics_are_finite_and_sane(self, scale_run):
        _cluster, result, _wall = scale_run
        assert math.isfinite(result.mean_response_time)
        assert result.mean_response_time > 0.0
        assert math.isfinite(result.mean_lock_wait_time)
        assert result.mean_lock_wait_time >= 0.0
        assert len(result.cpu_utilization_per_node) == NUM_NODES
        for utilization in result.cpu_utilization_per_node:
            assert 0.0 <= utilization <= 1.0
        assert 0.0 <= result.gem_utilization <= 1.0
        assert 0.0 <= result.network_utilization <= 1.0
        for ratio in result.hit_ratios.values():
            assert 0.0 <= ratio <= 1.0
        assert result.aborts >= 0 and result.deadlocks >= 0
        assert result.events_processed > EXPECTED_TXNS  # many events per txn

    def test_wall_clock_stays_under_the_ceiling(self, scale_run):
        _cluster, _result, wall_clock = scale_run
        assert wall_clock < WALL_CLOCK_CEILING_S
