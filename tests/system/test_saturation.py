"""Integration tests for overload and limit behaviour."""

import pytest

from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.monitor import TimeSeriesMonitor
from repro.system.runner import run_simulation


class TestOverload:
    def test_cpu_saturation_backs_up_input_queue(self):
        """Offered load beyond CPU capacity: the MPL input queue grows
        and response times explode, but the system stays coherent."""
        config = SystemConfig(
            num_nodes=1,
            coupling="gem",
            routing="affinity",
            update_strategy="noforce",
            arrival_rate_per_node=250.0,  # >160 TPS CPU capacity
            mpl_per_node=20,
            warmup_time=0.5,
            measure_time=3.0,
        )
        cluster = Cluster(config)
        monitor = TimeSeriesMonitor(cluster, interval=1.0)
        cluster.sim.run(until=3.5)
        in_flight = monitor.column("in_flight")
        assert in_flight[-1] > in_flight[0]
        node = cluster.nodes[0]
        assert node.cpu.utilization() > 0.9
        assert node.mpl.queue_length > 0

    def test_mpl_bounds_active_transactions(self):
        config = SystemConfig(
            num_nodes=1,
            arrival_rate_per_node=300.0,
            mpl_per_node=5,
            warmup_time=0.2,
            measure_time=1.0,
        )
        cluster = Cluster(config)
        cluster.sim.run(until=1.2)
        assert cluster.nodes[0].mpl.busy <= 5

    def test_high_mpl_avoids_input_queueing_at_nominal_load(self):
        """Table 4.1: MPL 'high enough to avoid queuing delays'."""
        result_config = SystemConfig(
            num_nodes=1,
            arrival_rate_per_node=100.0,
            mpl_per_node=50,
            warmup_time=1.0,
            measure_time=3.0,
        )
        cluster = Cluster(result_config)
        cluster.sim.run(until=4.0)
        assert cluster.nodes[0].mpl.wait_time.mean < 1e-4


class TestStability:
    def test_long_run_remains_stable(self):
        """An extended run keeps throughput at the offered rate and
        exercises millions of events without drift or leaks."""
        config = SystemConfig(
            num_nodes=2,
            coupling="pcl",
            routing="random",
            update_strategy="force",
            warmup_time=2.0,
            measure_time=10.0,
        )
        result = run_simulation(config)
        offered = config.total_arrival_rate
        assert result.throughput_total == pytest.approx(offered, rel=0.1)
        assert result.mean_response_time < 0.5

    def test_buffer_far_too_small_is_detected(self):
        from repro.errors import BufferFullError

        config = SystemConfig(
            num_nodes=1,
            arrival_rate_per_node=200.0,
            mpl_per_node=50,
            buffer_pages_per_node=10,  # fewer frames than pinnable pages
            warmup_time=0.5,
            measure_time=2.0,
        )
        with pytest.raises(BufferFullError):
            run_simulation(config)
