"""Tests for the GEM write buffer (section 2's third usage form)."""

import pytest

from repro.db.schema import StorageKind
from repro.system.cluster import Cluster
from repro.system.runner import run_simulation

from tests.helpers import bt_storage_config as config


class TestGemWriteBuffer:
    def test_writes_absorbed_reads_hit_disks(self):
        cluster = Cluster(config())
        cluster.sim.run(until=2.0)
        array = cluster.disk_arrays["BRANCH_TELLER"]
        # Force-writes turned into GEM page accesses...
        assert cluster.gem.page_accesses > 100
        # ...and are destaged to the disks in the background.
        assert array.disk_writes > 50
        # Reads still come from the disks (no read caching).
        assert array.disk_reads > 10

    def test_write_buffer_speeds_up_force(self):
        plain = run_simulation(config(storage=StorageKind.DISK))
        buffered = run_simulation(config())
        assert buffered.mean_response_time < plain.mean_response_time

    def test_coherent_under_cross_node_traffic(self):
        # Random routing + FORCE: every write of the hot file crosses
        # the write buffer; the ledger checks every subsequent read.
        result = run_simulation(config(num_nodes=3))
        assert result.completed > 100

    def test_weaker_than_nonvolatile_cache_for_reads(self):
        """The write buffer absorbs writes only; a non-volatile disk
        cache additionally serves read misses and must be at least as
        fast under random routing."""
        wbuf = run_simulation(config())
        nv = run_simulation(config(storage=StorageKind.DISK_NONVOLATILE_CACHE))
        assert nv.mean_response_time <= wbuf.mean_response_time * 1.05

    def test_gem_resident_file_rejects_write_buffer(self):
        from repro.db.pages import VersionLedger
        from repro.devices.gem import GemDevice
        from repro.devices.storage import StorageDirectory
        from repro.sim import Simulator

        sim = Simulator()
        ledger = VersionLedger()
        directory = StorageDirectory(sim, ledger, 3000, 300)
        gem = GemDevice(sim)
        with pytest.raises(ValueError):
            directory.assign(0, gem, gem_write_buffer=gem)
