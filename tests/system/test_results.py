"""Unit tests for RunResult derived metrics."""

import pytest

from tests.experiments.test_harness import fake_result


class TestDerivedMetrics:
    def test_throughput_per_node(self):
        result = fake_result(4, 80.0)
        assert result.throughput_per_node == pytest.approx(25.0)

    def test_cpu_aggregates(self):
        result = fake_result(2, 80.0)
        result.cpu_utilization_per_node = [0.5, 0.9]
        assert result.cpu_utilization_avg == pytest.approx(0.7)
        assert result.cpu_utilization_max == pytest.approx(0.9)

    def test_response_time_ms(self):
        result = fake_result(1, 75.0)
        assert result.response_time_ms == pytest.approx(75.0)

    def test_messages_per_txn(self):
        result = fake_result(1, 75.0)
        result.messages_short_per_txn = 2.0
        result.messages_long_per_txn = 0.5
        assert result.messages_per_txn == pytest.approx(2.5)

    def test_summary_and_label(self):
        result = fake_result(4, 75.0)
        assert "N=4" in result.label()
        summary = result.summary()
        assert "RT=75.0 ms" in summary
        assert "100 TPS" in summary

    def test_as_dict_includes_derived(self):
        data = fake_result(2, 60.0).as_dict()
        assert data["throughput_per_node"] == pytest.approx(50.0)
        assert data["response_time_ms"] == pytest.approx(60.0)
        assert data["hit_ratios"]["BRANCH_TELLER"] == pytest.approx(0.7)

    def test_empty_node_list_degrades_gracefully(self):
        result = fake_result(1, 10.0)
        result.cpu_utilization_per_node = []
        assert result.cpu_utilization_avg == 0.0
        assert result.cpu_utilization_max == 0.0
