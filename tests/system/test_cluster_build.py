"""Unit tests for cluster construction and storage allocation."""

import pytest

from repro.db.schema import StorageKind
from repro.devices.gem import GemDevice
from repro.system.cluster import Cluster
from repro.system.config import DebitCreditConfig, SystemConfig

from tests.helpers import quiesced_config


def quiet_config(**overrides):
    overrides.setdefault("num_nodes", 1)  # the SystemConfig default
    return quiesced_config(**overrides)


class TestTopology:
    def test_node_count(self):
        cluster = Cluster(quiet_config(num_nodes=3))
        assert len(cluster.nodes) == 3
        assert [n.node_id for n in cluster.nodes] == [0, 1, 2]

    def test_gem_protocol_selected(self):
        cluster = Cluster(quiet_config(coupling="gem"))
        assert cluster.protocol.name == "gem"

    def test_pcl_protocol_selected(self):
        cluster = Cluster(quiet_config(coupling="pcl"))
        assert cluster.protocol.name == "pcl"
        assert len(cluster.protocol.tables) == 1

    def test_log_disk_per_node(self):
        cluster = Cluster(quiet_config(num_nodes=4))
        assert len(cluster.log_disks) == 4

    def test_nodes_share_protocol(self):
        cluster = Cluster(quiet_config(num_nodes=2))
        assert cluster.nodes[0].protocol is cluster.nodes[1].protocol


class TestStorageAllocation:
    def test_default_all_partitions_on_disk(self):
        cluster = Cluster(quiet_config())
        assert set(cluster.disk_arrays) == {"BRANCH_TELLER", "ACCOUNT", "HISTORY"}
        assert not cluster.storage.is_gem_resident(0)

    def test_branch_teller_in_gem(self):
        config = quiet_config(
            debit_credit=DebitCreditConfig(branch_teller_storage=StorageKind.GEM)
        )
        cluster = Cluster(config)
        assert cluster.storage.is_gem_resident(0)
        assert "BRANCH_TELLER" not in cluster.disk_arrays
        assert isinstance(cluster.storage.backend(0), GemDevice)

    def test_nonvolatile_disk_cache_sized_to_partition(self):
        config = quiet_config(
            num_nodes=2,
            debit_credit=DebitCreditConfig(
                branch_teller_storage=StorageKind.DISK_NONVOLATILE_CACHE
            ),
        )
        cluster = Cluster(config)
        cache = cluster.disk_arrays["BRANCH_TELLER"].cache
        assert cache is not None
        assert cache.nonvolatile
        assert cache.capacity == 200  # all B/T pages of two nodes

    def test_volatile_disk_cache(self):
        config = quiet_config(
            debit_credit=DebitCreditConfig(
                branch_teller_storage=StorageKind.DISK_VOLATILE_CACHE,
                branch_teller_cache_pages=64,
            ),
        )
        cluster = Cluster(config)
        cache = cluster.disk_arrays["BRANCH_TELLER"].cache
        assert not cache.nonvolatile
        assert cache.capacity == 64

    def test_disks_scale_with_nodes(self):
        c1 = Cluster(quiet_config(num_nodes=1))
        c4 = Cluster(quiet_config(num_nodes=4))
        assert len(c4.disk_arrays["ACCOUNT"].disks) == 4 * len(
            c1.disk_arrays["ACCOUNT"].disks
        )

    def test_history_spread_accesses(self):
        cluster = Cluster(quiet_config())
        assert cluster.disk_arrays["HISTORY"].spread_accesses
        assert not cluster.disk_arrays["ACCOUNT"].spread_accesses


class TestWorkloadWiring:
    def test_debit_credit_instruction_profile(self):
        cluster = Cluster(quiet_config())
        bot, per_access, eot = cluster.instruction_profile
        assert bot + 4 * per_access + eot == pytest.approx(250_000)

    def test_trace_instruction_profile(self):
        from repro.system.config import TraceWorkloadConfig

        config = quiet_config(
            workload="trace", trace=TraceWorkloadConfig(scale=0.02)
        )
        cluster = Cluster(config)
        bot, per_access, eot = cluster.instruction_profile
        assert per_access == config.trace_instructions_per_access

    def test_trace_database_constant_in_nodes(self):
        from repro.system.config import TraceWorkloadConfig

        trace_config = TraceWorkloadConfig(scale=0.02)
        c1 = Cluster(quiet_config(workload="trace", trace=trace_config, num_nodes=1))
        c2 = Cluster(quiet_config(workload="trace", trace=trace_config, num_nodes=2))
        assert c1.database.total_pages() == c2.database.total_pages()

    def test_affinity_router_for_debit_credit(self):
        from repro.routing.affinity import AffinityRouter

        cluster = Cluster(quiet_config(routing="affinity", num_nodes=2))
        assert isinstance(cluster.router, AffinityRouter)

    def test_random_router(self):
        from repro.routing.random_router import RandomRouter

        cluster = Cluster(quiet_config(routing="random", num_nodes=2))
        assert isinstance(cluster.router, RandomRouter)
