"""Tests for the GEM-resident log (section 2 usage form)."""

from repro.system.cluster import Cluster
from repro.system.runner import run_simulation

from tests.helpers import system_config as config


class TestLogInGem:
    def test_log_disks_idle_when_log_in_gem(self):
        cluster = Cluster(config(log_in_gem=True))
        cluster.sim.run(until=2.0)
        assert all(disk.writes == 0 for disk in cluster.log_disks)
        # Log writes show up as GEM page accesses instead.
        assert cluster.gem.page_accesses > 100

    def test_log_disks_used_by_default(self):
        cluster = Cluster(config())
        cluster.sim.run(until=2.0)
        assert sum(disk.writes for disk in cluster.log_disks) > 100
        assert cluster.gem.page_accesses == 0

    def test_gem_log_improves_response_time(self):
        baseline = run_simulation(config())
        gem_log = run_simulation(config(log_in_gem=True))
        # The ~6.4 ms (+ queuing) log write shrinks to ~80 us.
        assert (
            baseline.mean_response_time - gem_log.mean_response_time > 0.004
        )

    def test_gem_log_with_force_and_random_routing(self):
        result = run_simulation(
            config(update_strategy="force", routing="random", log_in_gem=True)
        )
        assert result.completed > 100
        assert result.log_disk_utilization_max == 0.0
