"""Golden-result regression tests.

Freezes the deterministic single-seed output of one fast point per
figure (Fig 4.1 and Fig 4.5) so that performance refactors cannot
silently change simulation semantics: any change to what a given
``(config, seed)`` simulates must show up here and be acknowledged by
regenerating the goldens (and bumping
:data:`repro.system.parallel.CODE_VERSION`).

Regenerate after an intentional semantic change with::

    PYTHONPATH=src:. python tests/system/test_golden.py --regen
"""

import json
import os

import pytest

from repro.experiments import fig41
from repro.system.config import SystemConfig
from repro.system.runner import run_simulation

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "golden")

#: The frozen points: deterministic, single-seed, ~1 s of wall clock
#: each.  Window lengths are pinned explicitly (not taken from a Scale
#: preset) so preset tuning cannot move the goldens.
POINTS = {
    # Fig 4.1 flavour: GEM locking, affinity/NOFORCE, buffer 200.
    "fig41_gem_affinity_noforce_n2": lambda: fig41.base_config().replace(
        num_nodes=2,
        routing="affinity",
        update_strategy="noforce",
        warmup_time=0.5,
        measure_time=1.5,
    ),
    # Fig 4.5 flavour: loose coupling (PCL), random routing, FORCE --
    # exercises remote locking, messages and invalidations.
    "fig45_pcl_random_force_n2": lambda: SystemConfig(
        num_nodes=2,
        coupling="pcl",
        routing="random",
        update_strategy="force",
        buffer_pages_per_node=200,
        warmup_time=0.5,
        measure_time=1.5,
    ),
    # fig_regimes flavour: disaggregated memory (RDMA), affinity,
    # NOFORCE -- exercises remote CAS locking, pool-backed page
    # transfer and the ``rdma`` breakdown component.
    "fig_regimes_rdma_affinity_noforce_n2": lambda: SystemConfig(
        num_nodes=2,
        coupling="rdma",
        routing="affinity",
        update_strategy="noforce",
        buffer_pages_per_node=200,
        collect_breakdown=True,
        warmup_time=0.5,
        measure_time=1.5,
    ),
}


def golden_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.json")


def compare(expected, actual, path=""):
    """Recursively compare with a tight relative tolerance on floats."""
    mismatches = []
    if isinstance(expected, dict):
        assert set(expected) == set(actual), f"{path}: key sets differ"
        for key in expected:
            mismatches += compare(expected[key], actual[key], f"{path}.{key}")
    elif isinstance(expected, list):
        assert len(expected) == len(actual), f"{path}: lengths differ"
        for i, (e, a) in enumerate(zip(expected, actual)):
            mismatches += compare(e, a, f"{path}[{i}]")
    elif isinstance(expected, float) or isinstance(actual, float):
        if actual != pytest.approx(expected, rel=1e-9, abs=1e-12):
            mismatches.append(f"{path}: {expected!r} != {actual!r}")
    else:
        if expected != actual:
            mismatches.append(f"{path}: {expected!r} != {actual!r}")
    return mismatches


@pytest.mark.parametrize("name", sorted(POINTS))
def test_golden_point_unchanged(name):
    path = golden_path(name)
    assert os.path.exists(path), (
        f"golden file {path} missing -- regenerate with "
        "`python tests/system/test_golden.py --regen`"
    )
    with open(path) as fh:
        frozen = json.load(fh)
    result = run_simulation(POINTS[name]())
    mismatches = compare(frozen["result"], result.deterministic_dict(), name)
    assert not mismatches, (
        "simulation semantics changed vs golden snapshot "
        "(regenerate goldens and bump CODE_VERSION if intentional):\n"
        + "\n".join(mismatches)
    )


def regenerate() -> None:  # pragma: no cover
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name, make_config in sorted(POINTS.items()):
        result = run_simulation(make_config())
        with open(golden_path(name), "w") as fh:
            json.dump(
                {"name": name, "result": result.deterministic_dict()},
                fh, indent=2, sort_keys=True, default=str,
            )
            fh.write("\n")
        print(f"wrote {golden_path(name)}")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
