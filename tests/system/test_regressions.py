"""Regression tests for protocol bugs caught by the coherency ledger
during development.  Each test reconstructs the triggering scenario at
system level; the ledger turns any regression into a CoherencyError.
"""

from repro.system.cluster import Cluster
from repro.system.config import SystemConfig, TraceWorkloadConfig
from repro.system.runner import run_simulation


class TestRollbackPreservesOwnedCopy:
    """Bug 1: rolling back a deadlock victim used to *delete* the
    modified frame -- destroying the committed dirty copy this node
    owned while the GLT still pointed at it.  Readers then fetched a
    stale version from storage."""

    def test_trace_workload_with_deadlocks_stays_coherent(self):
        # Small page universe + writes -> occasional deadlocks whose
        # victims modified pages their node owns.
        config = SystemConfig(
            num_nodes=3,
            coupling="gem",
            routing="random",
            update_strategy="noforce",
            workload="trace",
            arrival_rate_per_node=40.0,
            buffer_pages_per_node=400,
            trace=TraceWorkloadConfig(scale=0.04, write_reference_fraction=0.08),
            warmup_time=0.5,
            measure_time=4.0,
        )
        result = run_simulation(config)  # CoherencyError on regression
        assert result.completed > 50


class TestLockRequestCopyProtection:
    """Bug 2: a PCL lock request advertises the requester's cached
    version; if that (clean) copy was evicted while the request was in
    flight, the GLA skipped the page supply and the requester read a
    stale version from storage.  The copy is now protected for the
    duration of the request."""

    def test_pcl_trace_with_buffer_pressure_stays_coherent(self):
        config = SystemConfig(
            num_nodes=3,
            coupling="pcl",
            routing="affinity",
            update_strategy="noforce",
            workload="trace",
            arrival_rate_per_node=40.0,
            buffer_pages_per_node=300,  # heavy eviction churn
            trace=TraceWorkloadConfig(scale=0.04),
            warmup_time=0.5,
            measure_time=4.0,
        )
        result = run_simulation(config)
        assert result.completed > 50


class TestSupplyOnlyDirtyPages:
    """Bug 3 (fidelity): the PCL grant used to ship any current page
    the GLA had cached, turning the authority into a remote cache and
    making loose coupling beat close coupling.  Supply now happens only
    when the GLA's copy is dirty (storage stale)."""

    def test_read_only_traffic_is_not_supplied(self):
        from repro.workload.transaction import PageAccess, Transaction
        from tests.helpers import drive_cluster as drive

        cluster = Cluster(
            SystemConfig(
                num_nodes=2,
                coupling="pcl",
                routing="affinity",
                update_strategy="noforce",
                arrival_rate_per_node=1e-6,
                warmup_time=0.0,
                measure_time=1.0,
            )
        )
        layout = cluster.layout
        page = layout.branch_teller_page(layout.config.branches_per_node)  # GLA 1

        def read_at(node_id, txn_id):
            txn = Transaction(txn_id, [])
            txn.node = node_id

            def proc():
                grant = yield from cluster.protocol.acquire(txn, page, False, None)
                access = PageAccess(page, write=False)
                txn.accesses.append(access)
                yield from cluster.nodes[node_id].buffer.access(txn, access, grant)
                yield from cluster.protocol.commit_release(txn)
                return grant

            return drive(cluster, proc())

        read_at(1, 1)  # GLA itself caches the page (clean)
        grant = read_at(0, 2)  # remote reader misses
        assert not grant.page_supplied  # must read storage, not the GLA
        assert cluster.protocol.pages_supplied_with_grant == 0
