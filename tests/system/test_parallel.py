"""Tests for the parallel sweep runner, replication and result cache."""

import dataclasses

import pytest

from repro.sim.rng import replicate_seed
from repro.system.parallel import (
    ReplicatedResult,
    ReplicateStats,
    ResultCache,
    SweepRunner,
    config_cache_key,
    t_critical_95,
)
from repro.system.results import RunResult


from tests.helpers import system_config


def small_config(**overrides):
    overrides.setdefault("num_nodes", 1)
    overrides.setdefault("warmup_time", 0.3)
    overrides.setdefault("measure_time", 1.0)
    return system_config(**overrides)


class TestReplicateSeeds:
    def test_replicate_zero_is_identity(self):
        assert replicate_seed(42, 0) == 42
        assert replicate_seed(7, 0) == 7

    def test_derivation_is_pure_and_distinct(self):
        seeds = [replicate_seed(42, k) for k in range(6)]
        assert seeds == [replicate_seed(42, k) for k in range(6)]
        assert len(set(seeds)) == 6

    def test_negative_replicate_rejected(self):
        with pytest.raises(ValueError):
            replicate_seed(42, -1)


class TestReplicateStats:
    def test_single_sample(self):
        stats = ReplicateStats.from_samples([3.5])
        assert stats.mean == 3.5
        assert stats.stddev == 0.0
        assert stats.ci95 == 0.0
        assert stats.n == 1

    def test_mean_and_spread(self):
        stats = ReplicateStats.from_samples([1.0, 2.0, 3.0])
        assert stats.mean == pytest.approx(2.0)
        assert stats.stddev == pytest.approx(1.0)
        # t(df=2) * 1.0 / sqrt(3)
        assert stats.ci95 == pytest.approx(4.303 / 3 ** 0.5)

    def test_ci_width_shrinks_with_more_samples(self):
        # Same spread, more replicates -> tighter interval (the t
        # quantile falls and 1/sqrt(n) falls).
        spread = [9.0, 11.0]
        wide = ReplicateStats.from_samples(spread * 1)
        mid = ReplicateStats.from_samples(spread * 3)
        tight = ReplicateStats.from_samples(spread * 8)
        assert wide.ci95 > mid.ci95 > tight.ci95 > 0

    def test_no_samples_rejected(self):
        with pytest.raises(ValueError):
            ReplicateStats.from_samples([])

    def test_t_table(self):
        assert t_critical_95(2) == pytest.approx(12.706)
        assert t_critical_95(31) == pytest.approx(2.042)
        assert t_critical_95(1000) == pytest.approx(1.96)


class TestDeterminism:
    def test_serial_and_pool_results_identical(self):
        config = small_config()
        with SweepRunner(jobs=1) as serial:
            a = serial.run(config)
        with SweepRunner(jobs=2) as pool:
            b = pool.run(config)
        assert a.primary.deterministic_dict() == b.primary.deterministic_dict()

    def test_batch_order_preserved(self):
        configs = [small_config(num_nodes=n) for n in (1, 2)]
        with SweepRunner(jobs=2) as runner:
            results = runner.map_raw(configs)
        assert [r.num_nodes for r in results] == [1, 2]

    def test_replicates_differ_but_are_reproducible(self):
        config = small_config()
        with SweepRunner(seeds=3) as runner:
            a = runner.run(config)
            b = runner.run(config)
        dicts_a = [r.deterministic_dict() for r in a.results]
        dicts_b = [r.deterministic_dict() for r in b.results]
        assert dicts_a == dicts_b
        # Different seeds explore different sample paths.
        assert dicts_a[0] != dicts_a[1]
        assert a.seeds[0] == config.random_seed

    def test_ci_width_shrinks_with_more_seeds_end_to_end(self):
        config = small_config()
        with SweepRunner(seeds=8) as runner:
            rep = runner.run(config)
        samples = [r.response_time_ms for r in rep.results]
        few = ReplicateStats.from_samples(samples[:2])
        many = ReplicateStats.from_samples(samples)
        assert many.ci95 < few.ci95
        assert rep.response_time_stats.n == 8


class TestReplicatedResult:
    def _fake(self, rt):
        fields = {f.name: 0 for f in dataclasses.fields(RunResult)}
        fields.update(
            num_nodes=1, coupling="gem", routing="affinity",
            update_strategy="noforce", workload="debit_credit",
            buffer_pages_per_node=200, arrival_rate_per_node=100.0,
            measure_time=1.0, completed=10, mean_response_time=rt,
            mean_response_time_artificial=rt, throughput_total=10.0,
            mean_accesses_per_txn=3.0, cpu_utilization_per_node=[0.5],
            hit_ratios={}, invalidations_per_txn={},
        )
        return RunResult(**fields)

    def test_delegates_to_primary(self):
        rep = ReplicatedResult([self._fake(0.07), self._fake(0.09)], [42, 43])
        assert rep.num_nodes == 1
        assert rep.response_time_ms == pytest.approx(70.0)
        assert rep.n_replicates == 2
        assert rep.stat(lambda r: r.response_time_ms).mean == pytest.approx(80.0)

    def test_summary_shows_interval(self):
        rep = ReplicatedResult([self._fake(0.07), self._fake(0.09)], [42, 43])
        assert "±" in rep.summary()
        single = ReplicatedResult([self._fake(0.07)], [42])
        assert "±" not in single.summary()

    def test_validation(self):
        with pytest.raises(ValueError):
            ReplicatedResult([], [])
        with pytest.raises(ValueError):
            ReplicatedResult([self._fake(0.07)], [1, 2])


class TestCacheKey:
    def test_stable_for_equal_configs(self):
        assert config_cache_key(small_config()) == config_cache_key(small_config())

    def test_sensitive_to_seed_and_parameters(self):
        base = config_cache_key(small_config())
        assert config_cache_key(small_config(random_seed=43)) != base
        assert config_cache_key(small_config(measure_time=2.0)) != base
        assert config_cache_key(small_config(), code_version="other") != base


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        config = small_config()
        cache = ResultCache(str(tmp_path / "cache"))
        with SweepRunner(cache=cache) as runner:
            first = runner.run(config)
        assert runner.simulations_run == 1
        assert cache.misses == 1

        warm = ResultCache(str(tmp_path / "cache"))
        with SweepRunner(cache=warm) as runner:
            second = runner.run(config)
        assert runner.simulations_run == 0
        assert runner.simulations_cached == 1
        assert warm.hits == 1
        assert (
            second.primary.deterministic_dict()
            == first.primary.deterministic_dict()
        )

    def test_code_version_invalidates(self, tmp_path):
        config = small_config()
        cache = ResultCache(str(tmp_path / "cache"), code_version="v1")
        with SweepRunner(cache=cache) as runner:
            runner.run(config)
        stale = ResultCache(str(tmp_path / "cache"), code_version="v2")
        assert stale.get(config) is None

    def test_different_points_do_not_collide(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        with SweepRunner(cache=cache) as runner:
            runner.run_many([small_config(num_nodes=1), small_config(num_nodes=2)])
        a = cache.get(small_config(num_nodes=1))
        b = cache.get(small_config(num_nodes=2))
        assert a.num_nodes == 1 and b.num_nodes == 2

    def test_wall_clock_and_event_stats_surface(self, tmp_path):
        with SweepRunner() as runner:
            rep = runner.run(small_config())
        assert rep.primary.wall_clock_seconds > 0
        assert rep.events_total > 0
        assert rep.wall_clock_total >= rep.primary.wall_clock_seconds


class TestSweepRunnerValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)
        with pytest.raises(ValueError):
            SweepRunner(seeds=0)
