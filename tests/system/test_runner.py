"""Unit tests for the run controller and the throughput search."""

import pytest

from repro.errors import UtilizationTargetError
from repro.system.parallel import SweepRunner
from repro.system.runner import find_throughput_at_utilization, run_simulation

from tests.helpers import system_config


def small_config(**overrides):
    overrides.setdefault("num_nodes", 1)
    return system_config(**overrides)


class TestRunSimulation:
    def test_measurement_window_respected(self):
        result = run_simulation(small_config())
        assert result.measure_time == 2.0
        assert result.events_processed > 0

    def test_warmup_discarded(self):
        # A zero-length warm-up inflates response times with start-up
        # transients less than it biases hit ratios; the key check is
        # that the completed count matches the measurement window only.
        r_short = run_simulation(small_config(measure_time=1.0))
        r_long = run_simulation(small_config(measure_time=3.0))
        assert r_long.completed > r_short.completed * 2


class TestThroughputSearch:
    def test_finds_rate_near_target_utilization(self):
        result = find_throughput_at_utilization(
            small_config(measure_time=1.5),
            target_utilization=0.80,
            tolerance=0.04,
            max_iterations=7,
            rate_bounds=(60.0, 220.0),
        )
        assert result.cpu_utilization_max == pytest.approx(0.80, abs=0.07)
        # 250k instr/txn on 40 MIPS at 80% -> ~128 TPS.
        assert 95 <= result.throughput_per_node <= 160

    def test_invalid_target_rejected(self):
        with pytest.raises(ValueError):
            find_throughput_at_utilization(small_config(), target_utilization=1.5)

    def test_unreachable_target_raises(self):
        # At 1-5 TPS a 40-MIPS node idles; 80 % utilization cannot be
        # reached inside the bounds, so the search must say so instead
        # of silently returning the boundary miss.
        with pytest.raises(UtilizationTargetError) as excinfo:
            find_throughput_at_utilization(
                small_config(measure_time=1.0),
                target_utilization=0.80,
                rate_bounds=(1.0, 5.0),
                max_iterations=12,
            )
        assert "unreachable" in str(excinfo.value)
        # The closest observed result stays inspectable.
        assert excinfo.value.best is not None
        assert excinfo.value.best.cpu_utilization_max < 0.5

    def test_bracketed_noisy_search_does_not_raise(self):
        # A reachable target with a loose iteration budget returns the
        # closest result rather than raising.
        result = find_throughput_at_utilization(
            small_config(measure_time=1.0),
            target_utilization=0.80,
            tolerance=0.04,
            max_iterations=4,
            rate_bounds=(60.0, 220.0),
        )
        assert result is not None

    def test_parallel_probes_match_serial_search(self):
        config = small_config(measure_time=1.5)
        kwargs = dict(
            target_utilization=0.80,
            tolerance=0.04,
            max_iterations=6,
            rate_bounds=(60.0, 220.0),
        )
        with SweepRunner(jobs=1) as serial:
            a = find_throughput_at_utilization(config, runner=serial, **kwargs)
        with SweepRunner(jobs=2) as pool:
            b = find_throughput_at_utilization(config, runner=pool, **kwargs)
        assert a.deterministic_dict() == b.deterministic_dict()
        assert a.cpu_utilization_max == pytest.approx(0.80, abs=0.08)


class TestCollapsedBracketBothSides:
    def test_step_response_returns_best_without_raising(self, monkeypatch):
        # A sharp utilization step inside the bounds: the bisection
        # collapses onto the step with probes on BOTH sides of the
        # target, none within tolerance.  That is a resolution limit,
        # not an unreachable target, so the closest result is returned
        # instead of raising UtilizationTargetError.
        class FakeResult:
            def __init__(self, rate):
                self.arrival_rate_per_node = rate
                self.cpu_utilization_max = 0.5 if rate < 200.0 else 0.95

        calls = []

        def fake_run(config):
            calls.append(config.arrival_rate_per_node)
            return FakeResult(config.arrival_rate_per_node)

        monkeypatch.setattr("repro.system.runner.run_simulation", fake_run)
        result = find_throughput_at_utilization(
            small_config(),
            target_utilization=0.80,
            tolerance=0.02,
            max_iterations=12,
        )
        assert result.cpu_utilization_max == 0.95
        assert len(calls) == 12  # never converged, never raised
