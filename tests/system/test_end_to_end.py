"""End-to-end integration tests.

Short full-system runs asserting conservation laws, coherency (the
ledger raises on any stale read, so a clean run *is* the check),
determinism, and the paper's qualitative results at reduced scale.
"""

import pytest

from repro.system.cluster import Cluster
from repro.system.config import TraceWorkloadConfig
from repro.system.runner import run_simulation

from tests.helpers import system_config as short_config


class TestConservation:
    def test_completions_track_arrivals(self):
        result = run_simulation(short_config())
        # Open model at stable load: throughput ~= offered rate.
        offered = result.arrival_rate_per_node * result.num_nodes
        assert result.throughput_total == pytest.approx(offered, rel=0.25)

    def test_arrivals_equal_completions_plus_in_flight(self):
        config = short_config()
        cluster = Cluster(config)
        cluster.sim.run(until=3.0)
        arrivals = sum(n.arrivals.count for n in cluster.nodes)
        completions = sum(n.completions.count for n in cluster.nodes)
        in_flight = sum(
            n.mpl.busy + n.mpl.queue_length for n in cluster.nodes
        )
        assert arrivals == completions + in_flight
        assert arrivals == cluster.source.generated

    def test_sane_metrics(self):
        result = run_simulation(short_config())
        assert 0 < result.mean_response_time < 1.0
        assert all(0 <= u <= 1 for u in result.cpu_utilization_per_node)
        assert 0 <= result.gem_utilization <= 1
        for ratio in result.hit_ratios.values():
            assert 0.0 <= ratio <= 1.0
        assert result.mean_accesses_per_txn == pytest.approx(3.0, abs=0.2)

    def test_no_deadlocks_in_debit_credit(self):
        # Fixed access order makes debit-credit deadlock-free (3.1).
        result = run_simulation(short_config(routing="random", num_nodes=3))
        assert result.deadlocks == 0
        assert result.aborts == 0


class TestDeterminism:
    def test_same_seed_same_results(self):
        r1 = run_simulation(short_config(random_seed=7))
        r2 = run_simulation(short_config(random_seed=7))
        assert r1.completed == r2.completed
        assert r1.mean_response_time == pytest.approx(r2.mean_response_time)
        assert r1.hit_ratios == r2.hit_ratios

    def test_different_seed_different_results(self):
        r1 = run_simulation(short_config(random_seed=7))
        r2 = run_simulation(short_config(random_seed=8))
        assert r1.mean_response_time != pytest.approx(
            r2.mean_response_time, rel=1e-9
        )


class TestPaperShapes:
    """The paper's qualitative results at reduced scale."""

    def test_force_slower_than_noforce(self):
        noforce = run_simulation(short_config(update_strategy="noforce"))
        force = run_simulation(short_config(update_strategy="force"))
        assert force.mean_response_time > noforce.mean_response_time * 1.2

    def test_random_routing_destroys_bt_hit_ratio(self):
        affinity = run_simulation(short_config(num_nodes=3, routing="affinity"))
        random_ = run_simulation(short_config(num_nodes=3, routing="random"))
        assert affinity.hit_ratios["BRANCH_TELLER"] > 0.55
        assert random_.hit_ratios["BRANCH_TELLER"] < 0.45
        assert (
            random_.invalidations_per_txn["BRANCH_TELLER"]
            > affinity.invalidations_per_txn["BRANCH_TELLER"]
        )

    def test_pcl_local_share_matches_routing(self):
        affinity = run_simulation(
            short_config(coupling="pcl", routing="affinity", num_nodes=2)
        )
        random_ = run_simulation(
            short_config(coupling="pcl", routing="random", num_nodes=2)
        )
        # Affinity: only ~15% of ACCOUNT locks can be remote -> >90%.
        assert affinity.local_lock_share > 0.9
        # Random: ~1/N of lock requests are local.
        assert random_.local_lock_share == pytest.approx(0.5, abs=0.1)

    def test_pcl_sends_messages_gem_does_not(self):
        gem = run_simulation(short_config(coupling="gem", routing="random"))
        pcl = run_simulation(short_config(coupling="pcl", routing="random"))
        assert pcl.messages_per_txn > 2.0
        assert gem.messages_per_txn < 1.5  # only NOFORCE page requests

    def test_gem_utilization_negligible(self):
        result = run_simulation(short_config(num_nodes=3, routing="random"))
        assert result.gem_utilization < 0.05  # paper: < 2% at 1000 TPS

    def test_noforce_page_requests_under_random_routing(self):
        result = run_simulation(
            short_config(coupling="gem", routing="random", num_nodes=3)
        )
        assert result.page_requests_per_txn > 0.1
        # Paper footnote 2: ~6.5 ms per page request vs 16.4 ms disk.
        assert 0.001 < result.mean_page_request_delay < 0.015


class TestTraceEndToEnd:
    def test_trace_run_completes_cleanly(self):
        config = short_config(
            workload="trace",
            arrival_rate_per_node=30.0,
            buffer_pages_per_node=500,
            trace=TraceWorkloadConfig(scale=0.05),
            warmup_time=0.5,
            measure_time=2.0,
        )
        result = run_simulation(config)
        assert result.completed > 10
        assert result.mean_accesses_per_txn > 10
        assert result.mean_response_time_artificial > 0

    def test_trace_pcl_with_read_optimization(self):
        config = short_config(
            coupling="pcl",
            workload="trace",
            arrival_rate_per_node=30.0,
            buffer_pages_per_node=500,
            pcl_read_optimization=True,
            trace=TraceWorkloadConfig(scale=0.05),
            warmup_time=0.5,
            measure_time=2.0,
        )
        cluster = Cluster(config)
        cluster.sim.run(until=2.5)
        assert cluster.protocol.auth_read_locks > 0
