"""Byte-identical golden-equivalence tests for whole experiments.

``test_golden.py`` freezes single simulation points with a float
tolerance; this layer freezes whole *experiments* -- fig 4.1, fig 4.5
and the failover experiment -- at smoke scale and requires the rendered
tables, response-time breakdowns and every deterministic result field
to be **byte-identical** to the committed snapshot.  Performance work
on the simulator hot paths must keep these green without regeneration:
any speedup that changes event counts, event order or float arithmetic
is a semantic change and shows up here immediately.

Regenerate after an intentional semantic change with::

    PYTHONPATH=src:. python tests/system/test_golden_equivalence.py --regen
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, List

import pytest

from repro.experiments import fig41, fig45, fig_failover, fig_regimes
from repro.experiments.common import ExperimentResult, Scale
from repro.system.config import SystemConfig
from repro.system.results import RunResult
from repro.system.runner import run_simulation

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "..", "golden")


class _SerialRunner:
    """Duck-types SweepRunner.run_many: in-process, no cache, no pool.

    Equivalence goldens must re-simulate every point -- a results cache
    would make the test vacuously green.
    """

    def run_many(self, configs: List[SystemConfig], label: str = "") -> List[RunResult]:
        return [run_simulation(config) for config in configs]


def _experiment_snapshot(result: ExperimentResult) -> Dict[str, Any]:
    return {
        "table": result.table(),
        "breakdown_table": result.breakdown_table(),
        "results": {
            series.label: [
                [n, point.deterministic_dict()] for n, point in series.points
            ]
            for series in result.series
        },
    }


def _failover_snapshot(result: fig_failover.FailoverResult) -> Dict[str, Any]:
    return {
        "table": result.table(),
        "points": [
            {
                "label": point.label,
                "pre_crash_throughput": point.pre_crash_throughput,
                "dip_throughput": point.dip_throughput,
                "recovery_width": point.recovery_width,
                "result": point.result.deterministic_dict(),
            }
            for point in result.points
        ],
    }


def _run_fig41() -> Dict[str, Any]:
    return _experiment_snapshot(fig41.run(Scale.smoke(), runner=_SerialRunner()))


def _run_fig45() -> Dict[str, Any]:
    # Buffer 200 only: halves the grid without losing any code path the
    # buffer-1000 runs would exercise.
    return _experiment_snapshot(
        fig45.run(Scale.smoke(), buffer_sizes=(200,), runner=_SerialRunner())
    )


def _run_failover() -> Dict[str, Any]:
    # Pinned to the paper's two regimes: this golden predates the RDMA
    # coupling and must stay byte-identical across its addition.
    return _failover_snapshot(
        fig_failover.run(Scale.smoke(), couplings=("gem", "pcl"))
    )


def _run_failover_rdma() -> Dict[str, Any]:
    return _failover_snapshot(
        fig_failover.run(Scale.smoke(), couplings=("rdma",))
    )


def _run_fig_regimes() -> Dict[str, Any]:
    # Trace rows excluded: the debit-credit grid already covers every
    # regime x protocol code path at a third of the run time.
    return _experiment_snapshot(
        fig_regimes.run(Scale.smoke(), include_trace=False, runner=_SerialRunner())
    )


EXPERIMENTS = {
    "equivalence_fig41": _run_fig41,
    "equivalence_fig45": _run_fig45,
    "equivalence_fig_failover": _run_failover,
    "equivalence_fig_failover_rdma": _run_failover_rdma,
    "equivalence_fig_regimes": _run_fig_regimes,
}


def golden_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{name}.json")


def _dump(snapshot: Dict[str, Any]) -> str:
    return json.dumps(snapshot, indent=2, sort_keys=True) + "\n"


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_experiment_byte_identical(name: str) -> None:
    path = golden_path(name)
    assert os.path.exists(path), (
        f"golden file {path} missing -- regenerate with "
        "`python tests/system/test_golden_equivalence.py --regen`"
    )
    with open(path) as fh:
        frozen = fh.read()
    fresh = _dump(EXPERIMENTS[name]())
    if fresh != frozen:
        frozen_obj = json.loads(frozen)
        fresh_obj = json.loads(fresh)
        details = []
        for key in ("table", "breakdown_table"):
            if frozen_obj.get(key) != fresh_obj.get(key):
                details.append(
                    f"--- frozen {key} ---\n{frozen_obj.get(key)}\n"
                    f"--- fresh {key} ---\n{fresh_obj.get(key)}"
                )
        raise AssertionError(
            f"{name}: experiment output is no longer byte-identical to the "
            "golden snapshot (simulation semantics changed; regenerate the "
            "goldens only for an intentional change).\n" + "\n".join(details)
        )


def regenerate() -> None:  # pragma: no cover
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name, runner in sorted(EXPERIMENTS.items()):
        with open(golden_path(name), "w") as fh:
            fh.write(_dump(runner()))
        print(f"wrote {golden_path(name)}")


if __name__ == "__main__":  # pragma: no cover
    import sys

    if "--regen" in sys.argv:
        regenerate()
    else:
        print(__doc__)
