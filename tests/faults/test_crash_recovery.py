"""End-to-end crash/failover/reintegration tests for both regimes.

A clean completion of these runs is itself a strong check: the version
ledger raises on any stale read, the fault manager raises if recovery
leaves pages unredone, and the engine raises on unhandled process
failures."""

import pytest

from repro.system.cluster import Cluster
from repro.system.runner import run_simulation

from tests.helpers import system_config


def crash_config(**overrides):
    overrides.setdefault("num_nodes", 3)
    overrides.setdefault("arrival_rate_per_node", 60.0)
    overrides.setdefault("warmup_time", 0.5)
    overrides.setdefault("measure_time", 3.0)
    overrides.setdefault(
        "faults", {"crashes": [{"node": 1, "time": 1.0, "down_time": 0.8}]}
    )
    return system_config(**overrides)


@pytest.mark.parametrize("coupling", ["gem", "pcl"])
class TestCrashCycle:
    def test_cycle_completes_and_is_accounted(self, coupling):
        result = run_simulation(crash_config(coupling=coupling))
        assert result.crashes == 1
        # In-flight work on the victim died with it.
        assert result.aborted_by_crash >= 1
        # Arrivals for the dead node went to survivors while it was down.
        assert result.arrivals_redirected >= 10
        # Failover starts after the detection delay and does real work.
        assert 0.01 < result.mean_failover_seconds < 0.8
        # Reintegration includes at least the restart CPU (0.5 s at the
        # default 5e6 instructions / 10 MIPS).
        assert result.mean_reintegration_seconds == pytest.approx(0.5, abs=0.2)
        # Down from the crash until marked up again (down_time 0.8 plus
        # the restart CPU).
        assert result.total_down_seconds == pytest.approx(1.3, abs=0.05)
        # The system kept doing useful work throughout.
        assert result.completed > 300

    def test_deterministic_per_seed(self, coupling):
        config = crash_config(coupling=coupling)
        first = run_simulation(config).deterministic_dict()
        second = run_simulation(config).deterministic_dict()
        assert first == second

    def test_different_seed_differs(self, coupling):
        config = crash_config(coupling=coupling)
        first = run_simulation(config)
        second = run_simulation(config.replace(random_seed=7))
        assert first.completed != second.completed


class TestRegimeGap:
    def test_gem_reintegrates_faster_than_pcl(self):
        gem = run_simulation(crash_config(coupling="gem"))
        pcl = run_simulation(crash_config(coupling="pcl"))
        # GEM's reintegration is the restart CPU alone (the lock state
        # survived in the non-volatile GEM); PCL additionally pays the
        # GLA failback: dirty-page flush, lock-state transfer, and
        # per-registration CPU.
        assert gem.mean_reintegration_seconds < pcl.mean_reintegration_seconds


class TestDisabled:
    def test_no_fault_fields_without_faults(self):
        result = run_simulation(system_config())
        assert result.crashes == 0
        assert result.aborted_by_crash == 0
        assert result.arrivals_redirected == 0
        assert result.mean_failover_seconds == 0.0
        assert result.mean_reintegration_seconds == 0.0
        assert result.total_down_seconds == 0.0


class TestPostRecoveryInvariants:
    @pytest.mark.parametrize("coupling", ["gem", "pcl"])
    def test_no_dead_txn_lock_entries(self, coupling):
        config = crash_config(coupling=coupling)
        cluster = Cluster(config)
        cluster.sim.run(until=config.warmup_time)
        cluster.reset_stats()
        cluster.sim.run(until=config.warmup_time + config.measure_time)

        killed = {
            txn.txn_id
            for record in cluster.faults.records
            for txn in record.killed
        }
        assert killed  # the crash caught work in flight
        active = set()
        for node in cluster.nodes:
            active.update(node.tm.active)
        for table in cluster.protocol.lock_tables():
            for page, entry in table._entries.items():
                for txn_id in entry.holders:
                    assert txn_id not in killed, (page, txn_id)
                    assert txn_id in active, (page, txn_id)
                for request in entry.queue:
                    assert request.txn not in killed, (page, request.txn)
                    assert request.txn in active, (page, request.txn)
