"""Unit tests for the FaultManager primitives (liveness queries,
reply watching, REDO fences, PCL partition gates) and the failover
router, on a quiesced cluster."""

import pytest

from repro.routing.failover import FailoverRouter

from tests.helpers import drive_cluster as drive
from tests.helpers import quiesced_cluster

#: A crash scheduled far beyond any test horizon: enables the fault
#: subsystem without ever firing.
FAR_CRASH = {"crashes": [{"node": 1, "time": 1e6, "down_time": 1.0}]}


def make_cluster(**overrides):
    overrides.setdefault("faults", FAR_CRASH)
    return quiesced_cluster(**overrides)


class TestWiring:
    def test_fault_manager_built_when_enabled(self):
        cluster = make_cluster()
        assert cluster.faults is not None
        assert isinstance(cluster.router, FailoverRouter)
        assert cluster.source.router is cluster.router

    def test_no_fault_manager_when_disabled(self):
        cluster = quiesced_cluster()
        assert cluster.faults is None
        assert not isinstance(cluster.router, FailoverRouter)


class TestLiveness:
    def test_reroute_identity_when_up(self):
        faults = make_cluster(num_nodes=3).faults
        assert faults.reroute(1) == 1
        assert faults.redirected_arrivals == 0

    def test_reroute_next_surviving_node(self):
        faults = make_cluster(num_nodes=3).faults
        faults.down.add(1)
        assert faults.reroute(1) == 2
        assert faults.redirected_arrivals == 1

    def test_reroute_wraps_around(self):
        faults = make_cluster(num_nodes=3).faults
        faults.down.update({1, 2})
        assert faults.reroute(1) == 0

    def test_coordinator_is_lowest_survivor(self):
        faults = make_cluster(num_nodes=3).faults
        assert faults.coordinator() == 0
        faults.down.add(0)
        assert faults.coordinator() == 1


class TestReplyWatching:
    def test_sentinel_immediate_for_down_destination(self):
        cluster = make_cluster()
        cluster.faults.down.add(1)
        reply = cluster.sim.event()
        cluster.faults.watch(1, reply)
        assert reply.triggered
        assert reply.value == {"crashed": True}

    def test_sentinel_fired_on_crash(self):
        cluster = make_cluster()
        reply = cluster.sim.event()
        cluster.faults.watch(1, reply)
        assert not reply.triggered
        cluster.faults._crash(1)
        assert reply.triggered
        assert reply.value == {"crashed": True}

    def test_unwatch_removes_registration(self):
        cluster = make_cluster()
        reply = cluster.sim.event()
        cluster.faults.watch(1, reply)
        cluster.faults.unwatch(1, reply)
        cluster.faults._crash(1)
        assert not reply.triggered


class TestRedoFence:
    def test_wait_redo_blocks_until_done(self):
        cluster = make_cluster()
        faults = cluster.faults
        page = (0, 7)
        faults._pending_redo[page] = cluster.sim.event()
        passed = []

        def reader():
            yield from faults.wait_redo(page)
            passed.append(cluster.sim.now)

        proc = cluster.sim.process(reader())
        cluster.sim.run(until=0.5)
        assert not passed and proc.is_alive
        faults._redo_done(page)
        cluster.sim.run(until=1.0)
        assert passed

    def test_wait_redo_noop_without_fence(self):
        cluster = make_cluster()
        value = drive(cluster, cluster.faults.wait_redo((0, 7)))
        assert value is None


class TestPartitionGates:
    def test_resolve_waits_for_open(self):
        cluster = make_cluster()
        faults = cluster.faults
        faults.close_partition(1)
        resolved = []

        def resolver():
            host = yield from faults.resolve_gla(1)
            resolved.append(host)

        cluster.sim.process(resolver())
        cluster.sim.run(until=0.5)
        assert not resolved  # gated
        faults.open_partition(1, 0)
        cluster.sim.run(until=1.0)
        assert resolved == [0]
        assert faults.gla_host(1) == 0

    def test_open_with_none_clears_override(self):
        faults = make_cluster().faults
        faults.close_partition(1)
        faults.open_partition(1, 0)
        faults.close_partition(1)
        faults.open_partition(1, None)
        assert faults.gla_host(1) == 1

    def test_resolve_without_gate_is_home(self):
        cluster = make_cluster()
        assert drive(cluster, cluster.faults.resolve_gla(1)) == 1


class TestSingleFailureGuard:
    def test_overlapping_crash_skipped(self):
        cluster = make_cluster(num_nodes=3)
        faults = cluster.faults
        faults.down.add(2)
        drive(cluster, faults._cycle(1, 0.1))
        assert faults.crashes_skipped == 1
        assert 1 not in faults.down

    def test_last_node_never_killed(self):
        cluster = quiesced_cluster(
            num_nodes=1,
            faults={"crashes": [{"node": 0, "time": 0.1, "down_time": 0.5}]},
        )
        cluster.sim.run(until=1.0)
        assert cluster.faults.crashes_skipped == 1
        assert cluster.faults.crashes == 0


class TestSentinelOrder:
    def test_sentinels_fire_in_watch_registration_order(self):
        """Crash sentinels must fire in watch order, not address order.

        ``Event`` hashes by identity, so the former ``Set[Event]``
        registry fired the sentinels in interpreter address order --
        different from run to run, reshuffling the post-crash event
        schedule.  The insertion-ordered registry makes the firing
        order equal the watch order.
        """
        cluster = make_cluster()
        fired = []
        replies = []
        for index in range(32):
            reply = cluster.sim.event()
            reply.callbacks.append(lambda _e, i=index: fired.append(i))
            cluster.faults.watch(1, reply)
            replies.append(reply)
        cluster.faults._answer_watched(1)
        cluster.sim.run(until=cluster.sim.now + 1e-9)
        assert all(r.triggered for r in replies)
        assert fired == list(range(32))
