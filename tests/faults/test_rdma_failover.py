"""Crash/failover/reintegration under the disaggregated-memory regime.

The RDMA regime's failure semantics differ from both paper regimes:
the pool survives a compute-node crash (no lock state is lost and
pool-resident pages need no REDO), but nobody can revoke a dead node's
one-sided lock words before its lease expires, and a restarted node
pays a fabric re-registration before issuing verbs again.  Net effect,
frozen by :class:`TestRegimeOrdering`: failover and reintegration both
land **between** GEM's and PCL's.
"""

import pytest

from repro.experiments import fig_failover
from repro.experiments.common import Scale
from repro.system.cluster import Cluster
from repro.system.runner import run_simulation

from tests.helpers import system_config

#: Restart CPU (0.5 s) plus the fabric re-registration (0.08 s).
EXPECTED_REINTEGRATION = 0.58


def crash_config(**overrides):
    overrides.setdefault("coupling", "rdma")
    overrides.setdefault("num_nodes", 3)
    overrides.setdefault("arrival_rate_per_node", 60.0)
    overrides.setdefault("warmup_time", 0.5)
    overrides.setdefault("measure_time", 3.0)
    overrides.setdefault(
        "faults", {"crashes": [{"node": 1, "time": 1.0, "down_time": 0.8}]}
    )
    return system_config(**overrides)


@pytest.mark.parametrize("protocol", ["2pl", "mvcc", "dgcc"])
class TestRdmaCrashCycle:
    def test_cycle_completes_and_is_accounted(self, protocol):
        result = run_simulation(crash_config(protocol=protocol))
        assert result.crashes == 1
        assert result.aborted_by_crash >= 1
        assert result.arrivals_redirected >= 10
        if protocol == "dgcc":
            # DGCC holds no locks: nothing to reclaim, no lease to sit
            # out -- failover is detection plus the (pool-trimmed) REDO.
            assert 0.0 < result.mean_failover_seconds < 0.2
        else:
            # Lock reclamation must wait out the dead node's lease.
            lease = crash_config().rdma_lock_lease_seconds
            assert lease < result.mean_failover_seconds < lease + 0.3
        assert result.mean_reintegration_seconds == pytest.approx(
            EXPECTED_REINTEGRATION, abs=0.2
        )
        assert result.completed > 300

    def test_deterministic_per_seed(self, protocol):
        config = crash_config(protocol=protocol)
        first = run_simulation(config).deterministic_dict()
        second = run_simulation(config).deterministic_dict()
        assert first == second


class TestPoolSurvivesTheCrash:
    def test_pool_resident_pages_leave_the_lost_set(self):
        config = crash_config()
        cluster = Cluster(config)
        helper = cluster.protocol.rdma
        trimmed = []
        real_trim = helper.trim_lost

        def probing_trim(record):
            before = len(record.lost)
            real_trim(record)
            trimmed.append((before, len(record.lost)))

        helper.trim_lost = probing_trim
        cluster.sim.run(until=config.warmup_time + config.measure_time)
        assert trimmed, "crash never reached the protocol hook"
        before, after = trimmed[0]
        # Under NOFORCE at 60 TPS the victim's committed-but-dirty
        # pages are pool-resident: REDO shrinks, the structural
        # advantage of disaggregation.
        assert after < before

    def test_lease_delays_lock_reclamation(self):
        config = crash_config(protocol="2pl")
        cluster = Cluster(config)
        crash_time = config.faults.crashes[0].time
        releases = []
        plt = cluster.protocol.plt
        real_release = plt.release

        def timed_release(txn, page):
            releases.append(cluster.sim.now)
            return real_release(txn, page)

        killed_ids = set()
        real_crash = cluster.protocol.crash_node

        def probing_crash(faults, record):
            killed_ids.update(t.txn_id for t in record.killed)
            plt.release = timed_release
            return real_crash(faults, record)

        cluster.protocol.crash_node = probing_crash
        cluster.sim.run(until=config.warmup_time + config.measure_time)
        assert killed_ids, "crash killed no transactions -- not meaningful"
        lease_expiry = crash_time + config.rdma_lock_lease_seconds
        # Every post-crash release (reclamation or surviving-txn
        # completion racing it) must respect the word semantics; the
        # reclamations themselves come after the lease expired.
        assert releases, "no lock was released after the crash"
        assert max(releases) >= lease_expiry - 1e-9


class TestRegimeOrdering:
    """Freeze the calibrated recovery ordering at fig_failover scale."""

    @pytest.fixture(scope="class")
    def points(self):
        result = fig_failover.run(Scale.smoke())
        return {p.label: p for p in result.points}

    def test_all_three_regimes_complete(self, points):
        assert set(points) == {"GEM", "PCL", "RDMA"}
        for point in points.values():
            assert point.result.crashes == 1
            assert point.recovered, point.label

    def test_failover_ordering(self, points):
        failover = {
            label: p.result.mean_failover_seconds for label, p in points.items()
        }
        # PCL's GLA takeover beats sitting out the RDMA lease; GEM's
        # REDO-dominated failover is the longest at this load.
        assert failover["PCL"] < failover["RDMA"] < failover["GEM"]

    def test_reintegration_ordering(self, points):
        reintegration = {
            label: p.result.mean_reintegration_seconds
            for label, p in points.items()
        }
        # GEM: restart CPU only.  RDMA: plus fabric re-registration.
        # PCL: plus the full GLA failback.
        assert (
            reintegration["GEM"]
            < reintegration["RDMA"]
            < reintegration["PCL"]
        )
