"""Unit tests for the fault-injection configuration."""

import pytest

from repro.faults.config import CrashSpec, FaultConfig
from repro.system.config import SystemConfig


class TestCrashSpec:
    def test_valid(self):
        spec = CrashSpec(time=2.0, node=1, down_time=0.5)
        assert (spec.time, spec.node, spec.down_time) == (2.0, 1, 0.5)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            CrashSpec(time=-1.0, node=0, down_time=0.5)

    def test_negative_node_rejected(self):
        with pytest.raises(ValueError):
            CrashSpec(time=1.0, node=-1, down_time=0.5)

    def test_zero_down_time_rejected(self):
        with pytest.raises(ValueError):
            CrashSpec(time=1.0, node=0, down_time=0.0)


class TestFaultConfig:
    def test_disabled_by_default(self):
        assert not FaultConfig().enabled

    def test_scripted_crashes_enable(self):
        config = FaultConfig(crashes=[{"node": 0, "time": 1.0, "down_time": 0.5}])
        assert config.enabled
        # Dict specs are coerced to CrashSpec.
        assert isinstance(config.crashes[0], CrashSpec)

    def test_periodic_enables(self):
        assert FaultConfig(mttf=100.0, mttr=1.0).enabled

    def test_mttr_without_mttf_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(mttr=1.0)

    def test_mttf_without_mttr_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(mttf=100.0)

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            FaultConfig(mttf=-1.0)


class TestSystemConfigEmbedding:
    def test_dict_coerced(self):
        config = SystemConfig(
            num_nodes=2,
            faults={"crashes": [{"node": 1, "time": 1.0, "down_time": 0.5}]},
        )
        assert isinstance(config.faults, FaultConfig)
        assert config.faults.enabled

    def test_crash_node_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            SystemConfig(
                num_nodes=2,
                faults={"crashes": [{"node": 2, "time": 1.0, "down_time": 0.5}]},
            )

    def test_none_by_default(self):
        assert SystemConfig().faults is None
