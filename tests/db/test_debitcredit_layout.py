"""Unit tests for the debit-credit database layout."""

import pytest

from repro.db.debitcredit import DebitCreditLayout
from repro.system.config import DebitCreditConfig


@pytest.fixture
def layout():
    return DebitCreditLayout(DebitCreditConfig(), num_nodes=4)


class TestScaling:
    def test_database_scales_with_nodes(self, layout):
        assert layout.total_branches == 400
        assert layout.total_accounts == 40_000_000

    def test_partition_sizes(self, layout):
        db = layout.database
        assert db["BRANCH_TELLER"].num_pages == 400  # one page per branch
        assert db["ACCOUNT"].num_pages == 4_000_000
        assert db["HISTORY"].num_pages is None

    def test_clustered_blocking_factor(self, layout):
        assert layout.database["BRANCH_TELLER"].blocking_factor == 11

    def test_history_not_lockable(self, layout):
        assert not layout.database["HISTORY"].lockable
        assert layout.database["ACCOUNT"].lockable

    def test_disks_scale_with_nodes(self, layout):
        config = DebitCreditConfig()
        assert (
            layout.database["ACCOUNT"].disks
            == config.account_disks_per_node * 4
        )


class TestRecordMapping:
    def test_branch_of_account(self, layout):
        assert layout.branch_of_account(0) == 0
        assert layout.branch_of_account(99_999) == 0
        assert layout.branch_of_account(100_000) == 1

    def test_account_pages_never_span_branches(self, layout):
        # First account of branch 1 starts a fresh page.
        last_of_branch0 = layout.account_page(99_999)
        first_of_branch1 = layout.account_page(100_000)
        assert last_of_branch0 != first_of_branch1

    def test_account_blocking_factor(self, layout):
        assert layout.account_page(0) == layout.account_page(9)
        assert layout.account_page(0) != layout.account_page(10)

    def test_clustered_teller_page_is_branch_page(self, layout):
        assert layout.teller_page(7, 3) == layout.branch_teller_page(7)

    def test_unclustered_teller_page_differs(self):
        config = DebitCreditConfig(cluster_branch_teller=False)
        layout = DebitCreditLayout(config, num_nodes=1)
        branch_page = layout.branch_teller_page(7)
        teller_page = layout.teller_page(7, 3)
        assert branch_page[0] != teller_page[0]  # different partitions

    def test_misaligned_blocking_factor_rejected(self):
        config = DebitCreditConfig(accounts_per_branch=100_001)
        with pytest.raises(ValueError):
            DebitCreditLayout(config, num_nodes=1)


class TestAffinity:
    def test_home_node_partitions_branches_equally(self, layout):
        homes = [layout.home_node(b) for b in range(400)]
        for node in range(4):
            assert homes.count(node) == 100

    def test_home_node_contiguous_ranges(self, layout):
        assert layout.home_node(0) == 0
        assert layout.home_node(99) == 0
        assert layout.home_node(100) == 1
        assert layout.home_node(399) == 3

    def test_out_of_range_branch_rejected(self, layout):
        with pytest.raises(ValueError):
            layout.home_node(400)

    def test_gla_of_branch_teller_page_matches_home(self, layout):
        for branch in [0, 99, 100, 399]:
            page = layout.branch_teller_page(branch)
            assert layout.gla_of_page(page) == layout.home_node(branch)

    def test_gla_of_account_page_matches_branch_home(self, layout):
        account = 25 * 100_000 + 17  # branch 25 -> node 0
        page = layout.account_page(account)
        assert layout.gla_of_page(page) == layout.home_node(25)

    def test_gla_of_history_page_uses_embedded_node(self, layout):
        history_index = layout.history.index
        page = (history_index, (2 << 40) | 5)
        assert layout.gla_of_page(page) == 2
