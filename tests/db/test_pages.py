"""Unit tests for the version ledger (coherency ground truth)."""

import pytest

from repro.db.pages import CoherencyError, VersionLedger


class TestCommittedVersions:
    def test_initial_version_zero(self):
        ledger = VersionLedger()
        assert ledger.committed_version((0, 1)) == 0

    def test_install_commit_advances(self):
        ledger = VersionLedger()
        ledger.install_commit((0, 1), 1)
        ledger.install_commit((0, 1), 2)
        assert ledger.committed_version((0, 1)) == 2

    def test_install_commit_backwards_rejected(self):
        ledger = VersionLedger()
        ledger.install_commit((0, 1), 3)
        with pytest.raises(CoherencyError):
            ledger.install_commit((0, 1), 3)
        with pytest.raises(CoherencyError):
            ledger.install_commit((0, 1), 2)

    def test_pages_are_independent(self):
        ledger = VersionLedger()
        ledger.install_commit((0, 1), 5)
        assert ledger.committed_version((0, 2)) == 0


class TestStorageVersions:
    def test_write_storage_records_version(self):
        ledger = VersionLedger()
        ledger.write_storage((1, 7), 4)
        assert ledger.storage_version((1, 7)) == 4

    def test_out_of_order_write_ignored(self):
        ledger = VersionLedger()
        ledger.write_storage((1, 7), 4)
        ledger.write_storage((1, 7), 2)  # stale async write completes late
        assert ledger.storage_version((1, 7)) == 4


class TestVerification:
    def test_check_read_accepts_current(self):
        ledger = VersionLedger()
        ledger.install_commit((0, 1), 2)
        ledger.check_read((0, 1), 2, source="buffer")

    def test_check_read_rejects_stale(self):
        ledger = VersionLedger()
        ledger.install_commit((0, 1), 2)
        with pytest.raises(CoherencyError, match="stale read"):
            ledger.check_read((0, 1), 1, source="buffer")

    def test_check_storage_current(self):
        ledger = VersionLedger()
        ledger.write_storage((0, 1), 3)
        assert ledger.check_storage_current((0, 1), 3) == 3
        with pytest.raises(CoherencyError):
            ledger.check_storage_current((0, 1), 2)
