"""Unit tests for partitions and databases."""

import pytest

from repro.db.schema import Database, Partition, StorageKind


class TestPartition:
    def test_page_of_record_uses_blocking_factor(self):
        p = Partition("ACCOUNT", 0, num_pages=100, blocking_factor=10)
        assert p.page_of_record(0) == 0
        assert p.page_of_record(9) == 0
        assert p.page_of_record(10) == 1
        assert p.page_of_record(999) == 99

    def test_negative_record_rejected(self):
        p = Partition("A", 0, num_pages=10)
        with pytest.raises(ValueError):
            p.page_of_record(-1)

    def test_page_id_encodes_partition_index(self):
        p = Partition("A", 3, num_pages=10)
        assert p.page_id(7) == (3, 7)

    def test_page_id_range_checked(self):
        p = Partition("A", 0, num_pages=10)
        with pytest.raises(ValueError):
            p.page_id(10)
        with pytest.raises(ValueError):
            p.page_id(-1)

    def test_unbounded_partition_accepts_any_page(self):
        p = Partition("HISTORY", 0, num_pages=None, blocking_factor=20)
        assert p.page_id(10**12) == (0, 10**12)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            Partition("A", 0, num_pages=0)
        with pytest.raises(ValueError):
            Partition("A", 0, num_pages=10, blocking_factor=0)
        with pytest.raises(ValueError):
            Partition("A", 0, num_pages=10, disks=0)

    def test_storage_kind_coerced(self):
        p = Partition("A", 0, num_pages=10, storage="gem")
        assert p.storage is StorageKind.GEM


class TestDatabase:
    def _partitions(self):
        return [
            Partition("BT", 0, num_pages=100, blocking_factor=11),
            Partition("ACCOUNT", 1, num_pages=1000, blocking_factor=10),
            Partition("HISTORY", 2, num_pages=None, lockable=False),
        ]

    def test_lookup_by_name_and_index(self):
        db = Database(self._partitions())
        assert db["ACCOUNT"].index == 1
        assert db.by_index(2).name == "HISTORY"
        assert "BT" in db
        assert "XX" not in db
        assert len(db) == 3

    def test_duplicate_names_rejected(self):
        parts = self._partitions()
        parts[1] = Partition("BT", 1, num_pages=10)
        with pytest.raises(ValueError):
            Database(parts)

    def test_index_mismatch_rejected(self):
        parts = [Partition("A", 1, num_pages=10)]
        with pytest.raises(ValueError):
            Database(parts)

    def test_total_pages_skips_unbounded(self):
        db = Database(self._partitions())
        assert db.total_pages() == 1100

    def test_iteration_order(self):
        db = Database(self._partitions())
        assert [p.name for p in db] == ["BT", "ACCOUNT", "HISTORY"]
