"""Before/after fixtures for ``simlint --fix`` (DET001 + SUP001)."""

import textwrap

from repro.lint import fix_paths, fix_source, lint_sources


def fix(source, path="mod.py"):
    return fix_source(path, textwrap.dedent(source))


class TestDET001Fixes:
    def test_for_loop_iterable_is_wrapped(self):
        fixed, applied = fix(
            """\
            def walk(members: set):
                for member in members:
                    print(member)
            """
        )
        assert applied == 1
        assert "for member in sorted(members):" in fixed

    def test_list_materialisation_wraps_the_argument(self):
        fixed, applied = fix(
            """\
            def snapshot(members: set):
                return list(members)
            """
        )
        assert applied == 1
        assert "return list(sorted(members))" in fixed

    def test_os_listing_wraps_the_whole_call(self):
        fixed, applied = fix(
            """\
            import os


            def entries(path):
                return os.listdir(path)
            """
        )
        assert applied == 1
        assert "return sorted(os.listdir(path))" in fixed

    def test_iter_over_set_has_no_mechanical_fix(self):
        source = textwrap.dedent(
            """\
            def pick(members: set):
                return next(iter(members))
            """
        )
        fixed, applied = fix_source("mod.py", source)
        assert applied == 0
        assert fixed == source

    def test_multiline_call_wraps_across_lines(self):
        fixed, applied = fix(
            """\
            def snapshot(members: set):
                return list(
                    members
                )
            """
        )
        assert applied == 1
        assert "sorted(members)" in fixed

    def test_multiple_sites_fixed_bottom_up(self):
        fixed, applied = fix(
            """\
            def f(a: set, b: set):
                for x in a:
                    print(x)
                for y in b:
                    print(y)
            """
        )
        assert applied == 2
        assert "for x in sorted(a):" in fixed
        assert "for y in sorted(b):" in fixed


class TestSUP001Fixes:
    def test_colon_form_is_normalised(self):
        fixed, applied = fix(
            """\
            import os

            x = os.listdir(".")  # simlint: disable: det001 - host order ok here
            """
        )
        assert applied == 1
        assert "# simlint: disable=DET001 -- host order ok here" in fixed

    def test_disable_next_underscore_form_is_normalised(self):
        fixed, applied = fix(
            """\
            import os

            # simlint: disable_next=DET001 -- host order ok here
            x = os.listdir(".")
            """
        )
        assert applied == 1
        assert "# simlint: disable-next=DET001 -- host order ok here" in fixed

    def test_missing_justification_is_not_invented(self):
        source = textwrap.dedent(
            """\
            import time

            t = time.time()  # simlint: disable=DET002
            """
        )
        fixed, applied = fix_source("mod.py", source)
        assert applied == 0
        assert fixed == source

    def test_unknown_rule_id_is_left_alone(self):
        source = textwrap.dedent(
            """\
            x = 1  # simlint: disable: NOPE999 - not a real rule
            """
        )
        fixed, applied = fix_source("mod.py", source)
        assert applied == 0
        assert fixed == source


class TestIdempotencyAndIntegration:
    def test_fix_is_idempotent(self):
        source = """\
        import os


        def walk(members: set):
            files = os.listdir(".")  # simlint: disable: det002 - fs order
            return list(members) + files
        """
        once, applied_once = fix(source)
        assert applied_once > 0
        twice, applied_twice = fix_source("mod.py", once)
        assert applied_twice == 0
        assert twice == once

    def test_fixed_output_lints_clean(self):
        source = textwrap.dedent(
            """\
            import os


            def walk(members: set):
                for member in members:
                    print(member)
                return os.listdir(".")
            """
        )
        fixed, applied = fix_source("mod.py", source)
        assert applied == 2
        findings, _files = lint_sources([("mod.py", fixed)])
        assert findings == []

    def test_fix_paths_writes_only_changed_files(self, tmp_path):
        dirty = tmp_path / "dirty.py"
        clean = tmp_path / "clean.py"
        dirty.write_text("def f(s: set):\n    return list(s)\n")
        clean.write_text("def f():\n    return 1\n")
        before = clean.stat().st_mtime_ns

        changed = fix_paths([str(tmp_path)])
        assert changed == {str(dirty): 1}
        assert "list(sorted(s))" in dirty.read_text()
        assert clean.stat().st_mtime_ns == before
