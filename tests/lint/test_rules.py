"""Per-rule good/bad fixtures for the simlint analyzer.

Each rule gets at least one *bad* fixture that must produce the rule at
the expected line, and one *good* fixture (same hazard class, written
the deterministic/safe way) that must stay clean.
"""

import textwrap

from repro.lint import lint_sources


def lint_src(source, path="fixture.py"):
    findings, _files = lint_sources([(path, textwrap.dedent(source))])
    return findings


def rules_at(findings):
    return [(f.rule, f.line) for f in findings]


class TestDET001UnorderedIteration:
    def test_for_over_set_annotated_attr(self):
        findings = lint_src(
            """\
            from typing import Set

            class Table:
                def __init__(self) -> None:
                    self.members: Set[int] = set()

                def walk(self):
                    for member in self.members:
                        print(member)
            """
        )
        assert ("DET001", 8) in rules_at(findings)

    def test_for_over_sorted_set_is_clean(self):
        findings = lint_src(
            """\
            from typing import Set

            class Table:
                def __init__(self) -> None:
                    self.members: Set[int] = set()

                def walk(self):
                    for member in sorted(self.members):
                        print(member)
            """
        )
        assert findings == []

    def test_listcomp_over_set_local(self):
        findings = lint_src(
            """\
            def f():
                pending = {1, 2, 3}
                return [x + 1 for x in pending]
            """
        )
        assert ("DET001", 3) in rules_at(findings)

    def test_setcomp_over_set_is_clean(self):
        findings = lint_src(
            """\
            def f():
                pending = {1, 2, 3}
                return {x + 1 for x in pending}
            """
        )
        assert findings == []

    def test_order_insensitive_reduction_is_clean(self):
        findings = lint_src(
            """\
            def f():
                pending = {1, 2, 3}
                return max(x + 1 for x in pending), len(pending)
            """
        )
        assert findings == []

    def test_list_materialization_of_set(self):
        findings = lint_src(
            """\
            def f():
                pending = {1, 2, 3}
                return list(pending)
            """
        )
        assert ("DET001", 3) in rules_at(findings)

    def test_os_listdir_unsorted(self):
        findings = lint_src(
            """\
            import os

            def f(root):
                for name in os.listdir(root):
                    print(name)
            """
        )
        assert ("DET001", 4) in rules_at(findings)

    def test_os_listdir_sorted_is_clean(self):
        findings = lint_src(
            """\
            import os

            def f(root):
                for name in sorted(os.listdir(root)):
                    print(name)
            """
        )
        assert findings == []

    def test_set_union_expression(self):
        findings = lint_src(
            """\
            def f():
                a = {1}
                b = {2}
                for x in a | b:
                    print(x)
            """
        )
        assert ("DET001", 4) in rules_at(findings)

    def test_dict_of_set_subscript(self):
        findings = lint_src(
            """\
            from typing import Dict, Set

            class Waiters:
                def __init__(self) -> None:
                    self.by_node: Dict[int, Set[int]] = {}

                def walk(self, node):
                    for txn in self.by_node[node]:
                        print(txn)
            """
        )
        assert ("DET001", 8) in rules_at(findings)

    def test_dict_iteration_is_clean(self):
        findings = lint_src(
            """\
            def f():
                d = {1: "a", 2: "b"}
                for k in d:
                    print(k)
            """
        )
        assert findings == []


class TestDET002UnseededRandomness:
    def test_global_random_call(self):
        findings = lint_src(
            """\
            import random

            def jitter():
                return random.random()
            """
        )
        assert ("DET002", 4) in rules_at(findings)

    def test_random_class_import_is_not_det002(self):
        # Instantiating Random with an explicit seed is not *global*
        # randomness (DET002) -- but building a generator outside the
        # stream layer is an RNG001 hazard in its own right.
        findings = lint_src(
            """\
            from random import Random

            def make_stream(seed):
                return Random(seed)
            """
        )
        assert rules_at(findings) == [("RNG001", 4)]

    def test_time_time_call(self):
        findings = lint_src(
            """\
            import time

            def stamp():
                return time.time()
            """
        )
        assert ("DET002", 4) in rules_at(findings)

    def test_uuid_call(self):
        findings = lint_src(
            """\
            import uuid

            def token():
                return uuid.uuid4()
            """
        )
        assert ("DET002", 4) in rules_at(findings)

    def test_id_as_sort_key(self):
        findings = lint_src(
            """\
            def order(events):
                return sorted(events, key=lambda e: id(e))
            """
        )
        assert any(f.rule == "DET002" for f in findings)

    def test_id_outside_ordering_is_clean(self):
        findings = lint_src(
            """\
            def label(obj):
                return f"obj-{id(obj)}"
            """
        )
        assert findings == []


class TestDET003FloatAccumulation:
    def test_sum_over_set(self):
        findings = lint_src(
            """\
            def total(weights):
                pending = {1.5, 2.5}
                return sum(pending)
            """
        )
        assert ("DET003", 3) in rules_at(findings)

    def test_count_over_set_is_clean(self):
        findings = lint_src(
            """\
            def count(pending):
                live = {1, 2}
                return sum(1 for x in live if x)
            """
        )
        assert findings == []

    def test_sum_over_sorted_set_is_clean(self):
        findings = lint_src(
            """\
            def total():
                pending = {1.5, 2.5}
                return sum(sorted(pending))
            """
        )
        assert findings == []


class TestSIM001UnprotectedGrantWait:
    def test_bare_request_yield_in_generator(self):
        findings = lint_src(
            """\
            def worker(cpu):
                yield cpu.request()
                try:
                    yield cpu.busy_work(100)
                finally:
                    cpu.release()
            """
        )
        assert ("SIM001", 2) in rules_at(findings)

    def test_cancel_protected_wait_is_clean(self):
        findings = lint_src(
            """\
            def worker(cpu):
                request = cpu.request()
                try:
                    yield request
                except BaseException:
                    cpu.cancel(request)
                    raise
                try:
                    yield cpu.busy_work(100)
                finally:
                    cpu.release()
            """
        )
        assert findings == []

    def test_finally_release_protected_wait_is_clean(self):
        findings = lint_src(
            """\
            def worker(cpu):
                try:
                    yield cpu.request()
                    yield cpu.busy_work(100)
                finally:
                    cpu.release()
            """
        )
        assert findings == []

    def test_non_generator_wrapper_is_clean(self):
        findings = lint_src(
            """\
            def request(self):
                return self.resource.request()
            """
        )
        assert findings == []


class TestSIM002SpanWithoutWith:
    def test_bare_span_call(self):
        findings = lint_src(
            """\
            def measure(recorder, txn):
                recorder.span(txn, "CPU")
            """
        )
        assert ("SIM002", 2) in rules_at(findings)

    def test_span_as_context_manager_is_clean(self):
        findings = lint_src(
            """\
            def measure(recorder, txn):
                with recorder.span(txn, "CPU"):
                    pass
            """
        )
        assert findings == []


class TestSIM003HeapTieBreak:
    def test_heappush_tuple_ending_in_object(self):
        findings = lint_src(
            """\
            import heapq

            def schedule(heap, when, event):
                heapq.heappush(heap, (when, event))
            """
        )
        assert ("SIM003", 4) in rules_at(findings)

    def test_heappush_with_seq_tiebreak_is_clean(self):
        findings = lint_src(
            """\
            import heapq

            def schedule(heap, when, seq, event):
                heapq.heappush(heap, (when, seq, event))
            """
        )
        assert findings == []


class TestCrossFileRegistry:
    def test_set_attr_annotated_in_one_file_flagged_in_another(self):
        owner = """\
        from typing import Set

        class GlobalTable:
            def __init__(self) -> None:
                self.auth_nodes: Set[int] = set()
        """
        user = """\
        def walk(table):
            for node in table.auth_nodes:
                print(node)
        """
        findings, files = lint_sources(
            [
                ("owner.py", textwrap.dedent(owner)),
                ("user.py", textwrap.dedent(user)),
            ]
        )
        assert files == 2
        assert [(f.path, f.rule, f.line) for f in findings] == [
            ("user.py", "DET001", 2)
        ]

    def test_bare_names_stay_module_local(self):
        # 'nodes' is a set in one module; a like-named *list* attribute
        # in another module must not be poisoned by it.
        setter = """\
        def collect():
            nodes = set()
            return nodes
        """
        lister = """\
        def walk(cluster):
            for node in cluster.nodes:
                print(node)
        """
        findings, _files = lint_sources(
            [
                ("setter.py", textwrap.dedent(setter)),
                ("lister.py", textwrap.dedent(lister)),
            ]
        )
        assert [f for f in findings if f.path == "lister.py"] == []


class TestSeededBadPatterns:
    """The acceptance check: seeding a known-bad pattern into a real
    concurrency-control source file must produce the right rule at the
    right location."""

    @staticmethod
    def line_of(source, marker):
        return source[: source.index(marker)].count("\n") + 1

    def test_seeded_global_random_in_cc_source(self):
        path = "src/repro/cc/pcl.py"
        seeded = open(path).read() + (
            "\n\ndef _seeded_jitter():\n"
            "    import random\n"
            "    return random.random()\n"
        )
        findings, _files = lint_sources([(path, seeded)])
        assert [(f.rule, f.path, f.line) for f in findings] == [
            ("DET002", path, self.line_of(seeded, "return random.random()"))
        ]

    def test_seeded_set_iteration_in_cc_source(self):
        path = "src/repro/cc/gem_locking.py"
        seeded = open(path).read() + (
            "\n\ndef _seeded_walk(entry):\n"
            "    pending = {1, 2, 3}\n"
            "    for item in pending:\n"
            "        print(item)\n"
        )
        findings, _files = lint_sources([(path, seeded)])
        assert [(f.rule, f.path, f.line) for f in findings] == [
            ("DET001", path, self.line_of(seeded, "for item in pending:"))
        ]
