"""Seeded fixtures for the path-sensitive RES resource-obligation rules.

Each bad fixture must fire the expected rule at the expected line and
column; each good fixture is the same hazard written the canonical way
and must stay clean.  The fixtures mirror the patterns in
``repro.sim.resources``: request/cancel/release, hold/hold_cancel and
``grab()``.
"""

import textwrap

from repro.lint import lint_sources


def lint_src(source, path="fixture.py"):
    findings, _files = lint_sources([(path, textwrap.dedent(source))])
    return findings


def at(findings, rule):
    return [(f.line, f.col) for f in findings if f.rule == rule]


class TestRES001PendingEscape:
    def test_unguarded_request_wait_is_pending_on_interrupt(self):
        findings = lint_src(
            """\
            def use(resource):
                request = resource.request()
                yield request
                resource.release()
            """
        )
        # The obligation is created at the request() call site.
        assert (2, 14) in at(findings, "RES001")

    def test_unguarded_hold_wait_is_pending_on_interrupt(self):
        findings = lint_src(
            """\
            def pause(resource, duration):
                entry = resource.hold(duration)
                yield entry
            """
        )
        assert (2, 12) in at(findings, "RES001")

    def test_hold_guarded_by_cancel_is_clean(self):
        findings = lint_src(
            """\
            def pause(resource, duration):
                entry = resource.hold(duration)
                try:
                    yield entry
                except BaseException:
                    resource.hold_cancel(entry)
                    raise
            """
        )
        assert at(findings, "RES001") == []
        assert at(findings, "RES002") == []


class TestRES002HeldLeak:
    def test_missing_release_on_normal_path(self):
        findings = lint_src(
            """\
            def use(resource):
                request = resource.request()
                try:
                    yield request
                except BaseException:
                    resource.cancel(request)
                    raise
            """
        )
        assert (2, 14) in at(findings, "RES002")

    def test_missing_release_on_exception_path(self):
        findings = lint_src(
            """\
            def use(resource, duration):
                yield from resource.grab()
                yield resource.hold(duration)
                resource.release()
            """
        )
        # The grabbed unit leaks if the hold wait is interrupted.
        assert (2, 15) in at(findings, "RES002")

    def test_grab_with_try_finally_release_is_clean(self):
        findings = lint_src(
            """\
            def use(resource):
                yield from resource.grab()
                try:
                    work()
                finally:
                    resource.release()
            """
        )
        assert at(findings, "RES002") == []

    def test_request_cancel_release_canonical_shape_is_clean(self):
        findings = lint_src(
            """\
            def use(resource):
                request = resource.request()
                try:
                    yield request
                except BaseException:
                    resource.cancel(request)
                    raise
                resource.release()
            """
        )
        assert at(findings, "RES001") == []
        assert at(findings, "RES002") == []
        assert at(findings, "RES003") == []


class TestRES003DoubleCancel:
    def test_second_cancel_on_every_path_fires_at_the_cancel_site(self):
        findings = lint_src(
            """\
            def use(resource):
                request = resource.request()
                try:
                    yield request
                except BaseException:
                    resource.cancel(request)
                    resource.cancel(request)
                    raise
                resource.release()
            """
        )
        assert at(findings, "RES003") == [(7, 8)]

    def test_release_after_cancel_join_is_not_flagged(self):
        # Only one of the two paths reaching the release has completed
        # the obligation (the cancel path re-raises), so the release is
        # NOT a sure double-completion.
        findings = lint_src(
            """\
            def use(resource):
                request = resource.request()
                try:
                    yield request
                except BaseException:
                    resource.cancel(request)
                    raise
                resource.release()
            """
        )
        assert at(findings, "RES003") == []

    def test_double_release_fires(self):
        findings = lint_src(
            """\
            def use(resource):
                yield from resource.grab()
                try:
                    work()
                finally:
                    resource.release()
                resource.release()
            """
        )
        assert (7, 4) in at(findings, "RES003")


class TestHeldChainHelpers:
    def test_held_chain_without_cancel_guard_fires(self):
        findings = lint_src(
            """\
            from repro.sim.resources import held_chain, held_chain_cancel


            def pipeline(resources, duration):
                chain = held_chain(resources, duration)
                yield chain
            """
        )
        assert (5, 12) in at(findings, "RES001")

    def test_held_chain_with_cancel_guard_is_clean(self):
        findings = lint_src(
            """\
            from repro.sim.resources import held_chain, held_chain_cancel


            def pipeline(resources, duration):
                chain = held_chain(resources, duration)
                try:
                    yield chain
                except BaseException:
                    held_chain_cancel(chain)
                    raise
            """
        )
        assert at(findings, "RES001") == []


class TestRESAcrossControlFlow:
    def test_leak_only_on_one_if_branch_still_fires(self):
        findings = lint_src(
            """\
            def use(resource, flag, duration):
                entry = resource.hold(duration)
                if flag:
                    yield entry
                else:
                    resource.hold_cancel(entry)
            """
        )
        # The taken branch leaves the obligation pending at exit.
        assert (2, 12) in at(findings, "RES001")

    def test_loop_reacquire_is_clean(self):
        findings = lint_src(
            """\
            def poll(resource, duration, times):
                for _ in range(times):
                    entry = resource.hold(duration)
                    try:
                        yield entry
                    except BaseException:
                        resource.hold_cancel(entry)
                        raise
            """
        )
        assert at(findings, "RES001") == []
        assert at(findings, "RES003") == []
