"""MSG rule conformance: fixture protocol + real-tree regressions.

The fixture suite models a miniature protocol layer (one WIRE_FORMATS
declaration, one TypedDict payload, one handler class) and mutates it
the ways protocol drift actually happens: a handler registration is
deleted, a payload field is misspelt, an undeclared kind is sent.
Every mutation must be caught by the *real* analyzer entry points
(``lint_sources`` / ``collect_wire_registry``), not a re-implementation.

The regression tests at the bottom pin two hazards the analyzer found
in the real tree (both fixed): the ``mv_rsp`` reply kind was sent but
never declared in WIRE_FORMATS, and the ``dgcc_sched`` payload dict was
built untyped so its shape was invisible to conformance checking.
Each test re-introduces the hazard into the real sources and asserts
the analyzer still catches it.
"""

from pathlib import Path

import textwrap

from repro.lint import lint_sources

REPO_SRC = Path(__file__).resolve().parents[2] / "src"

#: Miniature protocol layer: declaration side.
MESSAGES_FIXTURE = """\
from typing import NamedTuple, Tuple, TypedDict


class PingPayload(TypedDict):
    txn: int
    page: str


class PongPayload(TypedDict):
    txn: int


class WireFormat(NamedTuple):
    payload: type
    handled_by: Tuple[str, ...]


WIRE_FORMATS = {
    "ping": WireFormat(PingPayload, ("Coordinator",)),
    "pong": WireFormat(PongPayload, ()),
}
"""

#: Miniature protocol layer: conformant use side.
PROTOCOL_FIXTURE = """\
class Coordinator:
    def __init__(self, comm):
        self.comm = comm
        self.comm.register_handler("ping", self._on_ping)

    def _on_ping(self, payload):
        pong: PongPayload = {"txn": payload["txn"]}
        self.comm.send(0, "pong", pong)

    def poke(self, node, txn):
        payload: PingPayload = {"txn": txn, "page": "p0"}
        self.comm.send(node, "ping", payload)
"""


def lint_fixture(protocol_source, messages_source=MESSAGES_FIXTURE):
    findings, _files = lint_sources(
        [
            ("proto/messages.py", messages_source),
            ("proto/coordinator.py", textwrap.dedent(protocol_source)),
        ]
    )
    return findings


def rules(findings):
    return [f.rule for f in findings]


class TestFixtureProtocolConformance:
    def test_conformant_protocol_is_clean(self):
        assert lint_fixture(PROTOCOL_FIXTURE) == []

    def test_deleting_the_handler_registration_fires_msg003(self):
        mutated = PROTOCOL_FIXTURE.replace(
            '        self.comm.register_handler("ping", self._on_ping)\n', ""
        )
        assert mutated != PROTOCOL_FIXTURE
        findings = lint_fixture(mutated)
        assert rules(findings) == ["MSG003"]
        (finding,) = findings
        # Anchored at the class definition, naming the missing kind.
        assert finding.path == "proto/coordinator.py"
        assert finding.line == 1
        assert "Coordinator" in finding.message
        assert "'ping'" in finding.message

    def test_misspelt_payload_field_fires_msg002(self):
        mutated = PROTOCOL_FIXTURE.replace('"page": "p0"', '"pages": "p0"')
        findings = lint_fixture(mutated)
        assert rules(findings) == ["MSG002", "MSG002"]
        messages = " / ".join(f.message for f in findings)
        assert "missing required" in messages and "page" in messages
        assert "not declared" in messages and "pages" in messages

    def test_dropped_required_field_fires_msg002(self):
        mutated = PROTOCOL_FIXTURE.replace(', "page": "p0"', "")
        findings = lint_fixture(mutated)
        assert rules(findings) == ["MSG002"]
        assert "missing required" in findings[0].message
        assert "page" in findings[0].message

    def test_wrong_payload_annotation_fires_msg002(self):
        mutated = PROTOCOL_FIXTURE.replace(
            "payload: PingPayload =", "payload: PongPayload ="
        )
        findings = lint_fixture(mutated)
        assert "MSG002" in rules(findings)
        assert any(
            "annotated as PongPayload" in f.message
            and "declares PingPayload" in f.message
            for f in findings
        )

    def test_sending_an_undeclared_kind_fires_msg001(self):
        mutated = PROTOCOL_FIXTURE.replace('"ping", payload', '"pingg", payload')
        findings = lint_fixture(mutated)
        assert "MSG001" in rules(findings)
        assert any("'pingg'" in f.message for f in findings)

    def test_registering_for_an_undeclared_kind_fires_msg001(self):
        mutated = PROTOCOL_FIXTURE.replace(
            'register_handler("ping"', 'register_handler("ping2"'
        )
        findings = lint_fixture(mutated)
        assert "MSG001" in rules(findings)

    def test_registering_without_receiver_declaration_fires_msg003(self):
        # A second class registers for "ping" without being declared.
        extended = PROTOCOL_FIXTURE + textwrap.dedent(
            """\


            class Interloper:
                def __init__(self, comm):
                    self.comm = comm
                    self.comm.register_handler("ping", self._on_ping)

                def _on_ping(self, payload):
                    pass
            """
        )
        findings = lint_fixture(extended)
        assert rules(findings) == ["MSG003"]
        assert "Interloper" in findings[0].message

    def test_checks_are_skipped_without_a_wire_formats_declaration(self):
        findings, _files = lint_sources(
            [("proto/coordinator.py", PROTOCOL_FIXTURE)]
        )
        assert findings == []


def lint_real_cc(mutate=None):
    """Lint the real protocol layer, optionally mutating one file."""
    sources = []
    for rel in [
        "repro/cc/messages.py",
        "repro/cc/mvcc.py",
        "repro/cc/dgcc.py",
        "repro/cc/gem_locking.py",
        "repro/cc/pcl.py",
    ]:
        path = REPO_SRC / rel
        text = path.read_text(encoding="utf-8")
        if mutate is not None:
            text = mutate(rel, text)
        sources.append((str(path), text))
    findings, _files = lint_sources(sources)
    return findings


class TestRealTreeRegressions:
    def test_real_protocol_layer_is_clean(self):
        assert [f for f in lint_real_cc() if f.rule.startswith("MSG")] == []

    def test_deleting_the_mv_rsp_declaration_is_caught(self):
        # Pre-fix state: mvcc.py sent "mv_rsp" replies that WIRE_FORMATS
        # never declared.
        def drop_mv_rsp(rel, text):
            if rel == "repro/cc/messages.py":
                mutated = text.replace(
                    '    "mv_rsp": WireFormat(LockResponsePayload, ()),\n', ""
                )
                assert mutated != text
                return mutated
            return text

        findings = [f for f in lint_real_cc(drop_mv_rsp) if f.rule == "MSG001"]
        assert findings, "undeclared mv_rsp send was not caught"
        assert all("mv_rsp" in f.message for f in findings)
        assert {f.path.rsplit("/", 1)[-1] for f in findings} == {"mvcc.py"}

    def test_misspelling_the_dgcc_sched_field_is_caught(self):
        # Pre-fix state: the dgcc_sched payload was an untyped dict, so
        # a field typo was invisible.  The fix annotated the send-site
        # local as DgccSchedPayload; misspelling the field now fires.
        def misspell_batch(rel, text):
            if rel == "repro/cc/dgcc.py":
                mutated = text.replace(
                    'sched: DgccSchedPayload = {"batch": self.batches}',
                    'sched: DgccSchedPayload = {"batches": self.batches}',
                )
                assert mutated != text
                return mutated
            return text

        findings = [
            f for f in lint_real_cc(misspell_batch) if f.rule == "MSG002"
        ]
        assert findings, "misspelt dgcc_sched payload field was not caught"
        messages = " / ".join(f.message for f in findings)
        assert "batch" in messages

    def test_deleting_a_real_handler_registration_is_caught(self):
        # Drop the first register_handler call in mvcc.py: the class is
        # still declared a receiver in WIRE_FORMATS, so MSG003 fires.
        def drop_first_registration(rel, text):
            if rel == "repro/cc/mvcc.py":
                lines = text.splitlines(keepends=True)
                for index, line in enumerate(lines):
                    if "register_handler(" in line:
                        indent = line[: len(line) - len(line.lstrip())]
                        lines[index] = f"{indent}pass\n"
                        return "".join(lines)
                raise AssertionError("no register_handler call in mvcc.py")
            return text

        findings = [
            f for f in lint_real_cc(drop_first_registration) if f.rule == "MSG003"
        ]
        assert findings, "deleted handler registration was not caught"
