"""Edge-set fixtures for the statement-level CFG builder.

Each test parses a small function, builds its CFG and asserts the
*exact* ``(src_label, dst_label, kind)`` edge set.  Labels are
``line:StatementType`` for real statements and angle-bracketed names
for synthetic nodes, so the expectations read like the control flow
they encode.  These pin the semantics the dataflow rules rely on:

* every statement except a ``try`` header has an ``"except"`` edge to
  its innermost exception target;
* ``with`` is transparent to exceptions (no implicit handler);
* a shared ``finally`` body receives both the normal and exceptional
  entries and fans out to every routed continuation;
* ``while``/``else`` runs the else body on normal exhaustion only --
  ``break`` skips it;
* ``match`` always keeps a no-case-matched fallthrough.
"""

import ast
import textwrap

from repro.lint.cfg import build_cfg


def edges(source):
    tree = ast.parse(textwrap.dedent(source))
    return build_cfg(tree.body[0]).edge_set()


class TestStraightLine:
    def test_simple_body_chains_with_uniform_except_edges(self):
        assert edges(
            """\
            def f():
                a()
                b()
            """
        ) == {
            ("<entry>", "2:Expr", "next"),
            ("2:Expr", "3:Expr", "next"),
            ("2:Expr", "<raise>", "except"),
            ("3:Expr", "<exit>", "next"),
            ("3:Expr", "<raise>", "except"),
        }

    def test_generator_yields_are_plain_statements_with_raise_edges(self):
        # A yield suspension point is where the engine throws interrupts
        # into the frame; the uniform except edge models exactly that.
        assert edges(
            """\
            def gen():
                setup()
                yield 1
                teardown()
            """
        ) == {
            ("<entry>", "2:Expr", "next"),
            ("2:Expr", "3:Expr", "next"),
            ("2:Expr", "<raise>", "except"),
            ("3:Expr", "4:Expr", "next"),
            ("3:Expr", "<raise>", "except"),
            ("4:Expr", "<exit>", "next"),
            ("4:Expr", "<raise>", "except"),
        }


class TestTry:
    def test_try_except_else_finally(self):
        # The try header itself has *no* except edge (entering a try
        # runs no code); body raises dispatch to the handler, and both
        # the handler and the else body funnel into the shared finally
        # on their normal AND exceptional paths.
        assert edges(
            """\
            def f():
                try:
                    a()
                except ValueError:
                    h()
                else:
                    e()
                finally:
                    fin()
                after()
            """
        ) == {
            ("<entry>", "2:Try", "next"),
            ("2:Try", "3:Expr", "next"),
            ("3:Expr", "7:Expr", "next"),
            ("3:Expr", "<except-dispatch:2>", "except"),
            # ValueError is not a catch-all: an unmatched exception (an
            # engine interrupt, say) skips the handler into the finally.
            ("<except-dispatch:2>", "5:Expr", "next"),
            ("<except-dispatch:2>", "9:Expr", "except"),
            ("5:Expr", "9:Expr", "next"),
            ("5:Expr", "9:Expr", "except"),
            ("7:Expr", "9:Expr", "next"),
            ("7:Expr", "9:Expr", "except"),
            # Finally exits: re-raise, or continue after the try.
            ("9:Expr", "<raise>", "except"),
            ("9:Expr", "<finally-join:2>", "next"),
            ("<finally-join:2>", "10:Expr", "next"),
            ("10:Expr", "<exit>", "next"),
            ("10:Expr", "<raise>", "except"),
        }

    def test_catch_all_handler_swallows_the_unmatched_path(self):
        assert edges(
            """\
            def f():
                try:
                    a()
                except BaseException:
                    h()
                after()
            """
        ) == {
            ("<entry>", "2:Try", "next"),
            ("2:Try", "3:Expr", "next"),
            ("3:Expr", "6:Expr", "next"),
            ("3:Expr", "<except-dispatch:2>", "except"),
            # No ("<except-dispatch:2>", ..., "except") escape edge:
            # BaseException catches engine interrupts too.
            ("<except-dispatch:2>", "5:Expr", "next"),
            ("5:Expr", "6:Expr", "next"),
            ("5:Expr", "<raise>", "except"),
            ("6:Expr", "<exit>", "next"),
            ("6:Expr", "<raise>", "except"),
        }

    def test_guarded_yield_reaches_finally_on_interrupt(self):
        # The canonical resource pattern: try: yield entry / finally:
        # release.  The yield's except edge must reach the finally body.
        assert edges(
            """\
            def gen(entry):
                try:
                    yield entry
                finally:
                    cleanup()
            """
        ) == {
            ("<entry>", "2:Try", "next"),
            ("2:Try", "3:Expr", "next"),
            ("3:Expr", "5:Expr", "next"),
            ("3:Expr", "<except-dispatch:2>", "except"),
            ("<except-dispatch:2>", "5:Expr", "except"),
            ("5:Expr", "<raise>", "except"),
            ("5:Expr", "<finally-join:2>", "next"),
            ("<finally-join:2>", "<exit>", "next"),
        }

    def test_return_routes_through_the_finally(self):
        assert edges(
            """\
            def f():
                try:
                    return val()
                finally:
                    fin()
            """
        ) == {
            ("<entry>", "2:Try", "next"),
            ("2:Try", "3:Return", "next"),
            ("3:Return", "5:Expr", "next"),
            ("3:Return", "<except-dispatch:2>", "except"),
            ("<except-dispatch:2>", "5:Expr", "except"),
            # The finally continues to the function exit (the routed
            # return), the re-raise path, and the (unreachable here)
            # fall-through join.
            ("5:Expr", "<exit>", "next"),
            ("5:Expr", "<finally-join:2>", "next"),
            ("5:Expr", "<raise>", "except"),
            ("<finally-join:2>", "<exit>", "next"),
        }


class TestWith:
    def test_nested_with_is_exception_transparent(self):
        # No handler dispatch, no finally: a raise anywhere inside the
        # with bodies goes straight to the function's raise exit.
        assert edges(
            """\
            def f():
                with a() as x:
                    with b() as y:
                        body()
                after()
            """
        ) == {
            ("<entry>", "2:With", "next"),
            ("2:With", "3:With", "next"),
            ("2:With", "<raise>", "except"),
            ("3:With", "4:Expr", "next"),
            ("3:With", "<raise>", "except"),
            ("4:Expr", "5:Expr", "next"),
            ("4:Expr", "<raise>", "except"),
            ("5:Expr", "<exit>", "next"),
            ("5:Expr", "<raise>", "except"),
        }


class TestLoops:
    def test_while_else_break_skips_the_else(self):
        assert edges(
            """\
            def f():
                while cond():
                    if flag():
                        break
                    step()
                else:
                    tail()
                after()
            """
        ) == {
            ("<entry>", "2:While", "next"),
            ("2:While", "3:If", "next"),
            ("2:While", "7:Expr", "next"),  # exhaustion -> else body
            ("2:While", "<raise>", "except"),
            ("3:If", "4:Break", "next"),
            ("3:If", "5:Expr", "next"),
            ("3:If", "<raise>", "except"),
            ("4:Break", "8:Expr", "next"),  # break lands AFTER the else
            ("4:Break", "<raise>", "except"),
            ("5:Expr", "2:While", "next"),  # back edge
            ("5:Expr", "<raise>", "except"),
            ("7:Expr", "8:Expr", "next"),
            ("7:Expr", "<raise>", "except"),
            ("8:Expr", "<exit>", "next"),
            ("8:Expr", "<raise>", "except"),
        }

    def test_break_through_finally_runs_the_finally_first(self):
        found = edges(
            """\
            def f():
                while cond():
                    try:
                        if flag():
                            break
                    finally:
                        fin()
                after()
            """
        )
        # The break enters the finally body, whose exit fans out to the
        # loop continuation (fall-through join -> header) AND to the
        # after-loop break join; labels for the join carry node ids, so
        # match on the shape rather than the id.
        assert ("5:Break", "7:Expr", "next") in found
        break_joins = {
            (src, dst, kind)
            for (src, dst, kind) in found
            if dst.startswith("<break-join:") or src.startswith("<break-join:")
        }
        assert any(
            src == "7:Expr" and kind == "next" for src, dst, kind in break_joins
        ), break_joins
        assert any(
            dst == "8:Expr" and kind == "next" for src, dst, kind in break_joins
        ), break_joins
        # Loop fall-through: finally-join feeds the back edge.
        assert ("<finally-join:3>", "2:While", "next") in found
        # And the re-raise path survives.
        assert ("7:Expr", "<raise>", "except") in found


class TestMatch:
    def test_match_keeps_a_no_case_fallthrough(self):
        assert edges(
            """\
            def f(cmd):
                match cmd:
                    case "a":
                        a()
                    case "b":
                        b()
                after()
            """
        ) == {
            ("<entry>", "2:Match", "next"),
            ("2:Match", "4:Expr", "next"),
            ("2:Match", "6:Expr", "next"),
            ("2:Match", "7:Expr", "next"),  # no case matched
            ("2:Match", "<raise>", "except"),
            ("4:Expr", "7:Expr", "next"),
            ("4:Expr", "<raise>", "except"),
            ("6:Expr", "7:Expr", "next"),
            ("6:Expr", "<raise>", "except"),
            ("7:Expr", "<exit>", "next"),
            ("7:Expr", "<raise>", "except"),
        }
