"""Baseline round-trips: adopt-now, fail-on-new-findings-only."""

import json
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.lint import Baseline, lint_sources
from repro.lint.baseline import BASELINE_SCHEMA_VERSION
from repro.lint.findings import Finding

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_SOURCE = textwrap.dedent(
    """\
    def walk(members: set):
        for member in members:
            print(member)
    """
)


def findings_for(source, path="pkg/mod.py"):
    findings, _files = lint_sources([(path, source)])
    return findings


class TestRoundTrip:
    def test_save_load_filter_accepts_existing_findings(self, tmp_path):
        findings = findings_for(BAD_SOURCE)
        assert findings, "fixture must produce findings"
        baseline = Baseline.from_findings(findings)
        baseline_file = tmp_path / "baseline.json"
        baseline.save(baseline_file)
        reloaded = Baseline.load(baseline_file)
        assert len(reloaded) == len(findings)
        assert reloaded.filter_new(findings) == []

    def test_new_finding_surfaces_while_old_stays_accepted(self, tmp_path):
        old = findings_for(BAD_SOURCE)
        baseline = Baseline.from_findings(old)
        grown = BAD_SOURCE + textwrap.dedent(
            """\


            def more(extra: set):
                return list(extra)
            """
        )
        new = baseline.filter_new(findings_for(grown))
        assert new, "the added finding must surface"
        assert all(f.line >= 6 for f in new)

    def test_line_shifts_do_not_invalidate_the_baseline(self):
        baseline = Baseline.from_findings(findings_for(BAD_SOURCE))
        shifted = "import os\n\n\n" + BAD_SOURCE.replace(
            "print(member)", "print(member, os.sep)"
        )
        assert baseline.filter_new(findings_for(shifted)) == []

    def test_duplicate_keys_consume_counts_earliest_first(self):
        base = [
            Finding("a.py", 10, 0, "DET001", "same message"),
        ]
        current = [
            Finding("a.py", 10, 0, "DET001", "same message"),
            Finding("a.py", 90, 0, "DET001", "same message"),
        ]
        new = Baseline.from_findings(base).filter_new(current)
        assert [(f.line) for f in new] == [90]

    def test_save_is_byte_stable(self, tmp_path):
        findings = findings_for(BAD_SOURCE)
        first, second = tmp_path / "a.json", tmp_path / "b.json"
        Baseline.from_findings(findings).save(first)
        Baseline.from_findings(list(reversed(findings))).save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_load_rejects_wrong_schema_version(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="schema version"):
            Baseline.load(bad)

    def test_load_rejects_non_positive_counts(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(
            json.dumps(
                {
                    "version": BASELINE_SCHEMA_VERSION,
                    "entries": [
                        {"path": "a.py", "rule": "DET001", "message": "m", "count": 0}
                    ],
                }
            )
        )
        with pytest.raises(ValueError, match="non-positive"):
            Baseline.load(bad)


def run_simlint(args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


class TestCliBaselineFlags:
    def test_update_then_check_then_new_finding(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text(BAD_SOURCE)
        baseline_file = tmp_path / "baseline.json"

        update = run_simlint(
            ["mod.py", "--baseline", "baseline.json", "--baseline-update"],
            cwd=tmp_path,
        )
        assert update.returncode == 0, update.stderr
        assert baseline_file.exists()

        check = run_simlint(
            ["mod.py", "--baseline", "baseline.json"], cwd=tmp_path
        )
        assert check.returncode == 0, check.stdout + check.stderr

        target.write_text(BAD_SOURCE + "\n\nbad = list({1, 2})\n")
        recheck = run_simlint(
            ["mod.py", "--baseline", "baseline.json"], cwd=tmp_path
        )
        assert recheck.returncode == 1
        assert "DET001" in recheck.stdout

    def test_baseline_update_requires_baseline(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        result = run_simlint(["mod.py", "--baseline-update"], cwd=tmp_path)
        assert result.returncode == 2
        assert "--baseline" in result.stderr

    def test_missing_baseline_file_reports_everything(self, tmp_path):
        (tmp_path / "mod.py").write_text(BAD_SOURCE)
        result = run_simlint(
            ["mod.py", "--baseline", "absent.json"], cwd=tmp_path
        )
        assert result.returncode == 1
        assert "DET001" in result.stdout
