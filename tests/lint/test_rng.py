"""Seeded fixtures for the RNG stream-discipline rules."""

import textwrap

from repro.lint import lint_sources


def lint_src(source, path="fixture.py"):
    findings, _files = lint_sources([(path, textwrap.dedent(source))])
    return findings


def at(findings, rule):
    return [(f.line, f.col) for f in findings if f.rule == rule]


class TestRNG001RawGenerators:
    def test_raw_random_construction_fires(self):
        findings = lint_src(
            """\
            from random import Random


            def make_sampler(seed):
                return Random(seed)
            """
        )
        assert at(findings, "RNG001") == [(5, 11)]

    def test_system_random_fires(self):
        findings = lint_src(
            """\
            import random


            def token():
                return random.SystemRandom().random()
            """
        )
        assert (5, 11) in at(findings, "RNG001")

    def test_stream_layer_classes_are_exempt(self):
        findings = lint_src(
            """\
            from random import Random


            class Stream:
                def __init__(self, seed):
                    self._rng = Random(seed)


            class StreamRegistry:
                def fork(self, seed):
                    return Random(seed)
            """
        )
        assert at(findings, "RNG001") == []

    def test_drawing_from_a_registry_stream_is_clean(self):
        findings = lint_src(
            """\
            def think_time(streams):
                return streams.get("arrivals").expovariate(10.0)
            """
        )
        assert at(findings, "RNG001") == []


class TestRNG002CrossReplicateGuards:
    def test_draw_guarded_by_job_count_fires(self):
        findings = lint_src(
            """\
            def jitter(stream, config):
                if config.jobs > 1:
                    return stream.uniform(0.0, 1.0)
                return 0.0
            """
        )
        assert at(findings, "RNG002") == [(3, 15)]

    def test_draw_guarded_by_environment_fires(self):
        findings = lint_src(
            """\
            import os


            def jitter(stream):
                if os.environ.get("WORKERS"):
                    return stream.uniform(0.0, 1.0)
                return 0.0
            """
        )
        assert at(findings, "RNG002") == [(6, 15)]

    def test_unconditional_draw_with_guarded_use_is_clean(self):
        # Drawing first and *using* conditionally keeps every replicate's
        # stream position identical -- the canonical fix for RNG002.
        findings = lint_src(
            """\
            import os


            def jitter(stream):
                value = stream.uniform(0.0, 1.0)
                if os.environ.get("WORKERS"):
                    return value
                return 0.0
            """
        )
        assert at(findings, "RNG002") == []

    def test_draw_guarded_by_simulation_state_is_clean(self):
        findings = lint_src(
            """\
            def think_time(stream, txn):
                if txn.is_update:
                    return stream.expovariate(5.0)
                return stream.expovariate(20.0)
            """
        )
        assert at(findings, "RNG002") == []
