"""Suppression-comment semantics: justified disables, malformed ones."""

import textwrap

from repro.lint import lint_sources


def lint_src(source, path="fixture.py"):
    findings, _files = lint_sources([(path, textwrap.dedent(source))])
    return findings


class TestTrailingDisable:
    def test_justified_disable_suppresses(self):
        findings = lint_src(
            """\
            def f():
                pending = {1, 2}
                for x in pending:  # simlint: disable=DET001 -- drain order is irrelevant here
                    pending_done = x
            """
        )
        assert findings == []

    def test_disable_only_covers_named_rule(self):
        findings = lint_src(
            """\
            import random

            def f():
                pending = {1, 2}
                for x in pending:  # simlint: disable=DET002 -- wrong rule named
                    print(random.random())
            """
        )
        rules = {f.rule for f in findings}
        assert "DET001" in rules  # not suppressed: comment names DET002
        assert "DET002" in rules  # the call is on the next line anyway

    def test_multiple_rules_one_comment(self):
        findings = lint_src(
            """\
            def f():
                pending = {1.5, 2.5}
                return sum(pending)  # simlint: disable=DET001,DET003 -- fsum'd upstream
            """
        )
        assert findings == []


class TestDisableNext:
    def test_disable_next_targets_following_line(self):
        findings = lint_src(
            """\
            import time

            def f():
                # simlint: disable-next=DET002 -- host wall-clock display only
                return time.time()
            """
        )
        assert findings == []

    def test_disable_next_does_not_leak_past_one_line(self):
        findings = lint_src(
            """\
            import time

            def f():
                # simlint: disable-next=DET002 -- host wall-clock display only
                a = time.time()
                b = time.time()
                return a - b
            """
        )
        assert [(f.rule, f.line) for f in findings] == [("DET002", 6)]


class TestMalformedSuppressions:
    def test_missing_justification_is_sup001_and_does_not_suppress(self):
        findings = lint_src(
            """\
            def f():
                pending = {1, 2}
                for x in pending:  # simlint: disable=DET001
                    print(x)
            """
        )
        rules = [f.rule for f in findings]
        assert "SUP001" in rules
        assert "DET001" in rules  # malformed comment suppresses nothing

    def test_unknown_rule_is_sup001(self):
        findings = lint_src(
            """\
            x = 1  # simlint: disable=NOPE999 -- not a rule
            """
        )
        assert [f.rule for f in findings] == ["SUP001"]

    def test_unparseable_comment_is_sup001(self):
        findings = lint_src(
            """\
            x = 1  # simlint: disable DET001 missing equals
            """
        )
        assert [f.rule for f in findings] == ["SUP001"]

    def test_simlint_in_string_is_not_a_suppression(self):
        findings = lint_src(
            '''\
            DOC = "# simlint: disable=DET001 -- this is data, not a comment"

            def f():
                pending = {1, 2}
                for x in pending:
                    print(x)
            '''
        )
        assert [f.rule for f in findings] == ["DET001"]
