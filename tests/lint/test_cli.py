"""CLI behaviour: exit codes, JSON schema, select/ignore, meta-lint.

The meta test -- ``simlint`` over ``src/repro`` reports nothing -- is
the contract that keeps the tree hazard-free: any new unordered
iteration, unseeded randomness or unprotected grant wait fails CI
unless it carries a justified suppression.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import JSON_SCHEMA_VERSION, lint_paths
from repro.lint.cli import main

REPO = Path(__file__).resolve().parents[2]


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = write(tmp_path, "clean.py", "x = 1\n")
        assert main([path]) == 0
        assert "clean" in capsys.readouterr().err

    def test_findings_exit_one(self, tmp_path, capsys):
        path = write(
            tmp_path, "bad.py", "import random\n\nx = random.random()\n"
        )
        assert main([path]) == 1
        out = capsys.readouterr().out
        assert f"{path}:3:" in out
        assert "DET002" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.txt")]) == 2

    def test_unknown_rule_id_exits_two(self, tmp_path):
        path = write(tmp_path, "clean.py", "x = 1\n")
        with pytest.raises(SystemExit) as exc:
            main([path, "--select", "BOGUS01"])
        assert exc.value.code == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "DET002", "DET003",
                        "SIM001", "SIM002", "SIM003", "SUP001"):
            assert rule_id in out


class TestSelectIgnore:
    BAD = (
        "import random\n"
        "\n"
        "def f():\n"
        "    pending = {1, 2}\n"
        "    for x in pending:\n"
        "        print(random.random())\n"
    )

    def test_select_restricts_rules(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", self.BAD)
        assert main([path, "--select", "DET001"]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "DET002" not in out

    def test_ignore_drops_rules(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", self.BAD)
        assert main([path, "--ignore", "DET001,DET002"]) == 0


class TestJsonOutput:
    def test_schema_shape(self, tmp_path, capsys):
        path = write(
            tmp_path, "bad.py", "import random\n\nx = random.random()\n"
        )
        assert main([path, "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["version"] == JSON_SCHEMA_VERSION
        assert document["files_scanned"] == 1
        assert document["counts"] == {"DET002": 1}
        (finding,) = document["findings"]
        assert set(finding) == {"rule", "path", "line", "col", "message"}
        assert finding["rule"] == "DET002"
        assert finding["line"] == 3

    def test_clean_json_report(self, tmp_path, capsys):
        path = write(tmp_path, "clean.py", "x = 1\n")
        assert main([path, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["findings"] == []
        assert document["counts"] == {}


class TestModuleEntryPoint:
    def test_python_dash_m_invocation(self, tmp_path):
        path = write(tmp_path, "clean.py", "x = 1\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", path],
            capture_output=True,
            text=True,
            cwd=str(REPO),
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "clean" in proc.stderr


class TestMetaLint:
    def test_src_repro_is_hazard_free(self):
        findings, files_scanned = lint_paths([str(REPO / "src" / "repro")])
        assert files_scanned > 50
        assert findings == [], "\n".join(
            f"{f.path}:{f.line}: {f.rule} {f.message}" for f in findings
        )
