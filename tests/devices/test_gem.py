"""Unit tests for the GEM device model."""

import pytest

from repro.devices.gem import GemDevice
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestAccessTimes:
    def test_page_access_time(self, sim):
        gem = GemDevice(sim, page_access_time=50e-6)
        done = []

        def proc():
            yield from gem.access_page()
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [pytest.approx(50e-6)]

    def test_entry_access_time(self, sim):
        gem = GemDevice(sim, entry_access_time=2e-6)
        done = []

        def proc():
            yield from gem.access_entry()
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [pytest.approx(2e-6)]

    def test_batched_entry_accesses(self, sim):
        gem = GemDevice(sim, entry_access_time=2e-6)
        done = []

        def proc():
            yield from gem.access_entries(5)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [pytest.approx(10e-6)]
        assert gem.entry_accesses == 5

    def test_zero_entries_is_noop(self, sim):
        gem = GemDevice(sim)

        def proc():
            yield from gem.access_entries(0)
            yield sim.timeout(0)

        sim.process(proc())
        sim.run()
        assert gem.entry_accesses == 0

    def test_negative_entries_rejected(self, sim):
        gem = GemDevice(sim)
        with pytest.raises(ValueError):
            list(gem.access_entries(-1))

    def test_negative_access_time_rejected(self, sim):
        with pytest.raises(ValueError):
            GemDevice(sim, page_access_time=-1.0)


class TestQueuing:
    def test_single_server_serializes_accesses(self, sim):
        gem = GemDevice(sim, servers=1, page_access_time=50e-6)
        done = []

        def proc(tag):
            yield from gem.access_page()
            done.append((tag, sim.now))

        sim.process(proc("a"))
        sim.process(proc("b"))
        sim.run()
        assert done[0] == ("a", pytest.approx(50e-6))
        assert done[1] == ("b", pytest.approx(100e-6))

    def test_multi_server_parallelism(self, sim):
        gem = GemDevice(sim, servers=2, page_access_time=50e-6)
        done = []

        def proc():
            yield from gem.access_page()
            done.append(sim.now)

        sim.process(proc())
        sim.process(proc())
        sim.run()
        assert done == [pytest.approx(50e-6), pytest.approx(50e-6)]

    def test_utilization_accounting(self, sim):
        gem = GemDevice(sim, page_access_time=0.1)

        def proc():
            yield from gem.access_page()

        sim.process(proc())
        sim.run()
        sim.run(until=0.2)
        assert gem.utilization() == pytest.approx(0.5)

    def test_reset_stats(self, sim):
        gem = GemDevice(sim)

        def proc():
            yield from gem.access_page()
            yield from gem.access_entry()

        sim.process(proc())
        sim.run()
        gem.reset_stats()
        assert gem.page_accesses == 0
        assert gem.entry_accesses == 0
