"""Unit tests for the disk array model."""

import pytest

from repro.db.pages import VersionLedger
from repro.devices.disk import DiskArray
from repro.devices.disk_cache import DiskCache
from repro.sim import Simulator


class _ConstantStream:
    """Deterministic stand-in for a random stream: exponential(mean)=mean."""

    def exponential(self, mean):
        return mean


def make_array(sim, ledger=None, cache=None, num_disks=2, **kwargs):
    return DiskArray(
        sim,
        "test",
        num_disks=num_disks,
        ledger=ledger or VersionLedger(),
        stream=_ConstantStream(),
        disk_time=0.015,
        controller_time=0.001,
        transfer_time=0.0004,
        cache=cache,
        **kwargs,
    )


@pytest.fixture
def sim():
    return Simulator()


class TestTiming:
    def test_read_takes_full_path(self, sim):
        array = make_array(sim)
        done = []

        def proc():
            yield from array.read((0, 1))
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        # controller 1ms + transfer 0.4ms + disk 15ms = 16.4ms.
        assert done == [pytest.approx(0.0164)]

    def test_write_takes_full_path_and_updates_ledger(self, sim):
        ledger = VersionLedger()
        array = make_array(sim, ledger=ledger)
        done = []

        def proc():
            yield from array.write((0, 1), 3)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [pytest.approx(0.0164)]
        assert ledger.storage_version((0, 1)) == 3

    def test_write_without_version_skips_ledger(self, sim):
        ledger = VersionLedger()
        array = make_array(sim, ledger=ledger)

        def proc():
            yield from array.write((0, 1), None)

        sim.process(proc())
        sim.run()
        assert ledger.storage_version((0, 1)) == 0

    def test_read_returns_storage_version(self, sim):
        ledger = VersionLedger()
        ledger.write_storage((0, 1), 7)
        array = make_array(sim, ledger=ledger)
        versions = []

        def proc():
            version = yield from array.read((0, 1))
            versions.append(version)

        sim.process(proc())
        sim.run()
        assert versions == [7]


class TestDeclustering:
    def test_same_page_same_disk(self, sim):
        array = make_array(sim, num_disks=4)
        assert array._disk_for((0, 5)) is array._disk_for((0, 5))

    def test_pages_spread_over_disks(self, sim):
        array = make_array(sim, num_disks=4)
        disks = {id(array._disk_for((0, p))) for p in range(64)}
        assert len(disks) == 4

    def test_spread_accesses_round_robin(self, sim):
        array = make_array(sim, num_disks=3)
        array.spread_accesses = True
        first = array._disk_for((0, 5))
        second = array._disk_for((0, 5))
        assert first is not second

    def test_queueing_on_one_disk(self, sim):
        array = make_array(sim, num_disks=1)
        done = []

        def proc():
            yield from array.read((0, 1))
            done.append(sim.now)

        sim.process(proc())
        sim.process(proc())
        sim.run()
        assert done[1] > done[0]

    def test_invalid_disk_count_rejected(self, sim):
        with pytest.raises(ValueError):
            make_array(sim, num_disks=0)


class TestVolatileCache:
    def test_read_hit_skips_disk(self, sim):
        cache = DiskCache(8, nonvolatile=False)
        array = make_array(sim, cache=cache)
        times = []

        def proc():
            yield from array.read((0, 1))  # miss: 16.4ms
            start = sim.now
            yield from array.read((0, 1))  # hit: 1.4ms
            times.append(sim.now - start)

        sim.process(proc())
        sim.run()
        assert times == [pytest.approx(0.0014)]
        assert array.disk_reads == 1

    def test_write_goes_to_disk(self, sim):
        cache = DiskCache(8, nonvolatile=False)
        array = make_array(sim, cache=cache)
        done = []

        def proc():
            yield from array.write((0, 1), 1)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [pytest.approx(0.0164)]
        assert array.disk_writes == 1


class TestNonVolatileCache:
    def test_write_absorbed_fast(self, sim):
        cache = DiskCache(8, nonvolatile=True)
        ledger = VersionLedger()
        array = make_array(sim, ledger=ledger, cache=cache)
        done = []

        def proc():
            yield from array.write((0, 1), 2)
            done.append(sim.now)

        sim.process(proc())
        sim.run(until=0.002)
        # Durable after controller+transfer only (1.4ms).
        assert done == [pytest.approx(0.0014)]
        assert ledger.storage_version((0, 1)) == 2

    def test_destage_happens_in_background(self, sim):
        cache = DiskCache(8, nonvolatile=True)
        array = make_array(sim, cache=cache)

        def proc():
            yield from array.write((0, 1), 2)

        sim.process(proc())
        sim.run(until=1.0)
        assert array.disk_writes == 1
        assert not cache.is_dirty((0, 1))

    def test_read_after_nv_write_hits_cache(self, sim):
        cache = DiskCache(8, nonvolatile=True)
        ledger = VersionLedger()
        array = make_array(sim, ledger=ledger, cache=cache)
        results = []

        def proc():
            yield from array.write((0, 1), 2)
            start = sim.now
            version = yield from array.read((0, 1))
            results.append((version, sim.now - start))

        sim.process(proc())
        sim.run()
        version, elapsed = results[0]
        assert version == 2
        assert elapsed == pytest.approx(0.0014)
