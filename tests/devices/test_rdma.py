"""Unit tests for the RDMA fabric model."""

import pytest

from repro.devices.rdma import RdmaFabric
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestVerbTimes:
    def test_cas_time(self, sim):
        fabric = RdmaFabric(sim, cas_time=3e-6)
        done = []

        def proc():
            yield from fabric.cas()
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [pytest.approx(3e-6)]
        assert fabric.cas_ops == 1

    def test_batched_cas(self, sim):
        fabric = RdmaFabric(sim, cas_time=3e-6)
        done = []

        def proc():
            yield from fabric.cas(4)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [pytest.approx(12e-6)]
        assert fabric.cas_ops == 4

    def test_entry_read_and_page_verbs(self, sim):
        fabric = RdmaFabric(
            sim, read_time=2e-6, page_read_time=8e-6, page_write_time=10e-6
        )
        done = []

        def proc():
            yield from fabric.read_entry()
            yield from fabric.read_page()
            yield from fabric.write_pages(2)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [pytest.approx(2e-6 + 8e-6 + 20e-6)]
        assert fabric.entry_reads == 1
        assert fabric.page_reads == 1
        assert fabric.page_writes == 2

    def test_zero_count_is_noop(self, sim):
        fabric = RdmaFabric(sim)

        def proc():
            yield from fabric.cas(0)
            yield from fabric.read_entry(0)
            yield from fabric.write_pages(0)
            yield sim.timeout(0)

        sim.process(proc())
        sim.run()
        assert fabric.cas_ops == 0
        assert fabric.entry_reads == 0
        assert fabric.page_writes == 0

    def test_negative_count_rejected(self, sim):
        fabric = RdmaFabric(sim)
        with pytest.raises(ValueError):
            list(fabric.cas(-1))
        with pytest.raises(ValueError):
            list(fabric.read_entry(-1))
        with pytest.raises(ValueError):
            list(fabric.write_pages(-1))

    def test_negative_verb_time_rejected(self, sim):
        with pytest.raises(ValueError):
            RdmaFabric(sim, cas_time=-1.0)

    def test_zero_channels_rejected(self, sim):
        with pytest.raises(ValueError):
            RdmaFabric(sim, channels=0)


class TestQueuing:
    def test_single_channel_serializes(self, sim):
        fabric = RdmaFabric(sim, channels=1, page_read_time=8e-6)
        done = []

        def proc(tag):
            yield from fabric.read_page()
            done.append((tag, sim.now))

        sim.process(proc("a"))
        sim.process(proc("b"))
        sim.run()
        assert done[0] == ("a", pytest.approx(8e-6))
        assert done[1] == ("b", pytest.approx(16e-6))

    def test_two_channels_overlap(self, sim):
        fabric = RdmaFabric(sim, channels=2, page_read_time=8e-6)
        done = []

        def proc():
            yield from fabric.read_page()
            done.append(sim.now)

        sim.process(proc())
        sim.process(proc())
        sim.run()
        assert done == [pytest.approx(8e-6), pytest.approx(8e-6)]

    def test_utilization_and_reset(self, sim):
        fabric = RdmaFabric(sim, channels=1, page_read_time=0.1)

        def proc():
            yield from fabric.read_page()

        sim.process(proc())
        sim.run()
        sim.run(until=0.2)
        assert fabric.utilization() == pytest.approx(0.5)
        fabric.reset_stats()
        assert fabric.cas_ops == 0
        assert fabric.page_reads == 0
        assert fabric.busy_time() == pytest.approx(0.0)
