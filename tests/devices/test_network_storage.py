"""Unit tests for the network model and the storage directory."""

import pytest

from repro.db.pages import VersionLedger
from repro.devices.disk import DiskArray
from repro.devices.gem import GemDevice
from repro.devices.network import Network
from repro.devices.storage import StorageDirectory
from repro.node.cpu import CpuPool
from repro.sim import Simulator, StreamRegistry


@pytest.fixture
def sim():
    return Simulator()


class TestNetwork:
    def test_transmission_time_from_bandwidth(self, sim):
        net = Network(sim, bandwidth=10e6)
        done = []

        def proc():
            yield from net.transmit(100)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [pytest.approx(100 / 10e6)]

    def test_shared_medium_serializes(self, sim):
        net = Network(sim, bandwidth=10e6)
        done = []

        def proc():
            yield from net.transmit(4096)
            done.append(sim.now)

        sim.process(proc())
        sim.process(proc())
        sim.run()
        assert done[1] == pytest.approx(2 * 4096 / 10e6)

    def test_byte_accounting(self, sim):
        net = Network(sim, bandwidth=10e6)

        def proc():
            yield from net.transmit(100)
            yield from net.transmit(4096)

        sim.process(proc())
        sim.run()
        assert net.bytes_transmitted == 4196
        assert net.messages == 2

    def test_invalid_parameters(self, sim):
        with pytest.raises(ValueError):
            Network(sim, bandwidth=0)
        net = Network(sim)
        with pytest.raises(ValueError):
            list(net.transmit(0))


class TestStorageDirectory:
    def _make(self, sim):
        ledger = VersionLedger()
        streams = StreamRegistry(1)
        directory = StorageDirectory(sim, ledger, 3000.0, 300.0)
        disk = DiskArray(
            sim, "d", 2, ledger, streams.stream("d"), disk_time=0.015
        )
        gem = GemDevice(sim, page_access_time=50e-6)
        directory.assign(0, disk)
        directory.assign(1, gem)
        log = DiskArray(sim, "log", 1, ledger, streams.stream("l"), disk_time=0.005)
        directory.assign_log_disks([log])
        cpu = CpuPool(sim, 1, 10.0, streams.stream("cpu"))
        return directory, ledger, cpu, disk, gem, log

    def test_disk_read_charges_cpu_then_device(self, sim):
        directory, ledger, cpu, disk, _gem, _log = self._make(sim)
        done = []

        def proc():
            yield from directory.read((0, 1), cpu)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        # 3000 instr at 10 MIPS = 0.3ms CPU, then the disk path.
        assert done[0] > 0.0003
        assert disk.reads == 1

    def test_gem_write_durable_and_fast(self, sim):
        directory, ledger, cpu, _disk, gem, _log = self._make(sim)
        done = []

        def proc():
            yield from directory.write((1, 5), 2, cpu)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        # 300 instr (30us) + 50us GEM access.
        assert done == [pytest.approx(80e-6)]
        assert ledger.storage_version((1, 5)) == 2
        assert gem.page_accesses == 1

    def test_gem_access_holds_cpu(self, sim):
        directory, _ledger, cpu, _disk, _gem, _log = self._make(sim)
        order = []

        def gem_writer():
            yield from directory.write((1, 5), 1, cpu)
            order.append(("gem", sim.now))

        def cpu_user():
            yield from cpu.consume(1000)  # 0.1ms
            order.append(("cpu", sim.now))

        sim.process(gem_writer())
        sim.process(cpu_user())
        sim.run()
        # The single CPU is held across the whole GEM access, so the
        # other work only starts after 80us.
        assert order[0][0] == "gem"
        assert order[1][1] == pytest.approx(80e-6 + 100e-6)

    def test_gem_write_without_version(self, sim):
        directory, ledger, cpu, _disk, _gem, _log = self._make(sim)

        def proc():
            yield from directory.write((1, 5), None, cpu)

        sim.process(proc())
        sim.run()
        assert ledger.storage_version((1, 5)) == 0

    def test_log_write_uses_node_log_disk(self, sim):
        directory, _ledger, cpu, _disk, _gem, log = self._make(sim)

        def proc():
            yield from directory.write_log(0, cpu)

        sim.process(proc())
        sim.run()
        assert log.writes == 1

    def test_is_gem_resident(self, sim):
        directory, *_ = self._make(sim)
        assert not directory.is_gem_resident(0)
        assert directory.is_gem_resident(1)


class TestGemCpuGrantLeak:
    """Interrupting a reader queued for the CPU on the GEM path must
    withdraw the CPU request (regression: the bare ``request()`` there
    let the next release grant the unit to the dead event, permanently
    losing one CPU of capacity)."""

    def _make(self, sim):
        ledger = VersionLedger()
        streams = StreamRegistry(1)
        directory = StorageDirectory(sim, ledger, 3000.0, 300.0)
        gem = GemDevice(sim, page_access_time=50e-6)
        directory.assign(1, gem)
        cpu = CpuPool(sim, 1, 10.0, streams.stream("cpu"))
        return directory, cpu

    def test_interrupted_gem_read_releases_cpu_claim(self, sim):
        from repro.errors import NodeCrashed

        directory, cpu = self._make(sim)

        def hog():
            yield from cpu.consume(10_000_000)  # holds the CPU until t=1

        def reader():
            try:
                yield from directory.read((1, 3), cpu)
            except NodeCrashed:
                return

        sim.process(hog())
        victim = sim.process(reader())
        sim.run(until=0.5)
        assert cpu.resource.queue_length == 1
        assert victim.interrupt(NodeCrashed(0))
        sim.run(until=0.501)
        assert cpu.resource.queue_length == 0

        done = []

        def late_reader():
            yield from directory.read((1, 3), cpu)
            done.append(sim.now)

        sim.process(late_reader())
        sim.run()
        assert done and done[0] == pytest.approx(1.0 + 30e-6 + 50e-6)
        assert cpu.resource.busy == 0
