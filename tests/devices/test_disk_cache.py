"""Unit tests for the LRU disk cache."""

import pytest

from repro.devices.disk_cache import DiskCache


class TestLruBehaviour:
    def test_miss_then_hit(self):
        cache = DiskCache(4, nonvolatile=False)
        assert not cache.lookup_for_read((0, 1))
        cache.insert((0, 1))
        assert cache.lookup_for_read((0, 1))
        assert cache.read_hits == 1
        assert cache.read_misses == 1

    def test_capacity_eviction_is_lru(self):
        cache = DiskCache(2, nonvolatile=False)
        cache.insert((0, 1))
        cache.insert((0, 2))
        evicted = cache.insert((0, 3))
        assert evicted == (0, 1)
        assert (0, 2) in cache
        assert (0, 3) in cache

    def test_read_hit_refreshes_recency(self):
        cache = DiskCache(2, nonvolatile=False)
        cache.insert((0, 1))
        cache.insert((0, 2))
        cache.lookup_for_read((0, 1))
        evicted = cache.insert((0, 3))
        assert evicted == (0, 2)

    def test_reinsert_refreshes_without_eviction(self):
        cache = DiskCache(2, nonvolatile=False)
        cache.insert((0, 1))
        cache.insert((0, 2))
        assert cache.insert((0, 1)) is None
        assert len(cache) == 2

    def test_zero_capacity_disables_cache(self):
        cache = DiskCache(0, nonvolatile=False)
        assert cache.insert((0, 1)) is None
        assert not cache.lookup_for_read((0, 1))
        assert not cache.note_write((0, 1))

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            DiskCache(-1, nonvolatile=False)

    def test_hit_ratio(self):
        cache = DiskCache(4, nonvolatile=False)
        cache.insert((0, 1))
        cache.lookup_for_read((0, 1))
        cache.lookup_for_read((0, 2))
        assert cache.hit_ratio() == pytest.approx(0.5)


class TestVolatileWrites:
    def test_write_not_absorbed(self):
        cache = DiskCache(4, nonvolatile=False)
        assert cache.note_write((0, 1)) is False

    def test_write_does_not_allocate(self):
        cache = DiskCache(4, nonvolatile=False)
        cache.note_write((0, 1))
        assert (0, 1) not in cache

    def test_write_refreshes_cached_copy(self):
        cache = DiskCache(2, nonvolatile=False)
        cache.insert((0, 1))
        cache.insert((0, 2))
        cache.note_write((0, 1))  # write-through refresh
        evicted = cache.insert((0, 3))
        assert evicted == (0, 2)


class TestNonVolatileWrites:
    def test_write_absorbed_and_dirty(self):
        cache = DiskCache(4, nonvolatile=True)
        assert cache.note_write((0, 1)) is True
        assert (0, 1) in cache
        assert cache.is_dirty((0, 1))
        assert cache.write_hits == 1

    def test_mark_clean_after_destage(self):
        cache = DiskCache(4, nonvolatile=True)
        cache.note_write((0, 1))
        cache.mark_clean((0, 1))
        assert not cache.is_dirty((0, 1))

    def test_dirty_pages_listing(self):
        cache = DiskCache(4, nonvolatile=True)
        cache.note_write((0, 1))
        cache.insert((0, 2), dirty=False)
        assert cache.dirty_pages() == [(0, 1)]

    def test_dirty_flag_sticky_on_refresh(self):
        cache = DiskCache(4, nonvolatile=True)
        cache.note_write((0, 1))
        cache.insert((0, 1), dirty=False)  # read re-insert
        assert cache.is_dirty((0, 1))

    def test_eviction_of_dirty_page_allowed(self):
        cache = DiskCache(1, nonvolatile=True)
        cache.note_write((0, 1))
        evicted = cache.insert((0, 2))
        assert evicted == (0, 1)
