"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.nodes == 4
        assert args.coupling == "gem"

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiments_arguments(self):
        args = build_parser().parse_args(
            ["experiments", "fig41", "--scale", "smoke"]
        )
        assert args.figure == "fig41"
        assert args.scale == "smoke"


class TestRunCommand:
    def test_run_prints_summary(self, capsys):
        code = main(
            ["run", "--nodes", "1", "--warmup", "0.5", "--measure", "1.5"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RT=" in out
        assert "hit ratios" in out

    def test_run_json_output(self, capsys):
        code = main(
            ["run", "--nodes", "1", "--warmup", "0.5", "--measure", "1.5",
             "--json"]
        )
        assert code == 0
        data = json.loads(capsys.readouterr().out)
        assert data["num_nodes"] == 1
        assert data["completed"] > 0


class TestPredictCommand:
    def test_predict_prints_fields(self, capsys):
        code = main(["predict", "--nodes", "4", "--coupling", "pcl",
                     "--routing", "random"])
        assert code == 0
        out = capsys.readouterr().out
        assert "cpu_utilization" in out
        assert "remote_locks_per_txn" in out


class TestTraceGenCommand:
    def test_generates_trace_file(self, tmp_path, capsys):
        out_path = str(tmp_path / "t.trace")
        code = main(["trace-gen", out_path, "--scale", "0.02"])
        assert code == 0
        from repro.workload.trace import Trace

        trace = Trace.load(out_path)
        assert len(trace) >= 200
        assert trace.num_files == 13


class TestExperimentsCommand:
    def test_table41_smoke(self, capsys):
        code = main(["experiments", "table41", "--scale", "smoke"])
        assert code == 0
        out = capsys.readouterr().out
        assert "PASS" in out or "FAIL" in out

    def test_unknown_figure(self, capsys):
        code = main(["experiments", "fig99"])
        assert code == 2
