"""Unit tests for the breakdown value object and formatting."""

import pytest

from repro.obs import ResponseTimeBreakdown, format_breakdown, phases


class TestResponseTimeBreakdown:
    def test_total_and_share(self):
        b = ResponseTimeBreakdown({phases.CPU: 0.03, phases.IO: 0.01})
        assert b.total == pytest.approx(0.04)
        assert b.get(phases.CPU) == 0.03
        assert b.get(phases.COMM) == 0.0
        assert b.share(phases.CPU) == pytest.approx(0.75)

    def test_empty_share_is_zero(self):
        assert ResponseTimeBreakdown({}).share(phases.CPU) == 0.0

    def test_table_lists_all_phases(self):
        b = ResponseTimeBreakdown({phases.CPU: 0.03})
        table = b.table()
        for phase in phases.PHASES:
            assert phase in table
        assert "total" in table
        assert "30.000" in table  # 0.03 s in ms


class TestFormatBreakdown:
    def test_none_and_empty(self):
        assert format_breakdown(None) == "-"
        assert format_breakdown({}) == "-"
        assert format_breakdown({phases.CPU: 0.0}) == "-"

    def test_skips_zero_phases(self):
        text = format_breakdown({phases.CPU: 0.002, phases.IO: 0.0})
        assert text == "cpu=2.00ms"
