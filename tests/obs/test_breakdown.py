"""Unit tests for the breakdown value object and formatting."""

import pytest

from repro.obs import ResponseTimeBreakdown, format_breakdown, phases


class TestResponseTimeBreakdown:
    def test_total_and_share(self):
        b = ResponseTimeBreakdown({phases.CPU: 0.03, phases.IO: 0.01})
        assert b.total == pytest.approx(0.04)
        assert b.get(phases.CPU) == 0.03
        assert b.get(phases.COMM) == 0.0
        assert b.share(phases.CPU) == pytest.approx(0.75)

    def test_empty_share_is_zero(self):
        assert ResponseTimeBreakdown({}).share(phases.CPU) == 0.0

    def test_table_lists_all_phases(self):
        b = ResponseTimeBreakdown({phases.CPU: 0.03})
        table = b.table()
        for phase in phases.PHASES:
            assert phase in table
        assert "total" in table
        assert "30.000" in table  # 0.03 s in ms


class TestFormatBreakdown:
    def test_none_and_empty(self):
        assert format_breakdown(None) == "-"
        assert format_breakdown({}) == "-"
        assert format_breakdown({phases.CPU: 0.0}) == "-"

    def test_skips_zero_phases(self):
        text = format_breakdown({phases.CPU: 0.002, phases.IO: 0.0})
        assert text == "cpu=2.00ms"

    def test_includes_extra_phases(self):
        text = format_breakdown({phases.CPU: 0.002, phases.RDMA: 0.001})
        assert text == "cpu=2.00ms rdma=1.00ms"


class TestPhaseOrder:
    def test_no_extras_returns_the_canonical_tuple(self):
        # Identity matters: callers iterating goldens must see the
        # exact legacy ordering when no extra phase was observed.
        assert phases.phase_order(phases.PHASES) is phases.PHASES
        assert phases.phase_order([phases.CPU, phases.IO]) is phases.PHASES

    def test_extras_splice_after_gem(self):
        order = phases.phase_order([phases.CPU, phases.RDMA])
        gem_at = order.index(phases.GEM)
        assert order[gem_at + 1] == phases.RDMA
        assert [p for p in order if p != phases.RDMA] == list(phases.PHASES)

    def test_unknown_extras_sorted_deterministically(self):
        order = phases.phase_order(["zeta", "alpha", phases.CPU])
        gem_at = order.index(phases.GEM)
        assert order[gem_at + 1:gem_at + 3] == ("alpha", "zeta")

    def test_rdma_not_in_canonical_phases(self):
        # The canonical tuple is frozen by the golden snapshots; the
        # rdma phase appears only when observed.
        assert phases.RDMA not in phases.PHASES
