"""Unit tests for the Chrome-trace exporter."""

import json

import pytest

from repro.obs import PhaseRecorder, chrome_trace_events, export_chrome_trace, phases


class FakeSim:
    def __init__(self):
        self.now = 0.0


class FakeMonitor:
    def __init__(self, samples):
        self.samples = samples


def make_recorder():
    sim = FakeSim()
    rec = PhaseRecorder(sim, keep_spans=True)
    rec.txn_begin(7, 1, sim.now)
    sim.now = 0.001
    with rec.span(7, phases.CPU):
        sim.now = 0.004
    sim.now = 0.005
    rec.txn_end(7, sim.now, committed=True)
    return rec


class TestChromeTraceEvents:
    def test_txn_and_span_complete_events(self):
        events = chrome_trace_events(make_recorder())
        txn = next(e for e in events if e["name"] == "txn")
        assert txn["ph"] == "X"
        assert txn["ts"] == pytest.approx(0.0)
        assert txn["dur"] == pytest.approx(5000.0)  # 5 ms in us
        assert (txn["pid"], txn["tid"]) == (1, 7)
        span = next(e for e in events if e["cat"] == "phase")
        assert span["name"] == phases.CPU
        assert span["ts"] == pytest.approx(1000.0)
        assert span["dur"] == pytest.approx(3000.0)

    def test_node_metadata_event(self):
        events = chrome_trace_events(make_recorder())
        meta = [e for e in events if e["ph"] == "M"]
        assert [m["pid"] for m in meta] == [1]
        assert meta[0]["args"]["name"] == "node 1"

    def test_counter_events_from_monitor(self):
        monitor = FakeMonitor([
            {"time": 0.5, "throughput": 120.0, "util.cpu0": 0.8, "util.disk.DATA": 0.4},
        ])
        events = chrome_trace_events(make_recorder(), monitor)
        counters = [e for e in events if e["ph"] == "C"]
        assert {c["name"] for c in counters} == {"cpu0", "disk.DATA"}
        assert all(c["ts"] == pytest.approx(0.5e6) for c in counters)

    def test_export_is_strict_json(self, tmp_path):
        path = tmp_path / "trace.json"
        export_chrome_trace(make_recorder(), str(path))

        def reject(token):
            raise AssertionError(f"non-standard JSON constant {token!r}")

        with open(path) as fh:
            document = json.load(fh, parse_constant=reject)
        assert document["displayTimeUnit"] == "ms"
        assert len(document["traceEvents"]) == 3  # txn + span + metadata
