"""End-to-end checks of the tracing layer on real simulations.

The key invariant: the breakdown components partition the measured
mean response time (the residual is explicit in ``other``), so their
sum must match ``mean_response_time`` within 1 % on real runs.
"""

import json

import pytest

from repro.experiments import fig41
from repro.obs import run_traced
from repro.system.config import SystemConfig
from repro.system.runner import run_simulation


def fig41_fast_point(**overrides):
    config = fig41.base_config().replace(
        num_nodes=2,
        routing="affinity",
        update_strategy="noforce",
        warmup_time=0.5,
        measure_time=1.5,
    )
    return config.replace(**overrides) if overrides else config


def fig45_fast_point():
    return SystemConfig(
        num_nodes=2,
        coupling="pcl",
        routing="random",
        update_strategy="noforce",
        buffer_pages_per_node=200,
        warmup_time=0.5,
        measure_time=1.5,
        collect_breakdown=True,
    )


class TestBreakdownSumsToMeanResponseTime:
    def test_fig41_fast_point(self):
        result = run_simulation(fig41_fast_point())
        assert result.breakdown is not None
        assert result.completed > 0
        total = sum(result.breakdown.values())
        assert total == pytest.approx(result.mean_response_time, rel=0.01)
        # The workload actually exercises the main phases.
        assert result.breakdown["cpu"] > 0
        assert result.breakdown["io"] > 0
        assert result.breakdown["gem"] > 0

    def test_fig45_fast_point(self):
        result = run_simulation(fig45_fast_point())
        assert result.breakdown is not None
        total = sum(result.breakdown.values())
        assert total == pytest.approx(result.mean_response_time, rel=0.01)
        # PCL with random routing pays message delays.
        assert result.breakdown["comm"] > 0

    def test_response_breakdown_property(self):
        result = run_simulation(fig41_fast_point())
        view = result.response_breakdown
        assert view.total == pytest.approx(result.mean_response_time, rel=0.01)
        assert view.table()


class TestObservationOnly:
    def test_breakdown_does_not_perturb_metrics(self):
        # The recorder only reads the clock; every simulated metric must
        # be bit-identical with collection on and off.
        with_obs = run_simulation(fig41_fast_point()).deterministic_dict()
        without = run_simulation(
            fig41_fast_point(collect_breakdown=False)
        ).deterministic_dict()
        assert with_obs.pop("breakdown") is not None
        assert without.pop("breakdown") is None
        assert with_obs == without


class TestRunTraced:
    def test_exports_valid_trace_and_device_series(self, tmp_path):
        config = fig41_fast_point(warmup_time=0.3, measure_time=0.7)
        path = tmp_path / "run.trace.json"
        result, monitor = run_traced(config, str(path))

        def reject(token):
            raise AssertionError(f"non-standard JSON constant {token!r}")

        with open(path) as fh:
            document = json.load(fh, parse_constant=reject)
        events = document["traceEvents"]
        txn_events = [
            e for e in events if e.get("ph") == "X" and e.get("name") == "txn"
        ]
        # At least one complete transaction span per committed txn (the
        # trace also covers warmup completions).
        assert result.completed > 0
        assert len(txn_events) >= result.completed
        assert all(e["dur"] > 0 for e in txn_events)
        assert any(e.get("ph") == "C" for e in events)
        # Device utilization series: one util.* column per channel.
        csv = monitor.to_csv()
        header = csv.splitlines()[0].split(",")
        assert "util.cpu0" in header
        assert "util.gem" in header
        assert "util.network" in header
        assert "blocked_txns" in header
        # Tracing must not change the simulation outcome either.  The
        # monitor's sampling timeouts add scheduler events, so only
        # events_processed may differ.
        plain = run_simulation(config)
        traced_dict = result.deterministic_dict()
        plain_dict = plain.deterministic_dict()
        for key in ("breakdown", "events_processed"):
            traced_dict.pop(key), plain_dict.pop(key)
        assert traced_dict == plain_dict
