"""Unit tests for the span recorder and the null recorder."""

import pytest

from repro.obs import NULL_RECORDER, NullRecorder, PhaseRecorder, phases


class FakeSim:
    """Just a clock; the recorder only ever reads ``now``."""

    def __init__(self):
        self.now = 0.0


@pytest.fixture
def sim():
    return FakeSim()


class TestNullRecorder:
    def test_disabled_and_inert(self, sim):
        assert NULL_RECORDER.enabled is False
        NULL_RECORDER.txn_begin(1, 0, 0.0)
        with NULL_RECORDER.span(1, phases.CPU):
            pass
        NULL_RECORDER.txn_end(1, 1.0)
        NULL_RECORDER.reset()

    def test_span_is_shared_singleton(self):
        # The hot paths allocate nothing when tracing is off.
        a = NULL_RECORDER.span(1, phases.CPU)
        b = NullRecorder().span(2, phases.IO)
        assert a is b


class TestPhaseAttribution:
    def test_uncovered_time_goes_to_other(self, sim):
        rec = PhaseRecorder(sim)
        sim.now = 1.0
        rec.txn_begin(7, 0, sim.now)
        sim.now = 3.0
        rec.txn_end(7, sim.now)
        breakdown = rec.breakdown()
        assert breakdown[phases.OTHER] == pytest.approx(2.0)
        assert sum(breakdown.values()) == pytest.approx(2.0)

    def test_innermost_span_wins(self, sim):
        rec = PhaseRecorder(sim)
        rec.txn_begin(7, 0, sim.now)
        sim.now = 1.0
        with rec.span(7, phases.CPU):
            sim.now = 2.0
            with rec.span(7, phases.IO):
                sim.now = 4.0
            sim.now = 5.0
        sim.now = 6.0
        rec.txn_end(7, sim.now)
        breakdown = rec.breakdown()
        assert breakdown[phases.CPU] == pytest.approx(2.0)  # [1,2) + [4,5)
        assert breakdown[phases.IO] == pytest.approx(2.0)   # [2,4)
        assert breakdown[phases.OTHER] == pytest.approx(2.0)
        assert sum(breakdown.values()) == pytest.approx(6.0)

    def test_components_partition_response_time(self, sim):
        rec = PhaseRecorder(sim)
        for txn_id, duration in ((1, 2.0), (2, 4.0)):
            start = sim.now
            rec.txn_begin(txn_id, 0, start)
            sim.now = start + duration / 2
            with rec.span(txn_id, phases.LOCK_LOCAL):
                sim.now = start + duration
            rec.txn_end(txn_id, sim.now)
        total = sum(rec.breakdown().values())
        assert total == pytest.approx(rec.rt_seconds / rec.txn_count)
        assert total == pytest.approx(3.0)

    def test_span_for_unknown_txn_is_noop(self, sim):
        rec = PhaseRecorder(sim)
        with rec.span(99, phases.CPU):
            sim.now = 1.0
        assert rec.txn_count == 0
        rec.txn_end(99, sim.now)  # unknown end is ignored too
        assert rec.txn_count == 0

    def test_mismatched_pop_is_noop(self, sim):
        rec = PhaseRecorder(sim)
        rec.txn_begin(7, 0, sim.now)
        rec._push(7, phases.CPU)
        sim.now = 1.0
        rec._pop(7, phases.IO)  # attribute nothing, keep the stack
        sim.now = 2.0
        rec._pop(7, phases.CPU)
        sim.now = 3.0
        rec.txn_end(7, sim.now)
        breakdown = rec.breakdown()
        assert breakdown[phases.CPU] == pytest.approx(2.0)
        assert breakdown[phases.IO] == 0.0

    def test_txn_end_closes_leftover_spans(self, sim):
        rec = PhaseRecorder(sim)
        rec.txn_begin(7, 0, sim.now)
        rec._push(7, phases.COMM)
        sim.now = 2.5
        rec.txn_end(7, sim.now)
        assert rec.breakdown()[phases.COMM] == pytest.approx(2.5)

    def test_empty_breakdown_is_all_zero(self, sim):
        rec = PhaseRecorder(sim)
        breakdown = rec.breakdown()
        assert set(breakdown) == set(phases.PHASES)
        assert all(v == 0.0 for v in breakdown.values())


class TestKeepSpans:
    def test_spans_and_transactions_retained(self, sim):
        rec = PhaseRecorder(sim, keep_spans=True)
        rec.txn_begin(7, 3, sim.now)
        sim.now = 1.0
        with rec.span(7, phases.CPU):
            sim.now = 2.0
            with rec.span(7, phases.IO):
                sim.now = 4.0
            sim.now = 5.0
        sim.now = 6.0
        rec.txn_end(7, sim.now, committed=True)
        assert [(s.phase, s.start, s.end, s.depth) for s in rec.spans] == [
            (phases.IO, 2.0, 4.0, 1),
            (phases.CPU, 1.0, 5.0, 0),
        ]
        (txn,) = rec.transactions
        assert (txn.txn_id, txn.node_id) == (7, 3)
        assert (txn.start, txn.end, txn.committed) == (0.0, 6.0, True)


class TestReset:
    def test_reset_drops_aggregates_keeps_in_flight(self, sim):
        rec = PhaseRecorder(sim)
        rec.txn_begin(1, 0, sim.now)
        sim.now = 1.0
        rec.txn_end(1, sim.now)
        rec.txn_begin(2, 0, sim.now)  # in flight across the reset
        sim.now = 1.5
        with rec.span(2, phases.IO):
            sim.now = 2.0
            rec.reset()  # warmup boundary
            sim.now = 3.0
        sim.now = 3.5
        rec.txn_end(2, sim.now)
        assert rec.txn_count == 1
        breakdown = rec.breakdown()
        # Full arrival-to-commit attribution survives the reset.
        assert breakdown[phases.IO] == pytest.approx(1.5)
        assert sum(breakdown.values()) == pytest.approx(2.5)
