"""Shared test harness: a minimal single-node environment for unit
tests of the buffer manager and related components, without building a
full cluster."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.db.pages import PageId, VersionLedger
from repro.db.schema import Database, Partition, StorageKind
from repro.devices.disk import DiskArray
from repro.devices.storage import StorageDirectory
from repro.node.buffer_manager import BufferManager
from repro.node.cpu import CpuPool
from repro.obs.recorder import NULL_RECORDER
from repro.sim import Simulator, StreamRegistry
from repro.system.cluster import Cluster
from repro.system.config import DebitCreditConfig, SystemConfig
from repro.workload.transaction import PageAccess, Transaction


class RecordingProtocol:
    """Protocol stub recording write-back notifications."""

    def __init__(self):
        self.written_back: List[Tuple[int, PageId, int]] = []

    def page_written_back(self, node_id, page, version):
        self.written_back.append((node_id, page, version))
        return
        yield  # pragma: no cover

    def request_page_from_owner(self, txn, page, grant):  # pragma: no cover
        raise AssertionError("unexpected owner request")


class FakeConfig:
    def __init__(self, force: bool = False):
        self.force = force
        self.noforce = not force


class MiniNode:
    """A bare-bones node exposing what BufferManager needs."""

    def __init__(
        self,
        buffer_pages: int = 8,
        force: bool = False,
        num_data_pages: int = 1000,
        disk_time: float = 0.015,
    ):
        self.sim = Simulator()
        self.node_id = 0
        self.config = FakeConfig(force)
        self.streams = StreamRegistry(17)
        self.ledger = VersionLedger()
        self.database = Database(
            [
                Partition("DATA", 0, num_pages=num_data_pages),
                Partition("SEQ", 1, num_pages=None, lockable=False),
            ]
        )
        self.cpu = CpuPool(self.sim, 4, 10.0, self.streams.stream("cpu"))
        self.storage = StorageDirectory(self.sim, self.ledger, 3000.0, 300.0)
        self.data_disks = DiskArray(
            self.sim, "DATA", 4, self.ledger, self.streams.stream("d"),
            disk_time=disk_time,
        )
        self.seq_disks = DiskArray(
            self.sim, "SEQ", 2, self.ledger, self.streams.stream("s"),
            disk_time=disk_time, spread_accesses=True,
        )
        self.log_disk = DiskArray(
            self.sim, "log", 1, self.ledger, self.streams.stream("l"),
            disk_time=0.005,
        )
        self.storage.assign(0, self.data_disks)
        self.storage.assign(1, self.seq_disks)
        self.storage.assign_log_disks([self.log_disk])
        self.protocol = RecordingProtocol()
        self.recorder = NULL_RECORDER
        self.buffer = BufferManager(self, buffer_pages, self.ledger)

    def run(self, process, until: Optional[float] = None):
        """Drive a generator to completion and return its value."""
        result = {}

        def wrapper():
            value = yield from process
            result["value"] = value

        self.sim.process(wrapper())
        self.sim.run(until=until)
        return result.get("value")


def drive_cluster(cluster, generator, horizon: float = 50.0):
    """Run ``generator`` as a process until it completes.

    Steps the event loop directly so the clock stops at the process's
    completion time -- the (possibly quiesced) SOURCE always keeps a
    future arrival scheduled, so time-bounded runs would overshoot and
    unbounded runs would never return.
    """
    result = {}

    def wrapper():
        result["value"] = yield from generator

    process = cluster.sim.process(wrapper())
    deadline = cluster.sim.now + horizon
    while not process.processed and cluster.sim.peek() <= deadline:
        cluster.sim.step()
    if "value" not in result and not process.triggered:
        raise AssertionError("driven process did not complete within horizon")
    return result.get("value")


def system_config(**overrides) -> SystemConfig:
    """Small 2-node GEM/affinity/NOFORCE config for short system runs.

    The shared baseline for integration-style tests; override any
    :class:`SystemConfig` field by keyword.
    """
    defaults = dict(
        num_nodes=2,
        coupling="gem",
        routing="affinity",
        update_strategy="noforce",
        warmup_time=0.5,
        measure_time=2.0,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


def quiesced_config(**overrides) -> SystemConfig:
    """A config whose SOURCE is quiesced (near-zero arrival rate).

    Protocol unit tests build a full cluster but drive transactions by
    hand with :func:`drive_cluster`; the workload generator must not
    interfere.
    """
    defaults = dict(
        arrival_rate_per_node=1e-6,
        warmup_time=0.0,
        measure_time=1.0,
    )
    defaults.update(overrides)
    return system_config(**defaults)


def quiesced_cluster(**overrides) -> Cluster:
    """A quiesced :class:`Cluster` -- see :func:`quiesced_config`."""
    return Cluster(quiesced_config(**overrides))


def make_rdma_cluster(**overrides) -> Cluster:
    """A quiesced cluster under the disaggregated-memory coupling.

    The standard fixture for RDMA-regime unit tests: 2 nodes,
    affinity/NOFORCE, coupling ``rdma``, workload generator quiesced so
    transactions are driven by hand with :func:`drive_cluster`.
    Override any :class:`SystemConfig` field by keyword (e.g.
    ``protocol="mvcc"`` or ``update_strategy="force"``).
    """
    defaults = dict(coupling="rdma")
    defaults.update(overrides)
    return Cluster(quiesced_config(**defaults))


def bt_storage_config(
    storage: StorageKind = StorageKind.DISK_GEM_WRITE_BUFFER, **overrides
) -> SystemConfig:
    """FORCE config with the BRANCH_TELLER partition on ``storage``
    (the Fig 4.3 / 4.4 storage-allocation code paths)."""
    defaults = dict(
        routing="random",
        update_strategy="force",
        buffer_pages_per_node=1000,
        debit_credit=DebitCreditConfig(branch_teller_storage=storage),
    )
    defaults.update(overrides)
    return system_config(**defaults)


def make_txn(txn_id: int = 1, node: int = 0) -> Transaction:
    txn = Transaction(txn_id, [])
    txn.node = node
    return txn


def read_access(page: PageId, lockable: bool = True) -> PageAccess:
    return PageAccess(page, write=False, lockable=lockable)


def write_access(page: PageId, lockable: bool = True) -> PageAccess:
    return PageAccess(page, write=True, lockable=lockable)
