"""Tests for the trend table, the re-anchor guard and the golden guard.

Covers the two hygiene mechanisms added with the event-count-reduction
re-anchor: ``benchmarks.perf.compare`` must refuse to compare events/sec
across a CODE_VERSION bump unless the newer snapshot documents the
re-anchor, and ``scripts/check_golden_version.py`` must reject diffs
that regenerate golden fixtures without bumping CODE_VERSION.
"""

import importlib.util
import json
from pathlib import Path

import pytest

from benchmarks.perf.compare import (
    crosses_reanchor,
    main,
    trend_rows,
    trend_table,
)
from tests.perf.test_bench_schema import make_snapshot

REPO_ROOT = Path(__file__).resolve().parents[2]

_spec = importlib.util.spec_from_file_location(
    "check_golden_version", REPO_ROOT / "scripts" / "check_golden_version.py"
)
golden_guard = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(golden_guard)


def versioned(snapshot, code_version=None, baseline=None, date=None):
    if code_version is not None:
        snapshot["code_version"] = code_version
    if baseline is not None:
        snapshot["baseline"] = baseline
    if date is not None:
        snapshot["date"] = date
    return snapshot


class TestCrossesReanchor:
    def test_same_version_does_not_cross(self):
        a = versioned(make_snapshot(), "2026.08-4")
        b = versioned(make_snapshot(), "2026.08-4")
        assert not crosses_reanchor(a, b)

    def test_different_versions_cross(self):
        a = versioned(make_snapshot(), "2026.08-4")
        b = versioned(make_snapshot(), "2026.08-3")
        assert crosses_reanchor(a, b)

    def test_missing_version_counts_as_distinct_anchor(self):
        assert crosses_reanchor(make_snapshot(), versioned(make_snapshot(), "x"))
        assert not crosses_reanchor(make_snapshot(), make_snapshot())


class TestTrend:
    def make_trajectory(self):
        return [
            versioned(make_snapshot(events_per_sec=150_000.0), date="2026-06-01"),
            versioned(
                make_snapshot(events_per_sec=210_000.0), date="2026-07-01"
            ),
            versioned(
                make_snapshot(events_per_sec=140_000.0, events=65_882),
                code_version="2026.08-4",
                baseline={"commit": "2ee4820", "speedup": 1.24},
                date="2026-08-08",
            ),
        ]

    def test_rows_preserve_order_and_mark_reanchors(self):
        rows = trend_rows(self.make_trajectory())
        assert [row["date"] for row in rows] == [
            "2026-06-01", "2026-07-01", "2026-08-08",
        ]
        assert [row["reanchored"] for row in rows] == [False, False, True]
        assert rows[2]["baseline_commit"] == "2ee4820"
        assert rows[2]["events_per_sec"]["8"] == pytest.approx(140_000.0)

    def test_first_row_is_never_a_reanchor(self):
        rows = trend_rows([versioned(make_snapshot(), "v1")])
        assert rows == [rows[0]]
        assert not rows[0]["reanchored"]

    def test_table_marks_reanchor_boundary(self):
        table = trend_table(self.make_trajectory())
        lines = table.splitlines()
        marker = [line for line in lines if line.startswith("-- re-anchor")]
        assert len(marker) == 1
        # The marker sits between the second and third data rows.
        assert lines.index(marker[0]) > lines.index(
            [line for line in lines if line.startswith("2026-07-01")][0]
        )

    def test_table_handles_disjoint_scales(self):
        a = versioned(make_snapshot(scales=(8,)), "v1", date="2026-06-01")
        b = versioned(make_snapshot(scales=(8, 64)), "v1", date="2026-07-01")
        table = trend_table([a, b])
        assert "64 nodes" in table
        assert "-" in table  # the missing 64-node cell in the first row

    def test_trend_cli_lists_all_snapshots(self, tmp_path, capsys):
        for index, snap in enumerate(self.make_trajectory()):
            path = tmp_path / f"BENCH_{snap['date']}.json"
            path.write_text(json.dumps(snap))
        assert main(["--trend", "--baseline-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "2026-06-01" in out and "2026-08-08" in out
        assert "re-anchor" in out

    def test_trend_cli_without_snapshots_exits_zero(self, tmp_path, capsys):
        assert main(["--trend", "--baseline-dir", str(tmp_path)]) == 0

    def test_committed_trajectory_renders(self, capsys):
        assert main(["--trend", "--baseline-dir", str(REPO_ROOT)]) == 0
        assert "nodes" in capsys.readouterr().out


class TestReanchorGuard:
    def write(self, tmp_path, name, snapshot):
        path = tmp_path / name
        path.write_text(json.dumps(snapshot))
        return path

    def test_undocumented_reanchor_fails(self, tmp_path, capsys):
        base = self.write(
            tmp_path, "BENCH_2026-06-01.json", versioned(make_snapshot(), "v1")
        )
        cur = self.write(
            tmp_path, "current.json",
            versioned(make_snapshot(events_per_sec=120_000.0), "v2"),
        )
        assert main([str(cur), "--baseline", str(base)]) == 1
        err = capsys.readouterr().err
        assert "re-anchor" in err and "baseline" in err

    def test_documented_reanchor_passes(self, tmp_path, capsys):
        base = self.write(
            tmp_path, "BENCH_2026-06-01.json", versioned(make_snapshot(), "v1")
        )
        cur = self.write(
            tmp_path, "current.json",
            versioned(
                make_snapshot(events_per_sec=120_000.0), "v2",
                baseline={"commit": "abc1234", "speedup": 1.24},
            ),
        )
        assert main([str(cur), "--baseline", str(base)]) == 0
        assert "skipping the per-scale check" in capsys.readouterr().err

    def test_same_version_still_compared(self, tmp_path, capsys):
        base = self.write(
            tmp_path, "BENCH_2026-06-01.json", versioned(make_snapshot(), "v1")
        )
        cur = self.write(
            tmp_path, "current.json",
            versioned(make_snapshot(events_per_sec=100_000.0), "v1"),
        )
        # Half the baseline speed at the same anchor: a real regression.
        assert main([str(cur), "--baseline", str(base)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_current_required_without_trend(self):
        with pytest.raises(SystemExit):
            main([])


class TestGoldenGuard:
    def test_extracts_code_version(self):
        source = 'X = 1\nCODE_VERSION = "2026.08-4"\n'
        assert golden_guard.extract_code_version(source) == "2026.08-4"
        assert golden_guard.extract_code_version("X = 1\n") is None

    def test_extracts_from_real_version_file(self):
        source = (REPO_ROOT / golden_guard.VERSION_FILE).read_text()
        assert golden_guard.extract_code_version(source) is not None

    def test_golden_changes_filters_paths(self):
        changed = [
            "src/repro/sim/engine.py",
            "tests/golden/fig41_gem_affinity_noforce_n2.json",
            "tests/golden/README.md",
        ]
        assert golden_guard.golden_changes(changed) == [
            "tests/golden/fig41_gem_affinity_noforce_n2.json"
        ]

    def test_no_golden_changes_pass_without_bump(self):
        assert golden_guard.check(["src/repro/sim/engine.py"], "v1", "v1") == []

    def test_golden_change_without_bump_fails(self):
        errors = golden_guard.check(
            ["tests/golden/a.json"], "v1", "v1"
        )
        assert errors and "without a CODE_VERSION bump" in errors[0]

    def test_golden_change_with_bump_passes(self):
        assert golden_guard.check(["tests/golden/a.json"], "v1", "v2") == []

    def test_unreadable_version_fails_closed(self):
        errors = golden_guard.check(["tests/golden/a.json"], None, "v2")
        assert errors and "could not be read" in errors[0]

    def test_script_accepts_head_base(self):
        # End-to-end against the real repository: diffing HEAD against
        # the working tree exercises the git plumbing either way.
        status = golden_guard.main(["--base", "HEAD"])
        assert status in (0, 1)
