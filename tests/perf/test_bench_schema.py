"""Schema and comparator tests for the committed perf trajectory.

These tests never time anything: they validate that every committed
``BENCH_*.json`` snapshot parses against the schema, and that the
comparator's tolerance logic flags what it should.  The actual timing
runs live in ``benchmarks/perf/driver.py`` and CI's bench job.
"""

import json
from pathlib import Path

import pytest

from benchmarks.perf.compare import (
    SnapshotFormatError,
    compare_snapshots,
    find_latest_snapshot,
    load_snapshot,
    main,
    validate_snapshot,
)
from benchmarks.perf.driver import SCALES, SCHEMA_VERSION, WORKLOAD

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_snapshot(scales=(8,), events_per_sec=200_000.0, events=116_016):
    return {
        "schema": 1,
        "date": "2026-08-08",
        "workload": dict(WORKLOAD),
        "scales": {
            str(n): {
                "num_nodes": n,
                "events_processed": events,
                "wall_clock_s": events / events_per_sec,
                "events_per_sec": events_per_sec,
                "peak_rss_kb": 100_000,
            }
            for n in scales
        },
    }


class TestCommittedSnapshots:
    def test_at_least_one_snapshot_is_committed(self):
        assert find_latest_snapshot(REPO_ROOT) is not None

    def test_every_committed_snapshot_validates(self):
        for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
            snapshot = load_snapshot(path)  # raises on schema violations
            assert snapshot["schema"] == SCHEMA_VERSION
            # Committed snapshots must use the pinned scales/windows, or
            # the trajectory stops being comparable.
            for name, entry in snapshot["scales"].items():
                assert int(name) in SCALES
                warmup, measure = SCALES[int(name)]
                assert entry["warmup_time"] == warmup
                assert entry["measure_time"] == measure
            assert snapshot["workload"] == WORKLOAD

    def test_snapshot_name_matches_embedded_date(self):
        # The name must lead with the embedded date (a short suffix may
        # disambiguate two snapshots taken the same day) so that the
        # lexical order find_latest_snapshot relies on stays date order.
        for path in sorted(REPO_ROOT.glob("BENCH_*.json")):
            snapshot = load_snapshot(path)
            assert path.name.startswith(f"BENCH_{snapshot['date']}")
            assert path.name.endswith(".json")


class TestValidateSnapshot:
    def test_valid_snapshot_passes(self):
        validate_snapshot(make_snapshot())

    @pytest.mark.parametrize("missing", ["schema", "date", "workload", "scales"])
    def test_missing_top_level_key(self, missing):
        snapshot = make_snapshot()
        del snapshot[missing]
        with pytest.raises(SnapshotFormatError, match=missing):
            validate_snapshot(snapshot)

    def test_unknown_schema_version(self):
        snapshot = make_snapshot()
        snapshot["schema"] = 2
        with pytest.raises(SnapshotFormatError, match="schema version"):
            validate_snapshot(snapshot)

    @pytest.mark.parametrize("date", ["2026/08/08", "08-08-2026", "yesterday", 20260808])
    def test_malformed_date(self, date):
        snapshot = make_snapshot()
        snapshot["date"] = date
        with pytest.raises(SnapshotFormatError, match="YYYY-MM-DD"):
            validate_snapshot(snapshot)

    def test_empty_scales_rejected(self):
        snapshot = make_snapshot()
        snapshot["scales"] = {}
        with pytest.raises(SnapshotFormatError, match="non-empty"):
            validate_snapshot(snapshot)

    def test_non_numeric_scale_key_rejected(self):
        snapshot = make_snapshot()
        snapshot["scales"]["eight"] = snapshot["scales"].pop("8")
        with pytest.raises(SnapshotFormatError, match="node count"):
            validate_snapshot(snapshot)

    def test_num_nodes_mismatch_rejected(self):
        snapshot = make_snapshot()
        snapshot["scales"]["8"]["num_nodes"] = 16
        with pytest.raises(SnapshotFormatError, match="mismatch"):
            validate_snapshot(snapshot)

    def test_missing_scale_field_rejected(self):
        snapshot = make_snapshot()
        del snapshot["scales"]["8"]["peak_rss_kb"]
        with pytest.raises(SnapshotFormatError, match="peak_rss_kb"):
            validate_snapshot(snapshot)

    @pytest.mark.parametrize(
        "field", ["events_processed", "wall_clock_s", "events_per_sec"]
    )
    def test_nonpositive_measurements_rejected(self, field):
        snapshot = make_snapshot()
        snapshot["scales"]["8"][field] = 0
        with pytest.raises(SnapshotFormatError):
            validate_snapshot(snapshot)


class TestCompareSnapshots:
    def test_within_tolerance_passes(self):
        rows = compare_snapshots(
            make_snapshot(events_per_sec=180_000.0),
            make_snapshot(events_per_sec=200_000.0),
        )
        assert len(rows) == 1
        assert not rows[0]["regressed"]
        assert rows[0]["same_events"]

    def test_regression_beyond_tolerance_flagged(self):
        rows = compare_snapshots(
            make_snapshot(events_per_sec=150_000.0),
            make_snapshot(events_per_sec=200_000.0),
        )
        assert rows[0]["regressed"]
        assert rows[0]["ratio"] == pytest.approx(0.75)

    def test_improvement_never_flagged(self):
        rows = compare_snapshots(
            make_snapshot(events_per_sec=400_000.0),
            make_snapshot(events_per_sec=200_000.0),
        )
        assert not rows[0]["regressed"]
        assert rows[0]["ratio"] == pytest.approx(2.0)

    def test_tolerance_is_configurable(self):
        current = make_snapshot(events_per_sec=180_000.0)
        baseline = make_snapshot(events_per_sec=200_000.0)
        assert not compare_snapshots(current, baseline, tolerance=0.15)[0]["regressed"]
        assert compare_snapshots(current, baseline, tolerance=0.05)[0]["regressed"]

    @pytest.mark.parametrize("tolerance", [-0.1, 1.0, 2.0])
    def test_invalid_tolerance_rejected(self, tolerance):
        with pytest.raises(ValueError, match="tolerance"):
            compare_snapshots(make_snapshot(), make_snapshot(), tolerance=tolerance)

    def test_scales_in_only_one_snapshot_are_skipped(self):
        rows = compare_snapshots(
            make_snapshot(scales=(8, 64)), make_snapshot(scales=(8, 256))
        )
        assert [row["scale"] for row in rows] == [8]

    def test_event_count_drift_is_reported(self):
        current = make_snapshot()
        current["scales"]["8"]["events_processed"] += 1
        rows = compare_snapshots(current, make_snapshot())
        assert not rows[0]["same_events"]


class TestCompareCli:
    @staticmethod
    def write(tmp_path, name, snapshot):
        path = tmp_path / name
        path.write_text(json.dumps(snapshot), encoding="utf-8")
        return path

    def test_missing_baseline_exits_zero(self, tmp_path, capsys):
        current = self.write(tmp_path, "now.json", make_snapshot())
        assert main([str(current), "--baseline-dir", str(tmp_path)]) == 0
        assert "no baseline" in capsys.readouterr().err

    def test_self_comparison_treated_as_no_baseline(self, tmp_path, capsys):
        current = self.write(tmp_path, "BENCH_2026-08-08.json", make_snapshot())
        assert main([str(current), "--baseline-dir", str(tmp_path)]) == 0
        assert "no baseline" in capsys.readouterr().err

    def test_regression_exits_one(self, tmp_path, capsys):
        current = self.write(
            tmp_path, "now.json", make_snapshot(events_per_sec=100_000.0)
        )
        self.write(
            tmp_path,
            "BENCH_2026-08-07.json",
            make_snapshot(events_per_sec=200_000.0),
        )
        assert main([str(current), "--baseline-dir", str(tmp_path)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_ok_comparison_exits_zero(self, tmp_path, capsys):
        current = self.write(
            tmp_path, "now.json", make_snapshot(events_per_sec=195_000.0)
        )
        self.write(
            tmp_path,
            "BENCH_2026-08-07.json",
            make_snapshot(events_per_sec=200_000.0),
        )
        assert main([str(current), "--baseline-dir", str(tmp_path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_latest_baseline_wins(self, tmp_path):
        current = self.write(
            tmp_path, "now.json", make_snapshot(events_per_sec=100_000.0)
        )
        # Older snapshot would flag a regression; the newest must win.
        self.write(
            tmp_path,
            "BENCH_2026-08-01.json",
            make_snapshot(events_per_sec=200_000.0),
        )
        self.write(
            tmp_path,
            "BENCH_2026-08-07.json",
            make_snapshot(events_per_sec=100_000.0),
        )
        assert main([str(current), "--baseline-dir", str(tmp_path)]) == 0

    def test_explicit_baseline_overrides_directory(self, tmp_path):
        current = self.write(
            tmp_path, "now.json", make_snapshot(events_per_sec=100_000.0)
        )
        explicit = self.write(
            tmp_path, "base.json", make_snapshot(events_per_sec=200_000.0)
        )
        self.write(
            tmp_path,
            "BENCH_2026-08-07.json",
            make_snapshot(events_per_sec=100_000.0),
        )
        assert main([str(current), "--baseline", str(explicit)]) == 1

    def test_no_common_scales_exits_zero(self, tmp_path, capsys):
        current = self.write(tmp_path, "now.json", make_snapshot(scales=(8,)))
        self.write(
            tmp_path, "BENCH_2026-08-07.json", make_snapshot(scales=(64,))
        )
        assert main([str(current), "--baseline-dir", str(tmp_path)]) == 0
        assert "no common scales" in capsys.readouterr().err

    def test_invalid_current_snapshot_raises(self, tmp_path):
        bad = make_snapshot()
        del bad["scales"]
        current = self.write(tmp_path, "now.json", bad)
        with pytest.raises(SnapshotFormatError):
            main([str(current), "--baseline-dir", str(tmp_path)])
