"""Unit tests for the shared timing helpers in :mod:`benchmarks.timing`."""

import pytest

from benchmarks.timing import TimingResult, time_best, time_interleaved


class TestTimeBest:
    def test_calls_warmup_plus_repeats_times(self):
        calls = []
        result = time_best(lambda: calls.append(1), repeats=3, warmup=2)
        assert len(calls) == 5
        assert len(result.runs) == 3

    def test_best_is_minimum_and_mean_is_average(self):
        result = time_best(lambda: None, repeats=4, warmup=0)
        assert result.best == min(result.runs)
        assert result.mean == pytest.approx(sum(result.runs) / 4)
        assert all(run >= 0.0 for run in result.runs)

    def test_median_property(self):
        result = TimingResult(best=1.0, mean=2.0, runs=(1.0, 2.0, 9.0))
        assert result.median == 2.0

    def test_zero_repeats_rejected(self):
        with pytest.raises(ValueError, match="repeats"):
            time_best(lambda: None, repeats=0)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError, match="warmup"):
            time_best(lambda: None, warmup=-1)


class TestTimeInterleaved:
    def test_alternates_a_and_b(self):
        order = []
        result_a, result_b = time_interleaved(
            lambda: order.append("a"), lambda: order.append("b"),
            pairs=3, warmup=1,
        )
        # One warmup pair plus three measured pairs, strictly alternating.
        assert order == ["a", "b"] * 4
        assert len(result_a.runs) == 3
        assert len(result_b.runs) == 3

    def test_results_are_timing_results(self):
        result_a, result_b = time_interleaved(
            lambda: None, lambda: None, pairs=2, warmup=0
        )
        for result in (result_a, result_b):
            assert isinstance(result, TimingResult)
            assert result.best == min(result.runs)

    def test_zero_pairs_rejected(self):
        with pytest.raises(ValueError, match="pairs"):
            time_interleaved(lambda: None, lambda: None, pairs=0)
