"""Property-based tests for the simulation kernel."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.stats import Tally, TimeWeighted


class TestEventOrdering:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=50))
    @settings(max_examples=60)
    def test_timeouts_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []

        def proc(delay, tag):
            yield sim.timeout(delay)
            fired.append((sim.now, tag))

        for tag, delay in enumerate(delays):
            sim.process(proc(delay, tag))
        sim.run()
        times = [t for t, _tag in fired]
        assert times == sorted(times)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_equal_times_preserve_schedule_order(self, delays):
        sim = Simulator()
        fired = []
        common = 5.0

        def proc(tag):
            yield sim.timeout(common)
            fired.append(tag)

        for tag in range(len(delays)):
            sim.process(proc(tag))
        sim.run()
        assert fired == list(range(len(delays)))

    @given(st.lists(st.floats(min_value=0.001, max_value=10.0,
                              allow_nan=False), min_size=1, max_size=20))
    @settings(max_examples=40)
    def test_clock_never_goes_backwards(self, delays):
        sim = Simulator()
        observed = []

        def proc(delay):
            yield sim.timeout(delay)
            observed.append(sim.now)
            yield sim.timeout(delay)
            observed.append(sim.now)

        for delay in delays:
            sim.process(proc(delay))
        last = -1.0
        while sim.peek() != math.inf:
            sim.step()
            assert sim.now >= last
            last = sim.now


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    @settings(max_examples=80)
    def test_tally_matches_reference_statistics(self, values):
        import statistics

        tally = Tally()
        for value in values:
            tally.record(value)
        assert tally.count == len(values)
        assert tally.mean == pytest_approx(statistics.fmean(values))
        assert tally.min == min(values)
        assert tally.max == max(values)
        if len(values) > 1:
            assert tally.variance == pytest_approx(statistics.variance(values))

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
                st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
            ),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=80)
    def test_timeweighted_matches_manual_integration(self, steps):
        tw = TimeWeighted(initial=0.0, now=0.0)
        now = 0.0
        area = 0.0
        value = 0.0
        for dt, new_value in steps:
            area += value * dt
            now += dt
            tw.update(new_value, now=now)
            value = new_value
        horizon = now + 1.0
        area += value * 1.0
        assert tw.time_average(horizon) == pytest_approx(area / horizon)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e3,
                              allow_nan=False), min_size=2, max_size=100),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60)
    def test_percentiles_bounded_and_monotonic(self, values, q):
        tally = Tally(keep_samples=True)
        for value in values:
            tally.record(value)
        p = tally.percentile(q)
        assert min(values) <= p <= max(values)
        assert tally.percentile(0.0) <= tally.percentile(1.0)


def pytest_approx(value):
    import pytest

    return pytest.approx(value, rel=1e-6, abs=1e-6)


class TestSameTimeTieBreaking:
    """The heap key is ``(time, priority, seq, event)`` with a strictly
    monotonic ``seq``: ties on time and priority are broken by schedule
    order alone, and ``Event`` objects are never compared."""

    @given(st.lists(st.sampled_from([0.0, 1.0, 2.0]), min_size=1,
                    max_size=80))
    @settings(max_examples=60)
    def test_many_same_time_events_fire_in_schedule_order(self, times):
        sim = Simulator()
        fired = []
        for tag, when in enumerate(times):
            event = sim.event()
            event.callbacks.append(lambda _e, t=tag: fired.append(t))
            event.succeed(value=None, delay=when)
        sim.run()
        expected = [tag for when in (0.0, 1.0, 2.0)
                    for tag, t in enumerate(times) if t == when]
        assert fired == expected

    @given(st.lists(st.booleans(), min_size=2, max_size=60))
    @settings(max_examples=60)
    def test_urgent_preempts_normal_within_a_timestamp(self, urgencies):
        from repro.sim.engine import NORMAL, URGENT

        sim = Simulator()
        fired = []
        for tag, urgent in enumerate(urgencies):
            event = sim.event()
            event._ok = True
            event._value = None
            event.callbacks.append(lambda _e, t=tag: fired.append(t))
            sim._schedule(event, 1.0, priority=URGENT if urgent else NORMAL)
        sim.run()
        expected = ([t for t, u in enumerate(urgencies) if u]
                    + [t for t, u in enumerate(urgencies) if not u])
        assert fired == expected

    @given(st.lists(st.integers(min_value=0, max_value=4), min_size=1,
                    max_size=60))
    @settings(max_examples=40)
    def test_identical_schedules_replay_identically(self, times):
        def run_once():
            sim = Simulator()
            fired = []
            for tag, when in enumerate(times):
                event = sim.event()
                event.callbacks.append(lambda _e, t=tag: fired.append(t))
                event.succeed(value=None, delay=float(when))
            sim.run()
            return fired

        assert run_once() == run_once()

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=30)
    def test_store_serves_same_time_getters_fifo(self, n):
        from repro.sim import Store

        sim = Simulator()
        store = Store(sim)
        served = []

        def getter(tag):
            item = yield store.get()
            served.append((tag, item))

        for tag in range(n):
            sim.process(getter(tag))

        def producer():
            yield sim.timeout(1.0)
            for item in range(n):
                store.put(item)

        sim.process(producer())
        sim.run()
        assert served == [(i, i) for i in range(n)]
