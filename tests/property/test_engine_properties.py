"""Property-based tests for the simulation kernel."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.stats import Tally, TimeWeighted


class TestEventOrdering:
    @given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                              allow_nan=False, allow_infinity=False),
                    min_size=1, max_size=50))
    @settings(max_examples=60)
    def test_timeouts_fire_in_nondecreasing_time_order(self, delays):
        sim = Simulator()
        fired = []

        def proc(delay, tag):
            yield sim.timeout(delay)
            fired.append((sim.now, tag))

        for tag, delay in enumerate(delays):
            sim.process(proc(delay, tag))
        sim.run()
        times = [t for t, _tag in fired]
        assert times == sorted(times)
        assert len(fired) == len(delays)

    @given(st.lists(st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False), min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_equal_times_preserve_schedule_order(self, delays):
        sim = Simulator()
        fired = []
        common = 5.0

        def proc(tag):
            yield sim.timeout(common)
            fired.append(tag)

        for tag in range(len(delays)):
            sim.process(proc(tag))
        sim.run()
        assert fired == list(range(len(delays)))

    @given(st.lists(st.floats(min_value=0.001, max_value=10.0,
                              allow_nan=False), min_size=1, max_size=20))
    @settings(max_examples=40)
    def test_clock_never_goes_backwards(self, delays):
        sim = Simulator()
        observed = []

        def proc(delay):
            yield sim.timeout(delay)
            observed.append(sim.now)
            yield sim.timeout(delay)
            observed.append(sim.now)

        for delay in delays:
            sim.process(proc(delay))
        last = -1.0
        while sim.peek() != math.inf:
            sim.step()
            assert sim.now >= last
            last = sim.now


class TestStatsProperties:
    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6,
                              allow_nan=False), min_size=1, max_size=200))
    @settings(max_examples=80)
    def test_tally_matches_reference_statistics(self, values):
        import statistics

        tally = Tally()
        for value in values:
            tally.record(value)
        assert tally.count == len(values)
        assert tally.mean == pytest_approx(statistics.fmean(values))
        assert tally.min == min(values)
        assert tally.max == max(values)
        if len(values) > 1:
            assert tally.variance == pytest_approx(statistics.variance(values))

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.001, max_value=10.0, allow_nan=False),
                st.floats(min_value=-100.0, max_value=100.0, allow_nan=False),
            ),
            min_size=1,
            max_size=100,
        )
    )
    @settings(max_examples=80)
    def test_timeweighted_matches_manual_integration(self, steps):
        tw = TimeWeighted(initial=0.0, now=0.0)
        now = 0.0
        area = 0.0
        value = 0.0
        for dt, new_value in steps:
            area += value * dt
            now += dt
            tw.update(new_value, now=now)
            value = new_value
        horizon = now + 1.0
        area += value * 1.0
        assert tw.time_average(horizon) == pytest_approx(area / horizon)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e3,
                              allow_nan=False), min_size=2, max_size=100),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60)
    def test_percentiles_bounded_and_monotonic(self, values, q):
        tally = Tally(keep_samples=True)
        for value in values:
            tally.record(value)
        p = tally.percentile(q)
        assert min(values) <= p <= max(values)
        assert tally.percentile(0.0) <= tally.percentile(1.0)


def pytest_approx(value):
    import pytest

    return pytest.approx(value, rel=1e-6, abs=1e-6)
