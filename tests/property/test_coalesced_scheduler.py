"""The coalesced scheduler must be observably event-per-step equivalent.

``Resource.hold``, :func:`~repro.sim.resources.hold_seq` and
:func:`~repro.sim.resources.held_chain` replace the old
request/timeout/release generators with ONE re-armed scheduled entry
per compound operation -- that is where the event-count reduction comes
from.  The contract is that this is purely mechanical: every process
must observe the same grant order, the same completion instants and the
same resource statistics as the event-per-step formulation it replaced.
These properties drive both formulations over the same randomized
workloads on twin simulators and require exact agreement.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.resources import Resource, held_chain, hold_seq

short_floats = st.floats(
    min_value=0.0, max_value=4.0, allow_nan=False, allow_infinity=False
)
jobs = st.lists(
    st.tuples(short_floats, short_floats),  # (start delay, hold duration)
    min_size=1,
    max_size=25,
)


def reference_hold(sim, resource, duration):
    """The event-per-step formulation ``hold`` replaced."""
    request = resource.request()
    yield request
    yield sim.timeout(duration)
    resource.release()


def resource_fingerprint(resource):
    """Observable statistics, split into exact and float parts.

    Counts, extrema and the busy maximum are bit-exact across the two
    formulations.  The accrued areas and the wait mean are mathematically
    equal but not bit-equal: handoff fusion defers a time-weighted
    accrual across a constant-level span and the zero-wait records fold
    in one merge step instead of one Welford update each, so the same
    sums are computed in a different association order.
    """
    now = resource.sim.now
    exact = (
        resource.services,
        resource.wait_time.count,
        resource.wait_time.min,
        resource.wait_time.max,
        resource.busy_stat.max,
    )
    close = (
        resource.busy_time(now),
        resource.wait_time.mean,
        resource.queue_stat.time_average(now),
    )
    return exact, close


class TestHoldEquivalence:
    @given(jobs, st.integers(min_value=1, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_hold_matches_request_timeout_release(self, schedule, capacity):
        def run(coalesced):
            sim = Simulator()
            resource = Resource(sim, capacity=capacity)
            completions = {}

            def worker(tag, start, duration):
                yield sim.timeout(start)
                if coalesced:
                    yield resource.hold(duration)
                else:
                    yield from reference_hold(sim, resource, duration)
                completions[tag] = sim.now

            for tag, (start, duration) in enumerate(schedule):
                sim.process(worker(tag, start, duration))
            sim.run()
            return completions, resource_fingerprint(resource), sim.now

        fast, (fast_exact, fast_close), fast_now = run(coalesced=True)
        slow, (slow_exact, slow_close), slow_now = run(coalesced=False)
        assert fast == slow
        assert fast_now == slow_now
        assert fast_exact == slow_exact
        for a, b in zip(fast_close, slow_close):
            if math.isnan(a):
                assert math.isnan(b)
            else:
                assert math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)

    @given(jobs)
    @settings(max_examples=40, deadline=None)
    def test_coalesced_run_never_processes_more_events(self, schedule):
        def run(coalesced):
            sim = Simulator()
            resource = Resource(sim, capacity=1)

            def worker(start, duration):
                yield sim.timeout(start)
                if coalesced:
                    yield resource.hold(duration)
                else:
                    yield from reference_hold(sim, resource, duration)

            for start, duration in schedule:
                sim.process(worker(start, duration))
            sim.run()
            return sim.events_processed

        assert run(coalesced=True) <= run(coalesced=False)


leg_lists = st.lists(
    st.tuples(
        st.one_of(st.none(), st.integers(min_value=0, max_value=1)),
        short_floats,
    ),
    min_size=1,
    max_size=5,
)


class TestHoldSeqEquivalence:
    @given(st.lists(st.tuples(short_floats, leg_lists), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_hold_seq_matches_per_leg_formulation(self, chains):
        def run(coalesced):
            sim = Simulator()
            resources = [Resource(sim, capacity=1) for _ in range(2)]
            completions = {}

            def worker(tag, start, legs):
                yield sim.timeout(start)
                if coalesced:
                    yield hold_seq(
                        sim,
                        tuple(
                            (
                                None if index is None else resources[index],
                                duration,
                                None,
                            )
                            for index, duration in legs
                        ),
                    )
                else:
                    for index, duration in legs:
                        if index is None:
                            yield sim.timeout(duration)
                        else:
                            yield from reference_hold(
                                sim, resources[index], duration
                            )
                completions[tag] = sim.now

            for tag, (start, legs) in enumerate(chains):
                sim.process(worker(tag, start, legs))
            sim.run()
            return completions, [r.services for r in resources], sim.now

        assert run(coalesced=True) == run(coalesced=False)


class TestHeldChainEquivalence:
    @given(
        st.lists(
            st.tuples(short_floats, short_floats, short_floats),
            min_size=1,
            max_size=10,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_held_chain_matches_nested_formulation(self, chains):
        def run(coalesced):
            sim = Simulator()
            outer = Resource(sim, capacity=1)
            inner = Resource(sim, capacity=1)
            completions = {}

            def worker(tag, start, outer_time, inner_time):
                yield sim.timeout(start)
                if coalesced:
                    yield held_chain(outer, inner, outer_time, inner_time)
                else:
                    request = outer.request()
                    yield request
                    yield sim.timeout(outer_time)
                    inner_request = inner.request()
                    yield inner_request
                    yield sim.timeout(inner_time)
                    inner.release()
                    outer.release()
                completions[tag] = sim.now

            for tag, (start, outer_time, inner_time) in enumerate(chains):
                sim.process(worker(tag, start, outer_time, inner_time))
            sim.run()
            return (
                completions,
                outer.services,
                inner.services,
                sim.now,
            ), outer.busy_time(sim.now)

        fast, fast_busy = run(coalesced=True)
        slow, slow_busy = run(coalesced=False)
        assert fast == slow
        assert math.isclose(fast_busy, slow_busy, rel_tol=1e-9, abs_tol=1e-12)


class TestSameTimestampOrdering:
    @given(
        st.lists(
            st.sampled_from(["timeout", "hold", "urgent"]),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_lanes_preserve_urgent_then_fifo_order(self, kinds):
        """Heap timers, coalesced zero-duration holds (the ``_ready``
        lane) and URGENT wakeups (the ``_urgent`` lane) landing on one
        timestamp fire URGENT-first, then FIFO by schedule order."""
        from repro.sim.engine import URGENT

        sim = Simulator()
        fired = []
        # A dedicated idle resource per hold keeps every hold on its
        # uncontended fast path, which arms through the _ready lane.
        for tag, kind in enumerate(kinds):
            if kind == "urgent":
                event = sim.event()
                event._ok = True
                event._value = None
                event.callbacks.append(lambda _e, t=tag: fired.append(t))
                sim._schedule(event, 0.0, priority=URGENT)
            elif kind == "hold":
                entry = Resource(sim, capacity=1).hold(0.0)
                entry.callbacks.append(lambda _e, t=tag: fired.append(t))
            else:
                timer = sim.timeout(0.0)
                timer.callbacks.append(lambda _e, t=tag: fired.append(t))
        sim.run()
        expected = [t for t, kind in enumerate(kinds) if kind == "urgent"] + [
            t for t, kind in enumerate(kinds) if kind != "urgent"
        ]
        assert fired == expected

    @given(st.lists(st.booleans(), min_size=1, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_contended_holds_granted_fifo(self, writers):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        order = []

        def worker(tag):
            yield resource.hold(1.0)
            order.append(tag)

        for tag in range(len(writers)):
            sim.process(worker(tag))
        sim.run()
        assert order == list(range(len(writers)))


class TestStepRunEquivalence:
    @given(jobs)
    @settings(max_examples=40, deadline=None)
    def test_step_loop_reproduces_run(self, schedule):
        def build(sim, resource, log):
            def worker(tag, start, duration):
                yield sim.timeout(start)
                yield resource.hold(duration)
                log.append((tag, sim.now))

            for tag, (start, duration) in enumerate(schedule):
                sim.process(worker(tag, start, duration))

        sim_a = Simulator()
        log_a = []
        build(sim_a, Resource(sim_a, capacity=1), log_a)
        sim_a.run()

        sim_b = Simulator()
        log_b = []
        build(sim_b, Resource(sim_b, capacity=1), log_b)
        while sim_b.peek() != math.inf:
            sim_b.step()

        assert log_a == log_b
        assert sim_a.now == sim_b.now
        assert sim_a.events_processed == sim_b.events_processed

    @given(jobs)
    @settings(max_examples=30, deadline=None)
    def test_replay_is_deterministic(self, schedule):
        def run_once():
            sim = Simulator()
            resource = Resource(sim, capacity=2)
            log = []

            def worker(tag, start, duration):
                yield sim.timeout(start)
                yield resource.hold(duration)
                log.append((tag, sim.now))

            for tag, (start, duration) in enumerate(schedule):
                sim.process(worker(tag, start, duration))
            sim.run()
            return log, sim.events_processed

        assert run_once() == run_once()


class TestJobsDeterminismAllRegimes:
    """RunResults must be bit-identical under --jobs 1 and --jobs 4."""

    def test_all_regimes_identical_across_worker_counts(self):
        from repro.system.parallel import SweepRunner

        from tests.helpers import system_config

        configs = [
            system_config(
                num_nodes=2,
                coupling=coupling,
                arrival_rate_per_node=50.0,
                warmup_time=0.3,
                measure_time=1.0,
                random_seed=4242,
            )
            for coupling in ("gem", "pcl", "rdma")
        ]
        with SweepRunner(jobs=1) as serial:
            a = serial.map_raw(configs)
        with SweepRunner(jobs=4) as pool:
            b = pool.map_raw(configs)
        for config, x, y in zip(configs, a, b):
            assert x.deterministic_dict() == y.deterministic_dict(), (
                config.coupling
            )
