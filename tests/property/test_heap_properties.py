"""Property-based tests for the tuple-backed event heap.

The engine schedules everything through one heap of
``(time, priority, seq, event)`` tuples.  Correctness rests on three
invariants these tests hammer from every angle the optimization work
touched:

* heap order is (time, priority, seq) -- never event identity;
* ``seq`` is a global monotone counter, so same-time same-priority
  events fire in schedule (FIFO) order;
* URGENT (process bootstraps, resource grants) beats NORMAL at equal
  times regardless of schedule order.

They complement ``test_engine_properties.TestSameTimeTieBreaking``:
that class pins specific interleavings, these generate them.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.resources import Resource

delays = st.floats(min_value=0.0, max_value=100.0,
                   allow_nan=False, allow_infinity=False)


class TestHeapOrdering:
    @given(st.lists(st.tuples(delays, st.booleans()), min_size=1, max_size=40))
    @settings(max_examples=60)
    def test_mixed_timeout_and_succeed_delay_fire_in_time_order(self, specs):
        """timeout() and Event.succeed(delay=...) share one clock line."""
        sim = Simulator()
        fired = []

        def via_timeout(delay, tag):
            yield sim.timeout(delay)
            fired.append((sim.now, tag))

        def via_succeed(delay, tag):
            event = sim.event()
            event.succeed(delay=delay)
            yield event
            fired.append((sim.now, tag))

        for tag, (delay, use_timeout) in enumerate(specs):
            sim.process(via_timeout(delay, tag) if use_timeout
                        else via_succeed(delay, tag))
        sim.run()
        assert len(fired) == len(specs)
        times = [t for t, _tag in fired]
        assert times == sorted(times)
        # Equal-time events keep schedule order within each mechanism
        # and across them: seq is global, so tag order is preserved
        # whenever times tie exactly.
        for (t_a, tag_a), (t_b, tag_b) in zip(fired, fired[1:]):
            if t_a == t_b:
                assert tag_a < tag_b

    @given(st.lists(delays, min_size=1, max_size=30))
    @settings(max_examples=60)
    def test_step_by_step_equals_run(self, delay_list):
        """Draining the heap via step() visits the same trajectory as run()."""
        def build():
            sim = Simulator()
            fired = []

            def proc(delay, tag):
                yield sim.timeout(delay)
                fired.append((sim.now, tag))

            for tag, delay in enumerate(delay_list):
                sim.process(proc(delay, tag))
            return sim, fired

        sim_run, fired_run = build()
        sim_run.run()

        sim_step, fired_step = build()
        while sim_step.peek() != math.inf:
            sim_step.step()

        assert fired_step == fired_run
        assert sim_step.now == sim_run.now

    @given(st.lists(delays, min_size=1, max_size=30), delays)
    @settings(max_examples=60)
    def test_run_until_is_a_clean_horizon(self, delay_list, horizon):
        """run(until) fires exactly the events scheduled before the horizon."""
        sim = Simulator()
        fired = []

        def proc(delay, tag):
            yield sim.timeout(delay)
            fired.append((sim.now, tag))

        for tag, delay in enumerate(delay_list):
            sim.process(proc(delay, tag))
        sim.run(until=horizon)
        assert sim.now == horizon
        assert all(t <= horizon for t, _tag in fired)
        # Processes are bootstrapped at time 0 via URGENT events, so
        # every delay inside the horizon must have fired.
        expected = sum(1 for d in delay_list if d <= horizon)
        assert len(fired) == expected

    @given(st.lists(st.booleans(), min_size=2, max_size=24))
    @settings(max_examples=60)
    def test_resource_grant_storm_is_fifo(self, wants_long):
        """N contenders for one server are served strictly in arrival order.

        Grants are URGENT events created inside release(); the seq
        tie-break must keep the wait queue FIFO no matter how service
        times collide.
        """
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        served = []

        def client(tag, long_service):
            yield resource.request()
            try:
                served.append(tag)
                yield sim.timeout(1.0 if long_service else 0.0)
            finally:
                resource.release()

        for tag, long_service in enumerate(wants_long):
            sim.process(client(tag, long_service))
        sim.run()
        assert served == list(range(len(wants_long)))
        assert resource.busy == 0
        assert resource.queue_length == 0

    @given(st.lists(delays, min_size=1, max_size=20))
    @settings(max_examples=40)
    def test_replay_is_deterministic(self, delay_list):
        """Two fresh simulators given the same schedule fire identically."""
        def trace():
            sim = Simulator()
            fired = []

            def proc(delay, tag):
                yield sim.timeout(delay)
                fired.append((sim.now, tag))

            for tag, delay in enumerate(delay_list):
                sim.process(proc(delay, tag))
            sim.run()
            return fired, sim.events_processed

        first = trace()
        second = trace()
        assert first == second
