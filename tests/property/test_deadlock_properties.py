"""Property-based tests for deadlock detection.

Random lock workloads with artificially planted cycles: the detector
must find every planted cycle and never fire on acyclic wait graphs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.deadlock import DeadlockDetector
from repro.node.lock_table import LockMode, LockTable

X = LockMode.EXCLUSIVE


def noop():
    pass


class TestAcyclicNeverFires:
    @given(
        chain_length=st.integers(2, 8),
    )
    @settings(max_examples=40)
    def test_wait_chain_is_not_a_deadlock(self, chain_length):
        """txn i waits for txn i-1 on page i: a pure chain, no cycle."""
        detector = DeadlockDetector()
        table = LockTable()
        for i in range(chain_length):
            table.request(i, (0, i), X, noop)
        for i in range(1, chain_length):
            table.request(i, (0, i - 1), X, noop)
            victim = detector.register_block(i, table, noop)
            assert victim is None
        assert detector.deadlocks_detected == 0

    @given(
        num_txns=st.integers(2, 6),
        num_pages=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=50)
    def test_random_ordered_acquisition_is_deadlock_free(
        self, num_txns, num_pages, seed
    ):
        """Transactions acquiring pages in global page order (the
        debit-credit discipline) can never deadlock."""
        import random

        rng = random.Random(seed)
        detector = DeadlockDetector()
        table = LockTable()
        # Each txn requests a sorted subset of pages, one at a time;
        # when blocked it stops (we don't simulate time here).
        for txn in range(num_txns):
            pages = sorted(rng.sample(range(num_pages), rng.randint(1, num_pages)))
            for page_no in pages:
                if table.is_blocked(txn):
                    break
                granted = table.request(txn, (0, page_no), X, noop)
                if not granted:
                    victim = detector.register_block(txn, table, noop)
                    assert victim is None, "ordered acquisition deadlocked"
        assert detector.deadlocks_detected == 0


class TestPlantedCyclesFound:
    @given(cycle_size=st.integers(2, 7))
    @settings(max_examples=40)
    def test_planted_cycle_detected_and_victim_is_youngest(self, cycle_size):
        detector = DeadlockDetector()
        table = LockTable()
        aborted = []
        # txn i holds page i; then txn i requests page (i+1) % k.
        for i in range(cycle_size):
            table.request(i, (0, i), X, noop)
        victim = None
        for i in range(cycle_size):
            target = (0, (i + 1) % cycle_size)
            granted = table.request(i, target, X, noop)
            assert not granted

            def abort(txn=i, page=target):
                table.cancel(txn, page)
                aborted.append(txn)

            victim = detector.register_block(i, table, abort)
            if victim is not None:
                break
        assert victim == cycle_size - 1  # youngest participant
        assert aborted == [victim]
        assert detector.deadlocks_detected == 1
        # After the abort the remaining graph is a chain: no more cycles.
        assert not detector.is_blocked(victim)
