"""Property-based tests for workload generation, traces and routing."""

import io

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.routing.gla import build_gla_map
from repro.routing.routing_table import build_routing_table
from repro.sim import StreamRegistry
from repro.sim.rng import zipf_weights
from repro.workload.trace import Trace, TraceReference, TraceTransaction


references = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 1000), st.booleans()),
    max_size=20,
)
transactions = st.lists(
    st.tuples(st.integers(0, 6), references), min_size=1, max_size=30
)


def build_trace(spec):
    txns = [
        TraceTransaction(t, [TraceReference(f, p, w) for f, p, w in refs])
        for t, refs in spec
    ]
    return Trace(txns, num_files=5)


class TestTraceRoundTrip:
    @given(spec=transactions)
    @settings(max_examples=60)
    def test_save_load_identity(self, spec):
        trace = build_trace(spec)
        buffer = io.StringIO()
        trace.write_to(buffer)
        buffer.seek(0)
        loaded = Trace.read_from(buffer)
        assert len(loaded) == len(trace)
        assert loaded.num_references() == trace.num_references()
        assert loaded.distinct_pages() == trace.distinct_pages()
        assert loaded.write_reference_fraction() == trace.write_reference_fraction()
        for a, b in zip(trace, loaded):
            assert a.type_id == b.type_id
            assert a.references == b.references


class TestRoutingProperties:
    @given(spec=transactions, num_nodes=st.integers(1, 5))
    @settings(max_examples=50)
    def test_routing_table_assigns_all_types_to_valid_nodes(
        self, spec, num_nodes
    ):
        trace = build_trace(spec)
        table = build_routing_table(trace, num_nodes)
        for txn in trace:
            assert 0 <= table.node_for(txn.type_id) < num_nodes

    @given(spec=transactions, num_nodes=st.integers(1, 4))
    @settings(max_examples=50)
    def test_routing_load_within_slack(self, spec, num_nodes):
        trace = build_trace(spec)
        table = build_routing_table(trace, num_nodes, balance_slack=1.25)
        loads = [0] * num_nodes
        for txn in trace:
            loads[table.node_for(txn.type_id)] += len(txn.references)
        total = sum(loads)
        if total == 0 or num_nodes == 1:
            return
        # No node may exceed the cap by more than one (indivisible)
        # type's volume.
        biggest_type = max(
            (len(t.references) for t in trace), default=0
        )
        cap = total / num_nodes * 1.25
        assert max(loads) <= cap + biggest_type * 30  # types share ids

    @given(spec=transactions, num_nodes=st.integers(1, 4))
    @settings(max_examples=50)
    def test_gla_map_total_and_deterministic(self, spec, num_nodes):
        trace = build_trace(spec)
        table = build_routing_table(trace, num_nodes)
        gla = build_gla_map(trace, table, num_nodes)
        for txn in trace:
            for ref in txn.references:
                node = gla((ref.file_id, ref.page_no))
                assert 0 <= node < num_nodes
                assert node == gla((ref.file_id, ref.page_no))


class TestRngProperties:
    @given(n=st.integers(1, 500), theta=st.floats(0.0, 2.0, allow_nan=False))
    @settings(max_examples=60)
    def test_zipf_weights_cumulative_and_positive(self, n, theta):
        weights = zipf_weights(n, theta)
        assert len(weights) == n
        assert weights[0] > 0
        for earlier, later in zip(weights, weights[1:]):
            assert later > earlier

    @given(
        seed=st.integers(0, 2**31),
        n=st.integers(1, 100),
        theta=st.floats(0.0, 1.5, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_weighted_index_in_bounds(self, seed, n, theta):
        stream = StreamRegistry(seed).stream("w")
        weights = zipf_weights(n, theta)
        for _ in range(50):
            index = stream.weighted_index(weights)
            assert 0 <= index < n
