"""Cross-regime invariants: GEM, PCL and RDMA must agree.

The disaggregated-memory regime swaps the cost model (one-sided verbs
instead of GEM entry instructions or PCL messages) but not the
semantics: every coupling regime, under every concurrency-control
protocol, must produce a committed state equivalent to some serial
execution of the committed transactions.  On top of the serializable
shape shared with ``test_cross_protocol``, the RDMA regime adds two
obligations of its own:

* **No stale reads from the compute-side cache.**  Installing a commit
  into the memory pool invalidates every other node's unpinned cached
  copy; a frame that survived an invalidation while older than the
  pool's committed version would serve a superseded snapshot.
* **No leaked lock state.**  One-sided lock words have no server-side
  janitor, so a grant that outlives its transaction stays forever: at
  the drained horizon every lock entry must be holder-free and no
  requester may still be parked.

Determinism rides along: the RDMA regime must be bit-identical whether
the simulation runs in-process or inside a worker pool.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.system.cluster import Cluster

from tests.helpers import make_rdma_cluster, system_config

PROTOCOLS = ("2pl", "mvcc", "dgcc")
COUPLINGS = ("gem", "pcl", "rdma")

combos = st.sampled_from(
    [(p, c) for p in PROTOCOLS for c in COUPLINGS]
)
seeds = st.integers(min_value=0, max_value=2**16)


def run_and_check(protocol, coupling, seed):
    config = system_config(
        num_nodes=3,
        coupling=coupling,
        protocol=protocol,
        arrival_rate_per_node=40.0,
        warmup_time=0.2,
        measure_time=1.0,
        random_seed=seed,
    )
    cluster = Cluster(config)
    installs = {}
    real_install = cluster.ledger.install_commit

    def counting_install(page, version):
        previous = cluster.ledger.committed_version(page)
        assert version == previous + 1, (
            f"page {page}: committed version jumped {previous} -> {version} "
            f"({protocol}/{coupling}, seed {seed})"
        )
        installs[page] = installs.get(page, 0) + 1
        real_install(page, version)

    cluster.ledger.install_commit = counting_install
    end = config.warmup_time + config.measure_time
    cluster.sim.run(until=end)
    # Drain in-flight transactions so every started commit finishes.
    cluster.source.stop()
    cluster.sim.run(until=end + 1.0)
    for page, count in sorted(installs.items()):
        committed = cluster.ledger.committed_version(page)
        assert committed == count, (
            f"page {page}: {count} commits installed but final version "
            f"is {committed} ({protocol}/{coupling}, seed {seed})"
        )
    assert installs, "run committed no updates -- not a meaningful example"
    return cluster


def _rdma_helper(cluster):
    helper = getattr(cluster.protocol, "rdma", None)
    if helper is None:
        helper = cluster.protocol._rdma
    assert helper is not None
    return helper


class TestSerializableEquivalence:
    @given(combo=combos, seed=seeds)
    @settings(max_examples=12, deadline=None)
    def test_committed_state_matches_a_serial_execution(self, combo, seed):
        protocol, coupling = combo
        run_and_check(protocol, coupling, seed)


class TestRdmaCacheCoherence:
    @given(seed=seeds, protocol=st.sampled_from(PROTOCOLS))
    @settings(max_examples=6, deadline=None)
    def test_no_stale_unpinned_frame_survives_an_install(self, seed, protocol):
        config = system_config(
            num_nodes=3,
            coupling="rdma",
            protocol=protocol,
            arrival_rate_per_node=40.0,
            warmup_time=0.2,
            measure_time=1.0,
            random_seed=seed,
        )
        cluster = Cluster(config)
        helper = _rdma_helper(cluster)
        installs = []
        real_install = helper.install

        def checking_install(node_id, updates):
            yield from real_install(node_id, updates)
            installs.append(len(updates))
            for page, version in updates:
                for node in cluster.nodes:
                    frame = node.buffer._frames.get(page)
                    if frame is not None and not frame.pins:
                        assert frame.version >= helper.pool.get(page, 0), (
                            f"node {node.node_id} kept stale {page} "
                            f"v{frame.version} after install of v{version}"
                        )

        helper.install = checking_install
        end = config.warmup_time + config.measure_time
        cluster.sim.run(until=end)
        cluster.source.stop()
        cluster.sim.run(until=end + 1.0)
        assert installs, "run installed no pool updates -- not meaningful"

    @given(seed=seeds, protocol=st.sampled_from(PROTOCOLS))
    @settings(max_examples=6, deadline=None)
    def test_pool_never_behind_the_ledger_at_horizon(self, seed, protocol):
        cluster = run_and_check(protocol, "rdma", seed)
        helper = _rdma_helper(cluster)
        for page, version in sorted(helper.pool.items()):
            committed = cluster.ledger.committed_version(page)
            assert version == committed, (
                f"pool holds {page} v{version} but committed is v{committed}"
            )


class TestRdmaNoLeakedLocks:
    @given(seed=seeds)
    @settings(max_examples=6, deadline=None)
    def test_drained_horizon_leaves_no_grants_or_waiters(self, seed):
        cluster = run_and_check("2pl", "rdma", seed)
        plt = cluster.protocol.plt
        assert plt.num_blocked() == 0
        for page, entry in sorted(plt._entries.items()):
            assert not entry.holders, (
                f"{page}: grant leaked to {sorted(entry.holders)}"
            )
            assert not entry.queue, f"{page}: waiter leaked"


class TestJobsDeterminism:
    """`--jobs 1` and `--jobs 4` must be bit-identical for RDMA."""

    def test_rdma_identical_across_worker_counts(self):
        from repro.system.parallel import SweepRunner

        configs = [
            system_config(
                num_nodes=2,
                coupling="rdma",
                protocol=protocol,
                arrival_rate_per_node=50.0,
                warmup_time=0.3,
                measure_time=1.2,
                random_seed=1234,
            )
            for protocol in PROTOCOLS
        ]
        with SweepRunner(jobs=1) as serial:
            a = serial.map_raw(configs)
        with SweepRunner(jobs=4) as pool:
            b = pool.map_raw(configs)
        for config, x, y in zip(configs, a, b):
            assert x.deterministic_dict() == y.deterministic_dict(), (
                config.protocol
            )


class TestRdmaHelperFixture:
    """make_rdma_cluster builds a quiesced RDMA cluster."""

    def test_fixture_shape(self):
        cluster = make_rdma_cluster()
        assert cluster.rdma is not None
        assert cluster.config.coupling.value == "rdma"
        helper = _rdma_helper(cluster)
        assert helper.pool == {}

    def test_fixture_accepts_protocol_override(self):
        cluster = make_rdma_cluster(protocol="mvcc")
        assert cluster.protocol.name == "mvcc"
        assert cluster.protocol._rdma is not None
