"""Cross-protocol invariants: 2PL, MVCC and DGCC must agree.

Every concurrency-control protocol, under either coupling regime, has
to produce a committed state that is equivalent to *some* serial
execution of the committed transactions.  For this model's workloads
each committed write advances its page's version by exactly one from
the version the writer observed, so serializability has a sharp
observable form:

* **No lost updates.**  Every ``install_commit`` moves the page's
  committed version by exactly +1 -- a gap would mean a writer
  committed against a version that was never the committed state, two
  writers off one snapshot would collide (the ledger raises).
* **Write count conservation.**  The final committed version of every
  page equals the number of commits installed for it.

Both hold trivially for a serial execution; a concurrency bug in any
protocol (a write released early, a validation that passed against a
stale snapshot, a DGCC layer running two conflicting members) breaks
one of them.

Determinism rides along: one seed must produce bit-identical results
whether the simulation runs in-process or inside a worker pool.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.system.cluster import Cluster

from tests.helpers import system_config

PROTOCOLS = ("2pl", "mvcc", "dgcc")
COUPLINGS = ("gem", "pcl")

combos = st.sampled_from(
    [(p, c) for p in PROTOCOLS for c in COUPLINGS]
)
seeds = st.integers(min_value=0, max_value=2**16)


def run_and_check(protocol, coupling, seed):
    config = system_config(
        num_nodes=3,
        coupling=coupling,
        protocol=protocol,
        arrival_rate_per_node=40.0,
        warmup_time=0.2,
        measure_time=1.0,
        random_seed=seed,
    )
    cluster = Cluster(config)
    installs = {}
    real_install = cluster.ledger.install_commit

    def counting_install(page, version):
        previous = cluster.ledger.committed_version(page)
        assert version == previous + 1, (
            f"page {page}: committed version jumped {previous} -> {version} "
            f"({protocol}/{coupling}, seed {seed})"
        )
        installs[page] = installs.get(page, 0) + 1
        real_install(page, version)

    cluster.ledger.install_commit = counting_install
    end = config.warmup_time + config.measure_time
    cluster.sim.run(until=end)
    # Drain in-flight transactions so every started commit finishes.
    cluster.source.stop()
    cluster.sim.run(until=end + 1.0)
    for page, count in sorted(installs.items()):
        committed = cluster.ledger.committed_version(page)
        assert committed == count, (
            f"page {page}: {count} commits installed but final version "
            f"is {committed} ({protocol}/{coupling}, seed {seed})"
        )
    assert installs, "run committed no updates -- not a meaningful example"
    return cluster


class TestSerializableEquivalence:
    @given(combo=combos, seed=seeds)
    @settings(max_examples=12, deadline=None)
    def test_committed_state_matches_a_serial_execution(self, combo, seed):
        protocol, coupling = combo
        run_and_check(protocol, coupling, seed)

    @given(seed=seeds)
    @settings(max_examples=2, deadline=None)
    def test_mvcc_aborts_do_not_leak_reservations(self, seed):
        for coupling in COUPLINGS:
            cluster = run_and_check("mvcc", coupling, seed)
            assert cluster.protocol._reservations == {}
            assert cluster.protocol._txn_tc == {}

    @given(seed=seeds)
    @settings(max_examples=2, deadline=None)
    def test_dgcc_batches_drain(self, seed):
        for coupling in COUPLINGS:
            cluster = run_and_check("dgcc", coupling, seed)
            # After the drain no member may still be parked.
            assert cluster.protocol.num_blocked() == 0


class TestJobsDeterminism:
    """`--jobs 1` and `--jobs 4` must be bit-identical per seed."""

    def test_all_protocols_identical_across_worker_counts(self):
        from repro.system.parallel import SweepRunner

        configs = [
            system_config(
                num_nodes=2,
                coupling=coupling,
                protocol=protocol,
                arrival_rate_per_node=50.0,
                warmup_time=0.3,
                measure_time=1.2,
                random_seed=1234,
            )
            for protocol in PROTOCOLS
            for coupling in COUPLINGS
        ]
        with SweepRunner(jobs=1) as serial:
            a = serial.map_raw(configs)
        with SweepRunner(jobs=4) as pool:
            b = pool.map_raw(configs)
        for config, x, y in zip(configs, a, b):
            assert x.deterministic_dict() == y.deterministic_dict(), (
                config.protocol,
                config.coupling,
            )
