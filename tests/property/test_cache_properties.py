"""Property-based tests for LRU caches (disk cache and buffer LRU)."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.devices.disk_cache import DiskCache

page_ids = st.tuples(st.integers(0, 2), st.integers(0, 30))


class TestDiskCacheProperties:
    @given(
        capacity=st.integers(1, 8),
        operations=st.lists(
            st.tuples(st.sampled_from(["read", "insert", "write"]), page_ids),
            max_size=200,
        ),
        nonvolatile=st.booleans(),
    )
    @settings(max_examples=80)
    def test_capacity_never_exceeded(self, capacity, operations, nonvolatile):
        cache = DiskCache(capacity, nonvolatile=nonvolatile)
        for op, page in operations:
            if op == "read":
                cache.lookup_for_read(page)
            elif op == "insert":
                cache.insert(page)
            else:
                cache.note_write(page)
            assert len(cache) <= capacity

    @given(
        capacity=st.integers(1, 6),
        pages=st.lists(page_ids, min_size=1, max_size=100),
    )
    @settings(max_examples=80)
    def test_contents_are_most_recent_distinct_insertions(self, capacity, pages):
        cache = DiskCache(capacity, nonvolatile=False)
        model = OrderedDict()
        for page in pages:
            cache.insert(page)
            if page in model:
                model.move_to_end(page)
            model[page] = True
            while len(model) > capacity:
                model.popitem(last=False)
        for page in model:
            assert page in cache
        assert len(cache) == len(model)

    @given(pages=st.lists(page_ids, min_size=1, max_size=60))
    @settings(max_examples=60)
    def test_nonvolatile_dirty_until_clean(self, pages):
        cache = DiskCache(100, nonvolatile=True)
        for page in pages:
            absorbed = cache.note_write(page)
            assert absorbed
            assert cache.is_dirty(page)
        for page in set(pages):
            cache.mark_clean(page)
            assert not cache.is_dirty(page)

    @given(
        reads=st.lists(page_ids, min_size=1, max_size=80),
    )
    @settings(max_examples=60)
    def test_hit_plus_miss_equals_lookups(self, reads):
        cache = DiskCache(4, nonvolatile=False)
        for page in reads:
            if not cache.lookup_for_read(page):
                cache.insert(page)
        assert cache.read_hits + cache.read_misses == len(reads)
        assert 0.0 <= cache.hit_ratio() <= 1.0
