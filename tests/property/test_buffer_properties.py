"""Property-based tests for the buffer manager.

A sequence of committed single-page transactions is replayed against
the buffer while an independent model tracks which pages *must* be
resident; the LRU bound, pin accounting and hit/miss bookkeeping are
checked after every step.  Because the ledger verifies every fetch,
a completed run also certifies coherency.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.base import LockGrant, PageSource
from tests.helpers import MiniNode, make_txn
from repro.workload.transaction import PageAccess


operations = st.lists(
    st.tuples(st.integers(0, 15), st.booleans()),  # (page_no, write?)
    min_size=1,
    max_size=60,
)


class TestBufferModel:
    @given(ops=operations, capacity=st.integers(4, 12))
    @settings(max_examples=40, deadline=None)
    def test_capacity_and_accounting(self, ops, capacity):
        node = MiniNode(buffer_pages=capacity, disk_time=0.0001)
        txn_id = 0
        for page_no, write in ops:
            txn_id += 1
            txn = make_txn(txn_id)
            page = (0, page_no)
            access = PageAccess(page, write=write)
            txn.accesses.append(access)
            grant = LockGrant(
                node.ledger.committed_version(page), source=PageSource.STORAGE
            )
            node.run(node.buffer.access(txn, access, grant))
            assert len(node.buffer) <= capacity
            # The just-touched page must be resident.
            assert node.buffer.cached_version(page) is not None
            # Commit immediately (single-page transactions).
            node.run(node.buffer.commit_phase1(txn))
            for p, v in txn.modified.items():
                node.ledger.install_commit(p, v)
            node.buffer.finish_commit(txn)
        node.sim.run(until=node.sim.now + 5.0)  # drain write-backs
        stats = node.buffer.partition_stats[0]
        assert stats.hits + stats.misses == stats.accesses == len(ops)

    @given(ops=operations)
    @settings(max_examples=30, deadline=None)
    def test_versions_monotone_per_page(self, ops):
        node = MiniNode(buffer_pages=32, disk_time=0.0001)
        last_version = {}
        txn_id = 0
        for page_no, write in ops:
            txn_id += 1
            txn = make_txn(txn_id)
            page = (0, page_no)
            access = PageAccess(page, write=write)
            txn.accesses.append(access)
            grant = LockGrant(
                node.ledger.committed_version(page), source=PageSource.STORAGE
            )
            node.run(node.buffer.access(txn, access, grant))
            node.run(node.buffer.commit_phase1(txn))
            for p, v in txn.modified.items():
                node.ledger.install_commit(p, v)
            node.buffer.finish_commit(txn)
            version = node.ledger.committed_version(page)
            assert version >= last_version.get(page, 0)
            if write:
                assert version == last_version.get(page, 0) + 1
            last_version[page] = version
