"""Property-based invariants of the fault-injection subsystem.

Each example runs a short full-system simulation -- with or without a
randomly placed node crash -- and checks the invariants that must hold
regardless of where the crash lands:

* **No stale reads.**  The version ledger raises on any read of an
  outdated page version, so a clean run is itself the assertion.
* **Seqno monotonicity.**  Committed page versions sampled over time
  never decrease, crash or no crash (recovery must never roll a page
  back).
* **No dead-transaction lock entries.**  After recovery, no lock table
  holds an entry (granted or queued) for a transaction the crash
  killed; every entry belongs to a live transaction.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.system.cluster import Cluster

from tests.helpers import system_config

couplings = st.sampled_from(["gem", "pcl"])
seeds = st.integers(min_value=0, max_value=2**16)
crash_times = st.floats(min_value=0.3, max_value=1.0)
down_times = st.floats(min_value=0.2, max_value=0.5)
victims = st.integers(min_value=0, max_value=2)


def run_and_check(coupling, seed, faults=None, protocol="2pl"):
    config = system_config(
        num_nodes=3,
        coupling=coupling,
        protocol=protocol,
        arrival_rate_per_node=40.0,
        warmup_time=0.2,
        measure_time=1.2,
        random_seed=seed,
        faults=faults,
    )
    cluster = Cluster(config)
    snapshots = []

    def sampler():
        while True:
            snapshots.append(dict(cluster.ledger._committed))
            yield cluster.sim.timeout(0.15)

    cluster.sim.process(sampler(), name="ledger-sampler")
    # A clean run is the no-stale-reads check: the ledger raises on
    # any coherency violation, the engine on any unhandled failure.
    end = config.warmup_time + config.measure_time
    cluster.sim.run(until=end)
    # Quiesce before checking table invariants: stop the arrivals and
    # drain, so transactions (and their release messages) truncated
    # mid-flight by the cutoff do not read as lock leaks.  Anything a
    # crash genuinely leaked survives the drain.
    cluster.source.stop()
    cluster.sim.run(until=end + 1.0)

    # Seqno monotonicity across snapshots.
    for before, after in zip(snapshots, snapshots[1:]):
        for page, version in before.items():
            assert after.get(page, 0) >= version, page

    # Lock tables reference only live transactions.
    killed = set()
    if cluster.faults is not None:
        killed = {
            txn.txn_id
            for record in cluster.faults.records
            for txn in record.killed
        }
    active = set()
    for node in cluster.nodes:
        active.update(node.tm.active)
    for table in cluster.protocol.lock_tables():
        for page, entry in table._entries.items():
            for txn_id in entry.holders:
                assert txn_id not in killed, (page, txn_id)
                assert txn_id in active, (page, txn_id)
            for request in entry.queue:
                assert request.txn not in killed, (page, request.txn)
                assert request.txn in active, (page, request.txn)
    return cluster


class TestFaultInvariants:
    @given(coupling=couplings, seed=seeds)
    @settings(max_examples=4, deadline=None)
    def test_invariants_hold_without_crashes(self, coupling, seed):
        cluster = run_and_check(coupling, seed)
        assert cluster.faults is None

    @given(
        coupling=couplings,
        seed=seeds,
        node=victims,
        crash_time=crash_times,
        down_time=down_times,
    )
    @settings(max_examples=8, deadline=None)
    def test_invariants_hold_under_crash(
        self, coupling, seed, node, crash_time, down_time
    ):
        faults = {
            "crashes": [
                {"node": node, "time": crash_time, "down_time": down_time}
            ]
        }
        cluster = run_and_check(coupling, seed, faults=faults)
        assert cluster.faults.crashes == 1


class TestModernProtocolCrashCycles:
    """MVCC and DGCC through scripted crash -> recover -> reintegrate.

    The same invariants as for 2PL: a clean run is the no-stale-reads
    check, sampled committed versions never regress, and post-recovery
    protocol state references no dead transaction.
    """

    @given(
        coupling=couplings,
        seed=seeds,
        node=victims,
        crash_time=crash_times,
        down_time=down_times,
    )
    @settings(max_examples=6, deadline=None)
    def test_mvcc_crash_cycle(self, coupling, seed, node, crash_time, down_time):
        faults = {
            "crashes": [
                {"node": node, "time": crash_time, "down_time": down_time}
            ]
        }
        cluster = run_and_check(coupling, seed, faults=faults, protocol="mvcc")
        assert cluster.faults.crashes == 1
        # No reservation or commit timestamp of a killed transaction
        # may survive recovery.
        killed = {
            txn.txn_id
            for record in cluster.faults.records
            for txn in record.killed
        }
        for page, holder in cluster.protocol._reservations.items():
            assert holder not in killed, (page, holder)
        for txn_id in cluster.protocol._txn_tc:
            assert txn_id not in killed, txn_id

    @given(
        coupling=couplings,
        seed=seeds,
        node=victims,
        crash_time=crash_times,
        down_time=down_times,
    )
    @settings(max_examples=6, deadline=None)
    def test_dgcc_crash_cycle(self, coupling, seed, node, crash_time, down_time):
        faults = {
            "crashes": [
                {"node": node, "time": crash_time, "down_time": down_time}
            ]
        }
        cluster = run_and_check(coupling, seed, faults=faults, protocol="dgcc")
        assert cluster.faults.crashes == 1
        # No batch member of a killed transaction may survive, and no
        # ownership entry may still point at the crashed node's buffer
        # (it either moved on commit elsewhere or was cleared/redone).
        killed = {
            txn.txn_id
            for record in cluster.faults.records
            for txn in record.killed
        }
        for txn_id in cluster.protocol._members:
            assert txn_id not in killed, txn_id
