"""Property-based tests for the lock table's 2PL invariants."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.node.lock_table import LockMode, LockTable

S, X = LockMode.SHARED, LockMode.EXCLUSIVE
PAGES = [(0, 0), (0, 1), (0, 2)]
TXNS = list(range(1, 7))


def noop():
    pass


class LockTableMachine(RuleBasedStateMachine):
    """Random lock/release sequences preserving the 2PL invariants."""

    def __init__(self):
        super().__init__()
        self.table = LockTable()
        self.granted = {}  # (txn, page) -> mode

    @rule(
        txn=st.sampled_from(TXNS),
        page=st.sampled_from(PAGES),
        exclusive=st.booleans(),
    )
    def request(self, txn, page, exclusive):
        if self.table.is_blocked(txn):
            return
        mode = X if exclusive else S

        def on_grant(t=txn, p=page, m=mode):
            self.granted[(t, p)] = m

        if self.table.request(txn, page, mode, on_grant):
            held = self.table.holds(txn, page)
            self.granted[(txn, page)] = held

    @rule(txn=st.sampled_from(TXNS), page=st.sampled_from(PAGES))
    def release(self, txn, page):
        if self.table.is_blocked(txn):
            return
        if self.table.holds(txn, page) is None:
            return
        self.table.release(txn, page)
        self.granted.pop((txn, page), None)

    @rule(txn=st.sampled_from(TXNS))
    def cancel(self, txn):
        page = self.table.blocked_page(txn)
        if page is not None:
            self.table.cancel(txn, page)

    @invariant()
    def no_incompatible_coholders(self):
        for page in PAGES:
            entry = self.table.peek(page)
            if entry is None:
                continue
            modes = list(entry.holders.values())
            if any(m is X for m in modes):
                assert len(modes) == 1, f"X co-held on {page}: {entry.holders}"

    @invariant()
    def blocked_txns_have_queue_entries(self):
        for txn in TXNS:
            page = self.table.blocked_page(txn)
            if page is None:
                continue
            entry = self.table.peek(page)
            assert entry is not None
            assert any(req.txn == txn for req in entry.queue)

    @invariant()
    def no_grantable_head_left_waiting(self):
        """The queue head is only left waiting if actually blocked."""
        for page in PAGES:
            entry = self.table.peek(page)
            if entry is None or not entry.queue:
                continue
            head = entry.queue[0]
            if head.upgrade:
                others = [t for t in entry.holders if t != head.txn]
                assert others, "grantable upgrade left queued"
            elif head.mode is S:
                assert any(
                    m is X for m in entry.holders.values()
                ), "grantable S request left queued"
            else:
                assert entry.holders, "grantable X request left queued"


TestLockTableMachine = LockTableMachine.TestCase
TestLockTableMachine.settings = settings(
    max_examples=60, stateful_step_count=40, deadline=None
)
