"""Unit tests for the experiment harness (scales, tables, drivers)."""

import pytest

from repro.experiments import table41
from repro.experiments.common import (
    ExperimentResult,
    Scale,
    Series,
    format_table,
    sweep,
)
from repro.system.config import SystemConfig
from repro.system.results import RunResult


def fake_result(num_nodes, rt_ms):
    return RunResult(
        num_nodes=num_nodes,
        coupling="gem",
        routing="affinity",
        update_strategy="noforce",
        workload="debit_credit",
        buffer_pages_per_node=200,
        arrival_rate_per_node=100.0,
        measure_time=1.0,
        completed=100,
        mean_response_time=rt_ms / 1000.0,
        mean_response_time_artificial=rt_ms / 1000.0,
        throughput_total=100.0,
        mean_accesses_per_txn=3.0,
        cpu_utilization_per_node=[0.6] * num_nodes,
        gem_utilization=0.01,
        network_utilization=0.0,
        log_disk_utilization_max=0.4,
        disk_utilization_max=0.3,
        hit_ratios={"BRANCH_TELLER": 0.7},
        invalidations_per_txn={"BRANCH_TELLER": 0.0},
        local_lock_share=1.0,
        lock_requests_per_txn=2.0,
        remote_lock_requests_per_txn=0.0,
        mean_lock_wait_time=0.0,
        deadlocks=0,
        aborts=0,
        page_requests_per_txn=0.0,
        mean_page_request_delay=0.0,
        pages_supplied_with_grant_per_txn=0.0,
        messages_short_per_txn=0.0,
        messages_long_per_txn=0.0,
    )


class TestScales:
    def test_quick_and_full_scales(self):
        quick, full = Scale.quick(), Scale.full()
        assert max(quick.node_counts) == 10
        assert list(full.node_counts) == list(range(1, 11))
        assert full.measure_time > quick.measure_time
        assert full.trace_scale == 1.0

    def test_smoke_scale_is_tiny(self):
        smoke = Scale.smoke()
        assert max(smoke.node_counts) <= 2
        assert smoke.measure_time <= 2.0


class TestSeriesAndResult:
    def _result(self):
        series = [
            Series("a", [(1, fake_result(1, 70.0)), (2, fake_result(2, 72.0))]),
            Series("b", [(1, fake_result(1, 90.0)), (2, fake_result(2, 95.0))]),
        ]
        return ExperimentResult("Fig X", "demo", series)

    def test_series_lookup(self):
        result = self._result()
        assert result.series_by_label("b").label == "b"
        with pytest.raises(KeyError):
            result.series_by_label("zzz")

    def test_value_at(self):
        result = self._result()
        assert result.series_by_label("a").value_at(
            2, lambda r: r.response_time_ms
        ) == pytest.approx(72.0)
        with pytest.raises(KeyError):
            result.series_by_label("a").value_at(9, lambda r: 0)

    def test_table_renders_all_series(self):
        table = self._result().table()
        assert "Fig X" in table
        assert "a" in table and "b" in table
        assert "70.0" in table and "95.0" in table

    def test_format_table_alignment(self):
        text = format_table("T", [1, 10], {"col": [1.0, 2.0]})
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "#nodes" in lines[2]
        assert len(lines) == 6


class TestSweep:
    def test_sweep_runs_each_node_count(self):
        calls = []

        def fake_runner(config):
            calls.append(config.num_nodes)
            return fake_result(config.num_nodes, 50.0)

        series = sweep(SystemConfig(), [1, 3], "lbl", runner=fake_runner)
        assert calls == [1, 3]
        assert [n for n, _ in series.points] == [1, 3]


class TestTable41:
    def test_parameter_rows_cover_table(self):
        rows = dict(table41.parameter_rows(SystemConfig()))
        assert "path length" in rows
        assert "250,000" in rows["path length"]
        assert "GEM parameters" in rows
        assert "50 us/page" in rows["GEM parameters"]
        assert "15 ms DB disks" in rows["avg. disk access time"]

    def test_validate_accepts_paper_consistent_result(self):
        result = fake_result(1, 75.0)
        result.hit_ratios = {"BRANCH_TELLER": 0.71, "HISTORY": 0.95}
        checks = table41.validate(result)
        assert all(checks.values()), checks

    def test_validate_flags_wrong_utilization(self):
        result = fake_result(1, 75.0)
        result.hit_ratios = {"BRANCH_TELLER": 0.71, "HISTORY": 0.95}
        result.cpu_utilization_per_node = [0.3]
        checks = table41.validate(result)
        assert not checks["cpu_utilization_at_least_62.5%"]


class TestDriverSmoke:
    def test_fig41_driver_smoke(self):
        from repro.experiments import fig41

        result = fig41.run(Scale.smoke())
        assert len(result.series) == 4
        table = result.table()
        assert "Fig 4.1" in table
        for series in result.series:
            assert len(series.points) == 2
            for _n, run in series.points:
                assert run.completed > 0
