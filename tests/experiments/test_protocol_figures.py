"""The figure drivers honour their ``protocol`` parameter.

fig 4.1, fig 4.5 and fig 4.7 historically hard-wired strict 2PL; each
now accepts ``protocol=...`` like the shootout does.  Passing a flag
that silently falls back to 2PL would be worse than not having it, so
every driver is run once with a non-default protocol through a probing
runner that simulates in-process and keeps the protocol object of each
cluster: the protocol-specific counters (MVCC validations, DGCC
batches) must actually move.
"""

from typing import List

from repro.cc.dgcc import DgccProtocol
from repro.cc.mvcc import MvccProtocol
from repro.experiments import fig41, fig45, fig47, fig_failover
from repro.experiments.common import Scale
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.results import RunResult


class _ProtocolProbeRunner:
    """Duck-types SweepRunner.run_many but simulates in-process so each
    cluster's protocol object can be inspected after its run."""

    def __init__(self):
        self.protocols = []

    def run_many(self, configs: List[SystemConfig], label: str = "") -> List[RunResult]:
        results = []
        for config in configs:
            cluster = Cluster(config)
            cluster.sim.run(until=config.warmup_time)
            cluster.reset_stats()
            cluster.sim.run(until=config.warmup_time + config.measure_time)
            results.append(cluster.collect_results(config.measure_time))
            self.protocols.append(cluster.protocol)
        return results


class TestFig41Protocol:
    def test_mvcc_takes_effect(self):
        runner = _ProtocolProbeRunner()
        result = fig41.run(Scale.smoke(), runner=runner, protocol="mvcc")
        assert runner.protocols, "probe runner saw no simulations"
        for protocol in runner.protocols:
            assert isinstance(protocol, MvccProtocol)
        assert sum(p.commits_validated for p in runner.protocols) > 0
        assert all(s.label.endswith("/mvcc") for s in result.series)


class TestFig45Protocol:
    def test_dgcc_takes_effect(self):
        runner = _ProtocolProbeRunner()
        result = fig45.run(
            Scale.smoke(), buffer_sizes=(200,), runner=runner, protocol="dgcc"
        )
        assert runner.protocols, "probe runner saw no simulations"
        for protocol in runner.protocols:
            assert isinstance(protocol, DgccProtocol)
        assert sum(p.batches for p in runner.protocols) > 0
        assert all(s.label.endswith("/dgcc") for s in result.series)


class TestFig47Protocol:
    def test_mvcc_takes_effect(self):
        runner = _ProtocolProbeRunner()
        result = fig47.run(Scale.smoke(), runner=runner, protocol="mvcc")
        assert runner.protocols, "probe runner saw no simulations"
        for protocol in runner.protocols:
            assert isinstance(protocol, MvccProtocol)
        assert sum(p.commits_validated for p in runner.protocols) > 0
        assert all(s.label.endswith("/mvcc") for s in result.series)


class TestFig41DefaultLabelsUnchanged:
    def test_default_protocol_keeps_legacy_labels(self):
        # The 2PL default must not grow a suffix: the equivalence
        # goldens freeze the rendered tables byte-for-byte.
        runner = _ProtocolProbeRunner()
        result = fig41.run(Scale.smoke(), runner=runner)
        assert [s.label for s in result.series] == [
            "affinity/NOFORCE", "affinity/FORCE",
            "random/NOFORCE", "random/FORCE",
        ]


class TestFailoverProtocol:
    def test_failover_runs_mvcc_across_all_regimes(self):
        result = fig_failover.run(
            Scale.smoke(), couplings=("gem", "rdma"), protocol="mvcc"
        )
        assert [p.label for p in result.points] == ["GEM", "RDMA"]
        for point in result.points:
            assert point.result.crashes == 1
            assert point.result.mean_failover_seconds > 0
