"""Smoke test for the run-everything driver."""

import os

from repro.experiments.common import Scale
from repro.experiments.run_all import FIGURES, main, run_all


class TestRunAll:
    def test_smoke_scale_writes_all_tables(self, tmp_path):
        outdir = str(tmp_path / "out")
        smoke = Scale.smoke()
        # Restrict to the two fastest figures for the smoke test; the
        # full list is exercised figure-by-figure in the benchmarks.
        import repro.experiments.run_all as run_all_module

        original = run_all_module.FIGURES
        run_all_module.FIGURES = [f for f in original if f[0] in ("fig41",)]
        try:
            run_all(smoke, outdir)
        finally:
            run_all_module.FIGURES = original
        assert os.path.exists(os.path.join(outdir, "table41.txt"))
        assert os.path.exists(os.path.join(outdir, "fig41.txt"))
        with open(os.path.join(outdir, "fig41.txt")) as fh:
            assert "Fig 4.1" in fh.read()

    def test_unknown_scale_rejected(self):
        assert main(["run_all", "bogus"]) == 2

    def test_figures_registry_complete(self):
        names = [name for name, _module in FIGURES]
        assert names == (
            [f"fig4{i}" for i in range(1, 8)]
            + ["fig_failover", "fig_shootout", "fig_regimes"]
        )
