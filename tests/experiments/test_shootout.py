"""Integration tests of the protocol-shootout experiment.

One smoke-sized run of the full grid (GEM/PCL x 2PL/MVCC/DGCC), then
the accounting invariant the decomposition promises: the per-phase
breakdown columns sum exactly to the mean response time -- the
``other`` phase absorbs any unattributed remainder, so a protocol
whose spans leak or double-count shows up as a broken sum.
"""

import math

import pytest

from repro.experiments import fig_shootout
from repro.experiments.common import Scale


@pytest.fixture(scope="module")
def result():
    return fig_shootout.run(Scale.smoke())


class TestShootout:
    def test_all_six_series_present(self, result):
        labels = [series.label for series in result.series]
        assert labels == [
            "gem/2pl", "gem/mvcc", "gem/dgcc",
            "pcl/2pl", "pcl/mvcc", "pcl/dgcc",
        ]
        for series in result.series:
            assert [n for n, _r in series.points] == [1, 2]

    def test_breakdown_sums_to_mean_response_time(self, result):
        for series in result.series:
            for _n, run in series.points:
                assert run.breakdown is not None, series.label
                total = math.fsum(run.breakdown.values())
                assert total == pytest.approx(
                    run.mean_response_time, rel=1e-9, abs=1e-12
                ), series.label

    def test_breakdown_table_renders_every_series(self, result):
        table = result.breakdown_table()
        for series in result.series:
            assert series.label in table

    def test_protocols_actually_differ(self, result):
        # DGCC's epoch admission delay must be visible: its response
        # time strictly exceeds 2PL's in the same regime.
        for coupling in ("gem", "pcl"):
            rt = {
                protocol: result.series_by_label(
                    f"{coupling}/{protocol}"
                ).points[-1][1].mean_response_time
                for protocol in ("2pl", "dgcc")
            }
            assert rt["dgcc"] > rt["2pl"], coupling

    def test_mvcc_aborts_by_validation_not_deadlock(self, result):
        for coupling in ("gem", "pcl"):
            run = result.series_by_label(f"{coupling}/mvcc").points[-1][1]
            assert run.deadlocks == 0
