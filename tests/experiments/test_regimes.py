"""Integration tests of the three-regime comparison experiment.

One smoke-sized run of the full grid (GEM/PCL/RDMA x 2PL/MVCC/DGCC
plus a trace row per regime), then the invariants the new regime
promises: the decomposition still partitions the mean response time
exactly, the ``rdma`` phase appears only under the RDMA coupling, and
the tables are bit-identical at any worker count.
"""

import math

import pytest

from repro.experiments import fig_regimes
from repro.experiments.common import Scale
from repro.obs import phases


@pytest.fixture(scope="module")
def result():
    return fig_regimes.run(Scale.smoke())


class TestRegimesGrid:
    def test_all_series_present(self, result):
        labels = [series.label for series in result.series]
        assert labels == [
            "gem/2pl", "gem/mvcc", "gem/dgcc",
            "pcl/2pl", "pcl/mvcc", "pcl/dgcc",
            "rdma/2pl", "rdma/mvcc", "rdma/dgcc",
            "gem/trace", "pcl/trace", "rdma/trace",
        ]
        for series in result.series:
            assert [n for n, _r in series.points] == [1, 2]

    def test_breakdown_sums_to_mean_response_time(self, result):
        for series in result.series:
            for _n, run in series.points:
                assert run.breakdown is not None, series.label
                assert math.isclose(
                    math.fsum(run.breakdown.values()),
                    run.mean_response_time,
                    rel_tol=1e-9,
                ), series.label

    def test_rdma_phase_only_under_rdma_coupling(self, result):
        for series in result.series:
            for _n, run in series.points:
                rdma_seconds = run.breakdown.get(phases.RDMA, 0.0)
                if series.label.startswith("rdma/"):
                    assert rdma_seconds > 0.0, series.label
                else:
                    assert rdma_seconds == 0.0, series.label

    def test_gem_phase_empty_under_rdma(self, result):
        for series in result.series:
            if not series.label.startswith("rdma/"):
                continue
            for _n, run in series.points:
                assert run.breakdown.get(phases.GEM, 0.0) == 0.0, series.label
                assert run.gem_utilization == 0.0

    def test_rdma_tracks_gem_under_affinity(self, result):
        # The cost models differ but both are CPU-synchronous
        # microsecond-scale accesses: at this scale RDMA must land in
        # the same response-time regime as GEM, not PCL-random's.
        for protocol in ("2pl", "mvcc"):
            gem = result.series_by_label(f"gem/{protocol}").points[-1][1]
            rdma = result.series_by_label(f"rdma/{protocol}").points[-1][1]
            assert rdma.mean_response_time == pytest.approx(
                gem.mean_response_time, rel=0.25
            ), protocol

    def test_breakdown_table_renders_every_series(self, result):
        table = result.breakdown_table()
        for series in result.series:
            assert series.label in table
        assert phases.RDMA in table


class TestRegimesDeterminism:
    def test_tables_identical_across_worker_counts(self):
        from repro.system.parallel import SweepRunner

        scale = Scale.smoke()
        with SweepRunner(jobs=1) as serial:
            a = fig_regimes.run(
                scale, protocols=("2pl",), include_trace=False, runner=serial
            )
        with SweepRunner(jobs=4) as pool:
            b = fig_regimes.run(
                scale, protocols=("2pl",), include_trace=False, runner=pool
            )
        assert a.table() == b.table()
        assert a.breakdown_table() == b.breakdown_table()
