"""Smoke tests: every example script runs and produces sane output."""

import os
import subprocess
import sys

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, *args, timeout=240):
    result = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "mean response time" in out
        assert "GEM utilization" in out

    def test_debit_credit_scaling(self):
        out = run_example(
            "debit_credit_scaling.py", "--nodes", "1", "2", "--measure", "2.0"
        )
        assert "affinity" in out and "random" in out
        assert "B/T hit" in out

    def test_coupling_comparison(self):
        out = run_example(
            "coupling_comparison.py", "--nodes", "2", "--routing", "random"
        )
        assert "close coupling (GEM locking)" in out
        assert "loose coupling (primary copy locking)" in out
        assert "messages per txn" in out

    def test_trace_study(self):
        out = run_example("trace_study.py", "--nodes", "2", "--scale", "0.04",
                          "--measure", "2.0")
        assert "synthetic trace" in out
        assert "gem/affinity" in out
        assert "pcl/random" in out

    def test_storage_allocation(self):
        out = run_example(
            "storage_allocation.py", "--nodes", "2", "--measure", "2.0"
        )
        assert "GEM resident" in out
        assert "non-volatile disk cache" in out

    def test_custom_workload(self):
        out = run_example(
            "custom_workload.py", "--nodes", "2", "--measure", "2.0"
        )
        assert "gem" in out and "pcl" in out
        assert "order-entry workload" in out
