"""Unit tests for the disaggregated-memory coupling machinery.

Exercises :class:`~repro.node.rdma.RdmaAccessHelper` (pool residency,
verb accounting, cache invalidation, lease arithmetic) and
:class:`~repro.node.rdma.RdmaLockingProtocol` (grants, pool-backed
NOFORCE page transfer, idempotent abort release) against a quiesced
RDMA cluster, with transactions driven by hand.
"""

import pytest

from repro.cc.base import PageSource
from repro.node.rdma import RdmaAccessHelper

from tests.helpers import drive_cluster, make_rdma_cluster, make_txn, quiesced_cluster

PAGE = (0, 7)


@pytest.fixture
def cluster():
    return make_rdma_cluster()


class TestHelperConstruction:
    def test_requires_rdma_coupling(self):
        gem_cluster = quiesced_cluster()
        with pytest.raises(ValueError):
            RdmaAccessHelper(gem_cluster)

    def test_cluster_builds_fabric_and_protocol(self, cluster):
        assert cluster.rdma is not None
        assert cluster.protocol.name == "rdma"
        assert cluster.protocol.rdma.pool == {}

    def test_gem_cluster_has_no_fabric(self):
        assert quiesced_cluster().rdma is None


class TestPoolResidency:
    def test_install_records_residency_and_charges_writes(self, cluster):
        helper = cluster.protocol.rdma
        drive_cluster(cluster, helper.install(0, [(PAGE, 3)]))
        assert helper.pool == {PAGE: 3}
        assert cluster.rdma.page_writes == 1

    def test_install_keeps_newer_resident_version(self, cluster):
        helper = cluster.protocol.rdma
        drive_cluster(cluster, helper.install(0, [(PAGE, 5)]))
        drive_cluster(cluster, helper.install(1, [(PAGE, 4)]))
        assert helper.pool == {PAGE: 5}

    def test_current_respects_seqno(self, cluster):
        helper = cluster.protocol.rdma
        drive_cluster(cluster, helper.install(0, [(PAGE, 2)]))
        assert helper.current(PAGE, 2)
        assert helper.current(PAGE, 1)
        assert not helper.current(PAGE, 3)
        assert not helper.current((0, 8), 1)

    def test_written_back_drops_exact_version_only(self, cluster):
        helper = cluster.protocol.rdma
        drive_cluster(cluster, helper.install(0, [(PAGE, 2)]))
        helper.written_back(PAGE, 1)
        assert helper.pool == {PAGE: 2}
        helper.written_back(PAGE, 2)
        assert helper.pool == {}

    def test_fetch_returns_resident_version(self, cluster):
        helper = cluster.protocol.rdma
        drive_cluster(cluster, helper.install(0, [(PAGE, 2)]))
        txn = make_txn(1, node=1)
        version = drive_cluster(cluster, helper.fetch(txn, PAGE, 2))
        assert version == 2
        assert cluster.rdma.page_reads == 1

    def test_fetch_misses_after_write_back(self, cluster):
        helper = cluster.protocol.rdma
        drive_cluster(cluster, helper.install(0, [(PAGE, 2)]))
        helper.written_back(PAGE, 2)
        txn = make_txn(1, node=1)
        version = drive_cluster(cluster, helper.fetch(txn, PAGE, 2))
        assert version is None


class TestCacheInvalidation:
    def test_install_drops_other_nodes_stale_frames(self, cluster):
        helper = cluster.protocol.rdma
        for node in cluster.nodes:
            drive_cluster(
                cluster, node.buffer.insert_received_page(PAGE, 1, dirty=False)
            )
        drive_cluster(cluster, helper.install(0, [(PAGE, 2)]))
        # Installer keeps its (current) copy; node 1's stale frame dies.
        assert cluster.nodes[0].buffer.cached_version(PAGE) == 1
        assert cluster.nodes[1].buffer.cached_version(PAGE) is None


class TestLockingProtocol:
    def test_immediate_grant_costs_one_cas(self, cluster):
        protocol = cluster.protocol
        txn = make_txn(1, node=0)
        grant = drive_cluster(cluster, protocol.acquire(txn, PAGE, True, None))
        assert grant.source is PageSource.STORAGE
        assert txn.held_locks == {PAGE: True}
        assert cluster.rdma.cas_ops == 1

    def test_grant_is_pool_backed_after_commit(self, cluster):
        protocol = cluster.protocol
        writer = make_txn(1, node=0)
        drive_cluster(cluster, protocol.acquire(writer, PAGE, True, None))
        writer.modified[PAGE] = 1
        drive_cluster(cluster, protocol.commit_release(writer))
        assert protocol.rdma.pool == {PAGE: 1}
        reader = make_txn(2, node=1)
        grant = drive_cluster(cluster, protocol.acquire(reader, PAGE, False, None))
        assert grant.source is PageSource.OWNER
        assert grant.seqno == 1
        version = drive_cluster(
            cluster, protocol.request_page_from_owner(reader, PAGE, grant)
        )
        assert version == 1

    def test_conflicting_acquire_waits_for_release(self, cluster):
        protocol = cluster.protocol
        holder = make_txn(1, node=0)
        drive_cluster(cluster, protocol.acquire(holder, PAGE, True, None))
        arrived = []

        def contender():
            txn = make_txn(2, node=1)
            grant = yield from protocol.acquire(txn, PAGE, True, None)
            arrived.append(grant)

        cluster.sim.process(contender())
        cluster.sim.run(until=cluster.sim.now + 0.01)
        assert not arrived
        assert protocol.plt.num_blocked() == 1
        drive_cluster(cluster, protocol.commit_release(holder))
        cluster.sim.run(until=cluster.sim.now + 0.01)
        assert len(arrived) == 1
        assert protocol.lock_wait_time.count == 1

    def test_abort_release_is_idempotent(self, cluster):
        protocol = cluster.protocol
        txn = make_txn(1, node=0)
        drive_cluster(cluster, protocol.acquire(txn, PAGE, True, None))
        drive_cluster(cluster, protocol.abort_release(txn))
        assert protocol.plt.holds(1, PAGE) is None
        assert txn.held_locks == {}
        # Second call must be a no-op, not a double release.
        drive_cluster(cluster, protocol.abort_release(txn))
        assert protocol.plt.holds(1, PAGE) is None

    def test_lock_stats_shape(self, cluster):
        protocol = cluster.protocol
        txn = make_txn(1, node=0)
        drive_cluster(cluster, protocol.acquire(txn, PAGE, False, None))
        stats = protocol.lock_stats()
        assert stats["local_share"] == 1.0
        assert stats["remote_lock_requests"] == 0.0
        assert stats["lock_requests"] == 1.0
        protocol.reset_stats()
        assert protocol.lock_stats()["lock_requests"] == 0.0


class TestLease:
    def test_lease_wait_sits_out_remaining_lease(self, cluster):
        class _Record:
            crash_time = 0.0

        helper = cluster.protocol.rdma
        done = []

        def proc():
            yield from helper.lease_wait(_Record())
            done.append(cluster.sim.now)

        cluster.sim.process(proc())
        cluster.sim.run(
            until=cluster.config.rdma_lock_lease_seconds + 0.001
        )
        assert done == [pytest.approx(cluster.config.rdma_lock_lease_seconds)]
