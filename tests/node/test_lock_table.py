"""Unit tests for the strict 2PL lock table."""

import pytest

from repro.node.lock_table import LockMode, LockTable

S = LockMode.SHARED
X = LockMode.EXCLUSIVE
PAGE = (0, 1)


def noop():
    pass


@pytest.fixture
def table():
    return LockTable("t")


class TestBasicGrants:
    def test_first_request_granted(self, table):
        assert table.request(1, PAGE, X, noop)
        assert table.holds(1, PAGE) is X

    def test_shared_locks_compatible(self, table):
        assert table.request(1, PAGE, S, noop)
        assert table.request(2, PAGE, S, noop)
        assert table.holds(2, PAGE) is S

    def test_exclusive_blocks_shared(self, table):
        assert table.request(1, PAGE, X, noop)
        assert not table.request(2, PAGE, S, noop)
        assert table.is_blocked(2)

    def test_shared_blocks_exclusive(self, table):
        assert table.request(1, PAGE, S, noop)
        assert not table.request(2, PAGE, X, noop)

    def test_rerequest_same_mode_granted(self, table):
        assert table.request(1, PAGE, X, noop)
        assert table.request(1, PAGE, X, noop)

    def test_shared_rerequest_under_exclusive_granted(self, table):
        assert table.request(1, PAGE, X, noop)
        assert table.request(1, PAGE, S, noop)
        assert table.holds(1, PAGE) is X  # X covers S

    def test_independent_pages(self, table):
        assert table.request(1, PAGE, X, noop)
        assert table.request(2, (0, 2), X, noop)


class TestReleaseAndQueue:
    def test_release_grants_next_waiter(self, table):
        granted = []
        table.request(1, PAGE, X, noop)
        table.request(2, PAGE, X, lambda: granted.append(2))
        result = table.release(1, PAGE)
        assert granted == [2]
        assert result == [(2, X)]
        assert table.holds(2, PAGE) is X

    def test_fifo_order(self, table):
        granted = []
        table.request(1, PAGE, X, noop)
        table.request(2, PAGE, X, lambda: granted.append(2))
        table.request(3, PAGE, X, lambda: granted.append(3))
        table.release(1, PAGE)
        assert granted == [2]
        table.release(2, PAGE)
        assert granted == [2, 3]

    def test_batch_grant_of_compatible_readers(self, table):
        granted = []
        table.request(1, PAGE, X, noop)
        table.request(2, PAGE, S, lambda: granted.append(2))
        table.request(3, PAGE, S, lambda: granted.append(3))
        table.release(1, PAGE)
        assert granted == [2, 3]

    def test_reader_batch_stops_at_writer(self, table):
        granted = []
        table.request(1, PAGE, X, noop)
        table.request(2, PAGE, S, lambda: granted.append(2))
        table.request(3, PAGE, X, lambda: granted.append(3))
        table.request(4, PAGE, S, lambda: granted.append(4))
        table.release(1, PAGE)
        assert granted == [2]  # X of 3 blocks 4 (FIFO fairness)

    def test_release_unheld_lock_raises(self, table):
        with pytest.raises(KeyError):
            table.release(1, PAGE)

    def test_release_all(self, table):
        table.request(1, PAGE, X, noop)
        table.request(1, (0, 2), S, noop)
        table.release_all(1, [PAGE, (0, 2)])
        assert table.holds(1, PAGE) is None
        assert table.holds(1, (0, 2)) is None


class TestUpgrades:
    def test_sole_holder_upgrades_immediately(self, table):
        table.request(1, PAGE, S, noop)
        assert table.request(1, PAGE, X, noop)
        assert table.holds(1, PAGE) is X

    def test_upgrade_waits_for_other_readers(self, table):
        granted = []
        table.request(1, PAGE, S, noop)
        table.request(2, PAGE, S, noop)
        assert not table.request(1, PAGE, X, lambda: granted.append(1))
        table.release(2, PAGE)
        assert granted == [1]
        assert table.holds(1, PAGE) is X

    def test_upgrade_jumps_queue(self, table):
        granted = []
        table.request(1, PAGE, S, noop)
        table.request(2, PAGE, S, noop)
        table.request(3, PAGE, X, lambda: granted.append(3))
        assert not table.request(1, PAGE, X, lambda: granted.append(1))
        table.release(2, PAGE)
        # Upgrader 1 is served before queued writer 3.
        assert granted == [1]
        table.release(1, PAGE)
        assert granted == [1, 3]

    def test_two_upgraders_deadlock_shape(self, table):
        # Both hold S and queue for X: neither can be granted -- the
        # wait graph shows the mutual block for the deadlock detector.
        table.request(1, PAGE, S, noop)
        table.request(2, PAGE, S, noop)
        assert not table.request(1, PAGE, X, noop)
        assert not table.request(2, PAGE, X, noop)
        assert 2 in table.waiting_for(1)
        assert 1 in table.waiting_for(2)


class TestCancel:
    def test_cancel_removes_queued_request(self, table):
        table.request(1, PAGE, X, noop)
        table.request(2, PAGE, X, noop)
        table.cancel(2, PAGE)
        assert not table.is_blocked(2)
        granted = table.release(1, PAGE)
        assert granted == []

    def test_cancel_promotes_next(self, table):
        granted = []
        table.request(1, PAGE, S, noop)
        table.request(2, PAGE, X, noop)
        table.request(3, PAGE, S, lambda: granted.append(3))
        table.cancel(2, PAGE)
        # With the writer gone, the queued reader joins holder 1.
        assert granted == [3]

    def test_cancel_missing_request_is_noop(self, table):
        assert table.cancel(1, PAGE) == []


class TestWaitsFor:
    def test_waiter_blocked_by_holder(self, table):
        table.request(1, PAGE, X, noop)
        table.request(2, PAGE, S, noop)
        assert table.waiting_for(2) == {1}

    def test_waiter_blocked_by_queued_ahead(self, table):
        table.request(1, PAGE, S, noop)
        table.request(2, PAGE, X, noop)
        table.request(3, PAGE, S, noop)
        # 3 waits for the queued writer 2 directly; the edge to holder
        # 1 is transitive (2 waits for 1), which suffices for cycle
        # detection.
        assert table.waiting_for(3) == {2}
        assert table.waiting_for(2) == {1}

    def test_reader_not_blocked_by_reader_ahead(self, table):
        table.request(1, PAGE, X, noop)
        table.request(2, PAGE, S, noop)
        table.request(3, PAGE, S, noop)
        assert table.waiting_for(3) == {1}

    def test_unblocked_txn_waits_for_nothing(self, table):
        table.request(1, PAGE, X, noop)
        assert table.waiting_for(1) == set()

    def test_blocked_page(self, table):
        table.request(1, PAGE, X, noop)
        table.request(2, PAGE, X, noop)
        assert table.blocked_page(2) == PAGE
        assert table.blocked_page(1) is None


class TestMetadataAndInvariants:
    def test_entry_metadata_persists_after_release(self, table):
        table.request(1, PAGE, X, noop)
        entry = table.entry(PAGE)
        entry.seqno = 5
        entry.owner = 3
        table.release(1, PAGE)
        entry = table.entry(PAGE)
        assert entry.seqno == 5
        assert entry.owner == 3

    def test_double_block_rejected(self, table):
        table.request(1, PAGE, X, noop)
        table.request(2, PAGE, X, noop)
        with pytest.raises(RuntimeError):
            table.request(2, (0, 9), X, noop)

    def test_statistics(self, table):
        table.request(1, PAGE, X, noop)
        table.request(2, PAGE, X, noop)
        assert table.requests == 2
        assert table.immediate_grants == 1
        assert table.waits == 1

    def test_held_pages(self, table):
        table.request(1, PAGE, X, noop)
        table.request(1, (0, 2), S, noop)
        assert sorted(table.held_pages(1)) == [(0, 1), (0, 2)]

    def test_no_incompatible_coholders_ever(self, table):
        # Exercise a random-ish interleaving and assert the core 2PL
        # invariant after every step.
        import random

        rng = random.Random(7)
        held = {}

        def check():
            entry = table.peek(PAGE)
            if entry is None:
                return
            modes = list(entry.holders.values())
            if any(m is X for m in modes):
                assert len(modes) == 1

        for step in range(300):
            txn = rng.randint(1, 5)
            if table.is_blocked(txn):
                continue
            if table.holds(txn, PAGE) and rng.random() < 0.5:
                table.release(txn, PAGE)
            else:
                mode = X if rng.random() < 0.3 else S
                table.request(txn, PAGE, mode, noop)
            check()
