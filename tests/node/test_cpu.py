"""Unit tests for the CPU pool."""

import pytest

from repro.node.cpu import CpuPool
from repro.sim import Simulator, StreamRegistry


@pytest.fixture
def sim():
    return Simulator()


def make_pool(sim, cpus=4, mips=10.0):
    return CpuPool(sim, cpus, mips, StreamRegistry(1).stream("cpu"))


class TestConsume:
    def test_service_time_conversion(self, sim):
        pool = make_pool(sim, cpus=1, mips=10.0)
        done = []

        def proc():
            yield from pool.consume(250_000)
            done.append(sim.now)

        sim.process(proc())
        sim.run()
        assert done == [pytest.approx(0.025)]  # 250k instr at 10 MIPS

    def test_zero_instructions_noop(self, sim):
        pool = make_pool(sim)

        def proc():
            yield from pool.consume(0)
            yield sim.timeout(0)

        sim.process(proc())
        sim.run()
        assert sim.now == 0.0

    def test_negative_instructions_rejected(self, sim):
        pool = make_pool(sim)
        with pytest.raises(ValueError):
            list(pool.consume(-1))

    def test_parallel_service_on_multiple_cpus(self, sim):
        pool = make_pool(sim, cpus=2, mips=10.0)
        done = []

        def proc():
            yield from pool.consume(100_000)
            done.append(sim.now)

        for _ in range(4):
            sim.process(proc())
        sim.run()
        assert done == [
            pytest.approx(0.01),
            pytest.approx(0.01),
            pytest.approx(0.02),
            pytest.approx(0.02),
        ]

    def test_exponential_consume_mean(self, sim):
        pool = make_pool(sim, cpus=1000, mips=10.0)
        done = []

        def proc():
            yield from pool.consume_exp(10_000)
            done.append(sim.now)

        for _ in range(800):
            sim.process(proc())
        sim.run()
        mean = sum(done) / len(done)
        assert mean == pytest.approx(0.001, rel=0.15)

    def test_instruction_accounting(self, sim):
        pool = make_pool(sim)

        def proc():
            yield from pool.consume(5000)

        sim.process(proc())
        sim.run()
        assert pool.instructions_executed == 5000


class TestCompoundHold:
    def test_busy_work_requires_held_cpu(self, sim):
        pool = make_pool(sim, cpus=1, mips=10.0)
        log = []

        def holder():
            yield pool.request()
            try:
                yield pool.busy_work(10_000)  # 1ms while holding
                yield sim.timeout(0.005)  # synchronous device access
            finally:
                pool.release()
            log.append(("holder", sim.now))

        def other():
            yield from pool.consume(10_000)
            log.append(("other", sim.now))

        sim.process(holder())
        sim.process(other())
        sim.run()
        # The holder keeps the only CPU for 6ms; other runs after.
        assert log[0] == ("holder", pytest.approx(0.006))
        assert log[1] == ("other", pytest.approx(0.007))

    def test_utilization(self, sim):
        pool = make_pool(sim, cpus=2, mips=10.0)

        def proc():
            yield from pool.consume(100_000)  # 10ms

        sim.process(proc())
        sim.run()
        sim.run(until=0.02)
        assert pool.utilization() == pytest.approx(0.25)

    def test_invalid_construction(self, sim):
        with pytest.raises(ValueError):
            CpuPool(sim, 0, 10.0, StreamRegistry(1).stream("x"))
        with pytest.raises(ValueError):
            CpuPool(sim, 1, 0.0, StreamRegistry(1).stream("x"))
