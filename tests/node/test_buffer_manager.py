"""Unit tests for the buffer manager (LRU, invalidation, FORCE/NOFORCE)."""

import pytest

from repro.cc.base import LockGrant, PageSource
from repro.db.pages import CoherencyError
from repro.errors import BufferFullError

from tests.helpers import MiniNode, make_txn, read_access, write_access


def grant_for(node, page, seqno=None):
    if seqno is None:
        seqno = node.ledger.committed_version(page)
    return LockGrant(seqno, source=PageSource.STORAGE)


def do_access(node, txn, access, grant=None):
    if grant is None and access.lockable:
        grant = grant_for(node, access.page)
    if access not in txn.accesses:
        txn.accesses.append(access)  # keep txn.is_update consistent
    return node.run(node.buffer.access(txn, access, grant))


def commit(node, txn):
    node.run(node.buffer.commit_phase1(txn))
    for page, version in txn.modified.items():
        node.ledger.install_commit(page, version)
    node.buffer.finish_commit(txn)


class TestHitsAndMisses:
    def test_miss_then_hit(self):
        node = MiniNode()
        txn1, txn2 = make_txn(1), make_txn(2)
        do_access(node, txn1, read_access((0, 5)))
        do_access(node, txn2, read_access((0, 5)))
        stats = node.buffer.partition_stats[0]
        assert stats.misses == 1
        assert stats.hits == 1
        assert node.data_disks.reads == 1

    def test_repeat_access_same_txn_not_counted(self):
        node = MiniNode()
        txn = make_txn()
        do_access(node, txn, read_access((0, 5)))
        do_access(node, txn, read_access((0, 5)))
        stats = node.buffer.partition_stats[0]
        assert stats.accesses == 1
        assert stats.hits + stats.misses == 1

    def test_miss_costs_disk_time(self):
        node = MiniNode()
        txn = make_txn()
        start = node.sim.now
        do_access(node, txn, read_access((0, 5)))
        assert node.sim.now - start > 0.01  # disk path

    def test_cached_version_reporting(self):
        node = MiniNode()
        txn = make_txn()
        assert node.buffer.cached_version((0, 5)) is None
        do_access(node, txn, read_access((0, 5)))
        assert node.buffer.cached_version((0, 5)) == 0


class TestWritesAndVersions:
    def test_write_advances_version_and_pins(self):
        node = MiniNode()
        txn = make_txn()
        do_access(node, txn, write_access((0, 5)))
        assert txn.modified[(0, 5)] == 1
        assert node.buffer.cached_version((0, 5)) == 1

    def test_second_write_same_txn_does_not_advance(self):
        node = MiniNode()
        txn = make_txn()
        do_access(node, txn, write_access((0, 5)))
        do_access(node, txn, write_access((0, 5)))
        assert txn.modified[(0, 5)] == 1

    def test_sequence_of_committed_writers(self):
        node = MiniNode()
        for i in range(1, 4):
            txn = make_txn(i)
            do_access(node, txn, write_access((0, 5)),
                      grant_for(node, (0, 5)))
            commit(node, txn)
        assert node.ledger.committed_version((0, 5)) == 3

    def test_stale_cached_copy_detected_as_invalidation(self):
        node = MiniNode()
        txn1 = make_txn(1)
        do_access(node, txn1, read_access((0, 5)))
        # Simulate a remote commit: committed version moves to 1 and
        # storage is updated.
        node.ledger.install_commit((0, 5), 1)
        node.ledger.write_storage((0, 5), 1)
        txn2 = make_txn(2)
        do_access(node, txn2, read_access((0, 5)), LockGrant(1))
        stats = node.buffer.partition_stats[0]
        assert stats.invalidations == 1
        assert node.buffer.cached_version((0, 5)) == 1

    def test_newer_than_promised_raises(self):
        node = MiniNode()
        txn1 = make_txn(1)
        do_access(node, txn1, write_access((0, 5)))
        commit(node, txn1)
        txn2 = make_txn(2)
        with pytest.raises(CoherencyError):
            do_access(node, txn2, read_access((0, 5)), LockGrant(0))

    def test_stale_storage_read_raises(self):
        node = MiniNode()
        txn = make_txn()
        # CC promises version 1 but storage was never written.
        with pytest.raises(CoherencyError):
            do_access(node, txn, read_access((0, 5)), LockGrant(1))


class TestEviction:
    def test_lru_eviction_of_clean_pages(self):
        node = MiniNode(buffer_pages=3)
        txn = make_txn()
        for page_no in range(4):
            do_access(node, txn, read_access((0, page_no)))
        assert node.buffer.cached_version((0, 0)) is None  # LRU evicted
        assert len(node.buffer) == 3

    def test_pinned_pages_survive_eviction(self):
        node = MiniNode(buffer_pages=3)
        writer = make_txn(1)
        do_access(node, writer, write_access((0, 99)))  # pinned dirty
        reader = make_txn(2)
        for page_no in range(5):
            do_access(node, reader, read_access((0, page_no)))
        assert node.buffer.cached_version((0, 99)) == 1

    def test_dirty_eviction_writes_back_and_notifies(self):
        node = MiniNode(buffer_pages=3)
        writer = make_txn(1)
        do_access(node, writer, write_access((0, 99)))
        commit(node, writer)  # unpinned committed dirty page
        reader = make_txn(2)
        for page_no in range(6):
            do_access(node, reader, read_access((0, page_no)))
        node.sim.run()  # let the write-back daemon finish
        assert node.ledger.storage_version((0, 99)) == 1
        assert node.protocol.written_back  # ownership hook fired

    def test_protected_frames_survive_capacity_eviction(self):
        node = MiniNode(buffer_pages=3)
        txn = make_txn(1)
        do_access(node, txn, read_access((0, 99)))
        assert node.buffer.protect((0, 99))
        reader = make_txn(2)
        for page_no in range(5):
            do_access(node, reader, read_access((0, page_no)))
        assert node.buffer.cached_version((0, 99)) == 0
        node.buffer.unprotect((0, 99))

    def test_protect_missing_page_returns_false(self):
        node = MiniNode()
        assert not node.buffer.protect((0, 1))

    def test_buffer_full_raises(self):
        node = MiniNode(buffer_pages=2)
        w1, w2 = make_txn(1), make_txn(2)
        do_access(node, w1, write_access((0, 1)))
        do_access(node, w2, write_access((0, 2)))
        w3 = make_txn(3)
        with pytest.raises(BufferFullError):
            do_access(node, w3, write_access((0, 3)))


class TestCommitAndRollback:
    def test_noforce_commit_leaves_page_dirty(self):
        node = MiniNode(force=False)
        txn = make_txn()
        do_access(node, txn, write_access((0, 5)))
        commit(node, txn)
        # NOFORCE: storage not updated at commit.
        assert node.ledger.storage_version((0, 5)) == 0
        assert node.data_disks.writes == 0

    def test_force_commit_writes_all_modified_pages(self):
        node = MiniNode(force=True)
        txn = make_txn()
        do_access(node, txn, write_access((0, 5)))
        do_access(node, txn, write_access((0, 6)))
        commit(node, txn)
        assert node.ledger.storage_version((0, 5)) == 1
        assert node.ledger.storage_version((0, 6)) == 1
        assert node.buffer.force_writes == 2

    def test_update_txn_writes_log(self):
        node = MiniNode()
        txn = make_txn()
        do_access(node, txn, write_access((0, 5)))
        commit(node, txn)
        assert node.log_disk.writes == 1

    def test_readonly_txn_skips_log(self):
        node = MiniNode()
        txn = make_txn()
        txn.accesses = [read_access((0, 5))]
        do_access(node, txn, txn.accesses[0])
        commit(node, txn)
        assert node.log_disk.writes == 0

    def test_rollback_restores_version_and_dirtiness(self):
        node = MiniNode()
        txn1 = make_txn(1)
        do_access(node, txn1, write_access((0, 5)))
        commit(node, txn1)  # committed dirty v1 (this node owns it)
        txn2 = make_txn(2)
        do_access(node, txn2, write_access((0, 5)), LockGrant(1))
        assert node.buffer.cached_version((0, 5)) == 2
        node.buffer.rollback(txn2)
        # The committed dirty copy v1 is restored, not lost.
        assert node.buffer.cached_version((0, 5)) == 1
        assert node.buffer.has_current_dirty((0, 5), 1)

    def test_rollback_of_fresh_page_restores_clean(self):
        node = MiniNode()
        txn = make_txn()
        do_access(node, txn, write_access((0, 5)))
        node.buffer.rollback(txn)
        assert node.buffer.cached_version((0, 5)) == 0
        assert not node.buffer.has_current_dirty((0, 5), 0)


class TestUnlockedPartitions:
    def test_append_allocates_without_read(self):
        node = MiniNode()
        txn = make_txn()
        access = write_access((1, 100), lockable=False)
        access.append = True
        do_access(node, txn, access)
        assert node.seq_disks.reads == 0
        assert node.buffer.cached_version((1, 100)) == 0

    def test_non_append_miss_reads_storage(self):
        node = MiniNode()
        txn = make_txn()
        do_access(node, txn, read_access((1, 100), lockable=False))
        assert node.seq_disks.reads == 1

    def test_force_writes_unlocked_pages(self):
        node = MiniNode(force=True)
        txn = make_txn()
        access = write_access((1, 100), lockable=False)
        access.append = True
        do_access(node, txn, access)
        commit(node, txn)
        assert node.seq_disks.writes == 1

    def test_concurrent_unlocked_writers_no_version_conflict(self):
        node = MiniNode()
        t1, t2 = make_txn(1), make_txn(2)
        a1 = write_access((1, 100), lockable=False)
        a2 = write_access((1, 100), lockable=False)
        do_access(node, t1, a1)
        do_access(node, t2, a2)  # must not raise
        commit(node, t1)
        commit(node, t2)


class TestForceWriteOrder:
    def test_unlocked_force_writes_spawn_in_page_order(self):
        """FORCE must walk ``modified_unlocked`` in sorted page order.

        The set's iteration order feeds process spawn order and hence
        the event schedule; pre-fix it depended on hash layout.
        """
        node = MiniNode(force=True, buffer_pages=16)
        txn = make_txn()
        spawned = []
        real = node.buffer._force_write

        def spy(page, version):
            spawned.append(page)
            return real(page, version)

        node.buffer._force_write = spy
        pages = [(1, 9), (1, 2), (1, 17), (1, 5)]
        for page in pages:
            do_access(node, txn, write_access(page, lockable=False))
        assert txn.modified_unlocked == set(pages)
        node.run(node.buffer.commit_phase1(txn))
        assert spawned == sorted(pages)
