"""Unit tests for the communication subsystem."""

import pytest

from repro.system.cluster import Cluster
from repro.system.config import SystemConfig

from tests.helpers import drive_cluster as drive


def make_cluster(num_nodes=2, **overrides):
    defaults = dict(
        num_nodes=num_nodes,
        coupling="gem",
        arrival_rate_per_node=1e-6,
        warmup_time=0.0,
        measure_time=1.0,
    )
    defaults.update(overrides)
    return Cluster(SystemConfig(**defaults))


class TestSend:
    def test_send_to_self_rejected(self):
        cluster = make_cluster()
        node = cluster.nodes[0]
        with pytest.raises(ValueError):
            list(node.comm.send(0, "x", {}))

    def test_short_message_counts(self):
        cluster = make_cluster()
        node = cluster.nodes[0]
        reply = cluster.sim.event()

        def proc():
            yield from node.comm.send(1, "lock_rsp", {"v": 1}, reply_event=reply)
            payload = yield reply  # delivered straight to the event
            return payload

        # Use a reply_event addressed at node 1... actually the message
        # itself carries the reply event; node 1's receive completes it.
        payload = drive(cluster, proc())
        assert payload == {"v": 1}
        assert node.comm.sent_short == 1
        assert node.comm.sent_long == 0
        assert cluster.network.messages == 1

    def test_long_message_slower_and_bigger(self):
        cluster = make_cluster()
        node = cluster.nodes[0]

        def send(long):
            reply = cluster.sim.event()
            yield from node.comm.send(1, "m", {}, long=long, reply_event=reply)
            yield reply
            return cluster.sim.now

        t_short = drive(cluster, send(False))
        start = cluster.sim.now
        t_long = drive(cluster, send(True)) - start
        assert t_long > t_short
        assert cluster.network.bytes_transmitted == 100 + 4096

    def test_sender_cpu_charged_before_return(self):
        cluster = make_cluster()
        node = cluster.nodes[0]

        def proc():
            yield from node.comm.send(1, "m", {}, reply_event=cluster.sim.event())
            return cluster.sim.now

        elapsed = drive(cluster, proc())
        # 5000 instructions at 10 MIPS = 0.5 ms of sender CPU.
        assert elapsed >= 5000 / 10e6 - 1e-12

    def test_receiver_cpu_charged(self):
        cluster = make_cluster()
        node = cluster.nodes[0]
        receiver_cpu = cluster.nodes[1].cpu
        before = receiver_cpu.instructions_executed
        reply = cluster.sim.event()

        def proc():
            yield from node.comm.send(1, "m", {}, reply_event=reply)
            yield reply

        drive(cluster, proc())
        assert receiver_cpu.instructions_executed >= before + 5000


class TestDispatch:
    def test_mailbox_message_dispatched_to_handler(self):
        cluster = make_cluster()
        received = []

        def handler(node, payload):
            received.append((node.node_id, payload["x"]))
            return
            yield  # pragma: no cover

        cluster.nodes[1].register_handler("custom", handler)
        node = cluster.nodes[0]

        def proc():
            yield from node.comm.send(1, "custom", {"x": 42})
            yield cluster.sim.timeout(0.01)

        drive(cluster, proc())
        assert received == [(1, 42)]

    def test_unknown_message_kind_raises(self):
        cluster = make_cluster()
        node = cluster.nodes[0]

        def proc():
            yield from node.comm.send(1, "nosuch", {})
            yield cluster.sim.timeout(0.01)

        with pytest.raises(RuntimeError, match="no handler"):
            drive(cluster, proc())

    def test_handler_blocking_does_not_stall_dispatch(self):
        cluster = make_cluster()
        order = []
        gate = cluster.sim.event()

        def blocking_handler(node, payload):
            yield gate
            order.append("blocked-done")

        def fast_handler(node, payload):
            order.append("fast")
            return
            yield  # pragma: no cover

        cluster.nodes[1].register_handler("slow", blocking_handler)
        cluster.nodes[1].register_handler("fast", fast_handler)
        node = cluster.nodes[0]

        def proc():
            yield from node.comm.send(1, "slow", {})
            yield from node.comm.send(1, "fast", {})
            yield cluster.sim.timeout(0.05)
            gate.succeed()
            yield cluster.sim.timeout(0.01)

        drive(cluster, proc())
        assert order == ["fast", "blocked-done"]
