"""Unit tests for the transaction manager (lifecycle, lock reuse, MPL)."""

from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.workload.transaction import PageAccess, Transaction

from tests.helpers import drive_cluster as drive


def make_cluster(**overrides):
    defaults = dict(
        num_nodes=1,
        coupling="gem",
        routing="affinity",
        update_strategy="noforce",
        arrival_rate_per_node=1e-6,
        warmup_time=0.0,
        measure_time=1.0,
    )
    defaults.update(overrides)
    return Cluster(SystemConfig(**defaults))


def submit_and_settle(cluster, txn, horizon=10.0):
    cluster.nodes[txn.node or 0].tm.submit(txn)

    def wait():
        yield cluster.sim.timeout(1.0)

    drive(cluster, wait(), horizon=horizon)


class TestLifecycle:
    def test_simple_transaction_completes(self):
        cluster = make_cluster()
        txn = Transaction(
            1, [PageAccess((0, 3), write=True), PageAccess((1, 5), write=False)]
        )
        txn.node = 0
        submit_and_settle(cluster, txn)
        node = cluster.nodes[0]
        assert node.completions.count == 1
        assert node.response_time.count == 1
        assert cluster.ledger.committed_version((0, 3)) == 1
        # All locks released.
        assert not txn.held_locks

    def test_generator_transaction_via_source_path(self):
        cluster = make_cluster()
        txn = cluster.generator.next_transaction()
        node_id = cluster.router.route(txn)
        cluster.nodes[node_id].tm.submit(txn)

        def wait():
            yield cluster.sim.timeout(1.0)

        drive(cluster, wait())
        assert cluster.nodes[node_id].completions.count == 1

    def test_history_placeholder_materialized(self):
        cluster = make_cluster()
        txn = cluster.generator.next_transaction()
        history_access = txn.accesses[1]
        assert history_access.page[1] == -1
        cluster.nodes[0].tm.submit(txn)

        def wait():
            yield cluster.sim.timeout(1.0)

        drive(cluster, wait())
        assert history_access.page[1] != -1

    def test_history_pages_advance_with_blocking_factor(self):
        cluster = make_cluster()
        bf = cluster.config.debit_credit.history_blocking_factor
        node = cluster.nodes[0]
        history_index = cluster.layout.history.index
        pages = {node.next_history_page(history_index, bf) for _ in range(bf)}
        assert len(pages) == 1  # first bf appends share one page
        next_page = node.next_history_page(history_index, bf)
        assert next_page not in pages

    def test_response_time_includes_input_queue(self):
        cluster = make_cluster(mpl_per_node=1)
        slow = Transaction(1, [PageAccess((0, 1), write=True)])
        fast = Transaction(2, [PageAccess((0, 2), write=True)])
        slow.node = fast.node = 0
        cluster.nodes[0].tm.submit(slow)
        cluster.nodes[0].tm.submit(fast)

        def wait():
            yield cluster.sim.timeout(2.0)

        drive(cluster, wait())
        node = cluster.nodes[0]
        assert node.completions.count == 2
        # The second transaction queued behind the first (MPL=1), so
        # its response time exceeds its bare service time.
        assert node.response_time.max > node.response_time.min


class TestLockReuse:
    def test_lock_acquired_once_per_page(self):
        cluster = make_cluster()
        page = (0, 9)
        txn = Transaction(
            1,
            [
                PageAccess(page, write=True),
                PageAccess(page, write=True),
                PageAccess(page, write=False),
            ],
        )
        txn.node = 0
        submit_and_settle(cluster, txn)
        # One GLT request despite three accesses.
        assert cluster.protocol.glt.requests == 1

    def test_upgrade_after_read(self):
        cluster = make_cluster()
        page = (0, 9)
        txn = Transaction(
            1, [PageAccess(page, write=False), PageAccess(page, write=True)]
        )
        txn.node = 0
        submit_and_settle(cluster, txn)
        assert cluster.nodes[0].completions.count == 1
        assert cluster.ledger.committed_version(page) == 1
        # Two GLT interactions: S then the upgrade to X.
        assert cluster.protocol.glt.requests == 2


class TestDeadlockRestart:
    def test_victim_restarts_and_completes(self):
        cluster = make_cluster(num_nodes=2, routing="random")
        page_a, page_b = (0, 1), (0, 2)
        t1 = Transaction(1, [PageAccess(page_a, True), PageAccess(page_b, True)])
        t2 = Transaction(2, [PageAccess(page_b, True), PageAccess(page_a, True)])
        t1.node, t2.node = 0, 1
        cluster.nodes[0].tm.submit(t1)
        cluster.nodes[1].tm.submit(t2)

        def wait():
            yield cluster.sim.timeout(3.0)

        drive(cluster, wait(), horizon=20.0)
        completions = sum(n.completions.count for n in cluster.nodes)
        aborts = sum(n.aborts.count for n in cluster.nodes)
        assert completions == 2  # both finish, one after restarting
        assert aborts >= 1
        assert cluster.detector.deadlocks_detected >= 1
        # Both updates committed (serializable outcome).
        assert cluster.ledger.committed_version(page_a) == 2
        assert cluster.ledger.committed_version(page_b) == 2
