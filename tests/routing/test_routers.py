"""Unit tests for the routing strategies."""

import pytest

from repro.db.debitcredit import DebitCreditLayout
from repro.routing.affinity import AffinityRouter
from repro.routing.random_router import RandomRouter
from repro.system.config import DebitCreditConfig
from repro.workload.transaction import Transaction


def txn(branch=None, type_id=0):
    t = Transaction(1, [], type_id=type_id, branch=branch)
    return t


class TestRandomRouter:
    def test_round_robin_balance(self):
        router = RandomRouter(4)
        nodes = [router.route(txn()) for _ in range(40)]
        for node in range(4):
            assert nodes.count(node) == 10

    def test_single_node(self):
        router = RandomRouter(1)
        assert router.route(txn()) == 0

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            RandomRouter(0)


class TestAffinityRouter:
    def test_debit_credit_routes_by_branch(self):
        layout = DebitCreditLayout(DebitCreditConfig(), num_nodes=4)
        router = AffinityRouter.for_debit_credit(layout, 4)
        assert router.route(txn(branch=0)) == 0
        assert router.route(txn(branch=150)) == 1
        assert router.route(txn(branch=399)) == 3

    def test_missing_branch_rejected(self):
        layout = DebitCreditLayout(DebitCreditConfig(), num_nodes=2)
        router = AffinityRouter.for_debit_credit(layout, 2)
        with pytest.raises(ValueError):
            router.route(txn(branch=None))

    def test_invalid_home_rejected(self):
        router = AffinityRouter(lambda t: 9, num_nodes=2)
        with pytest.raises(ValueError):
            router.route(txn())
