"""Unit tests for the trace routing-table heuristic and GLA assignment."""

import pytest

from repro.routing.gla import build_gla_map
from repro.routing.routing_table import (
    RoutingTable,
    build_routing_table,
    type_segment_vectors,
)
from repro.workload.trace import Trace, TraceReference, TraceTransaction


def make_trace(spec):
    """spec: list of (type_id, [(file, page), ...]) tuples."""
    transactions = [
        TraceTransaction(
            type_id, [TraceReference(f, p, False) for f, p in refs]
        )
        for type_id, refs in spec
    ]
    num_files = 1 + max(
        (ref.file_id for t in transactions for ref in t.references), default=0
    )
    return Trace(transactions, num_files)


class TestRoutingTable:
    def test_node_for_known_and_unknown_types(self):
        table = RoutingTable({0: 1, 1: 0}, num_nodes=2)
        assert table.node_for(0) == 1
        assert table.node_for(1) == 0
        assert table.node_for(7) == 7 % 2  # deterministic fallback

    def test_invalid_assignment_rejected(self):
        with pytest.raises(ValueError):
            RoutingTable({0: 5}, num_nodes=2)

    def test_types_of(self):
        table = RoutingTable({0: 1, 1: 0, 2: 1}, num_nodes=2)
        assert table.types_of(1) == [0, 2]


class TestSegmentVectors:
    def test_vectors_count_references(self):
        trace = make_trace([(0, [(0, 1), (0, 2), (1, 300)])])
        vectors, volumes = type_segment_vectors(trace, segment_size=256)
        assert volumes[0] == 3
        assert vectors[0][(0, 0)] == 2
        assert vectors[0][(1, 1)] == 1

    def test_invalid_segment_size(self):
        trace = make_trace([(0, [(0, 1)])])
        with pytest.raises(ValueError):
            type_segment_vectors(trace, segment_size=0)


class TestBuildRoutingTable:
    def test_single_node_maps_everything_to_zero(self):
        trace = make_trace([(0, [(0, 1)]), (1, [(0, 2)])])
        table = build_routing_table(trace, 1)
        assert table.node_for(0) == 0
        assert table.node_for(1) == 0

    def test_overlapping_types_colocated(self):
        # Types 0 and 1 share segment (0,0); types 2 and 3 share (1,0).
        trace = make_trace(
            [
                (0, [(0, 1)] * 10),
                (1, [(0, 2)] * 10),
                (2, [(1, 1)] * 10),
                (3, [(1, 2)] * 10),
            ]
        )
        table = build_routing_table(trace, 2, segment_size=256)
        assert table.node_for(0) == table.node_for(1)
        assert table.node_for(2) == table.node_for(3)
        assert table.node_for(0) != table.node_for(2)

    def test_load_balance_cap_prevents_hot_node(self):
        # Four equally sized disjoint types over two nodes: two each.
        trace = make_trace(
            [(t, [(t, 1)] * 10) for t in range(4)]
        )
        table = build_routing_table(trace, 2)
        assignments = [table.node_for(t) for t in range(4)]
        assert assignments.count(0) == 2
        assert assignments.count(1) == 2

    def test_invalid_node_count(self):
        trace = make_trace([(0, [(0, 1)])])
        with pytest.raises(ValueError):
            build_routing_table(trace, 0)


class TestGlaMap:
    def test_gla_follows_dominant_referencing_node(self):
        trace = make_trace(
            [
                (0, [(0, 1)] * 20),  # routed to some node n0
                (1, [(1, 1)] * 20),  # routed to the other node
            ]
        )
        table = build_routing_table(trace, 2)
        gla = build_gla_map(trace, table, 2)
        assert gla((0, 1)) == table.node_for(0)
        assert gla((1, 1)) == table.node_for(1)

    def test_unreferenced_segment_deterministic(self):
        trace = make_trace([(0, [(0, 1)])])
        table = build_routing_table(trace, 2)
        gla = build_gla_map(trace, table, 2)
        assert gla((5, 99999)) == gla((5, 99999))
        assert gla((5, 99999)) in (0, 1)

    def test_balance_cap_spreads_lock_load(self):
        # One type generates all references; without the cap every
        # segment would land on its node.
        refs = [(0, p) for p in range(0, 256 * 8, 256)] * 5
        trace = make_trace([(0, refs)])
        table = build_routing_table(trace, 2)
        gla = build_gla_map(trace, table, 2, balance_slack=1.0)
        nodes = {gla((0, p)) for p in range(0, 256 * 8, 256)}
        assert nodes == {0, 1}

    def test_share_of(self):
        trace = make_trace([(0, [(0, 1)] * 4), (1, [(1, 1)] * 4)])
        table = build_routing_table(trace, 2)
        gla = build_gla_map(trace, table, 2)
        assert gla.share_of(0) + gla.share_of(1) == pytest.approx(1.0)
