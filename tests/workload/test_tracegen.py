"""Unit tests for the synthetic real-life trace generator.

The generator's whole purpose is to match the aggregates the paper
reports about its proprietary trace, so those aggregates are asserted
here (on a scaled trace for speed; the full-size values are checked in
the slower integration suite).
"""

import pytest

from repro.sim import StreamRegistry
from repro.system.config import TraceWorkloadConfig
from repro.workload.tracegen import file_sizes, generate_trace


@pytest.fixture(scope="module")
def scaled_trace():
    config = TraceWorkloadConfig(scale=0.2)
    stream = StreamRegistry(42).stream("tracegen")
    trace, profiles, sizes = generate_trace(config, stream)
    return config.scaled(), trace, profiles, sizes


class TestAggregates:
    def test_transaction_count(self, scaled_trace):
        config, trace, _, _ = scaled_trace
        assert len(trace) == config.num_transactions

    def test_number_of_types(self, scaled_trace):
        _, trace, _, _ = scaled_trace
        assert trace.num_types() == 12

    def test_mean_references_near_target(self, scaled_trace):
        config, trace, _, _ = scaled_trace
        assert trace.mean_references() == pytest.approx(
            config.mean_references, rel=0.25
        )

    def test_largest_transaction_is_adhoc_query(self, scaled_trace):
        config, trace, _, _ = scaled_trace
        assert trace.max_references() == config.max_references
        largest = max(trace, key=len)
        assert largest.type_id == config.num_types - 1
        assert not largest.is_update  # the ad-hoc query is read-only

    def test_write_reference_fraction(self, scaled_trace):
        config, trace, _, _ = scaled_trace
        assert trace.write_reference_fraction() == pytest.approx(
            config.write_reference_fraction, rel=0.4
        )

    def test_update_transaction_fraction(self, scaled_trace):
        config, trace, _, _ = scaled_trace
        assert trace.update_transaction_fraction() == pytest.approx(
            config.update_txn_fraction, rel=0.35
        )

    def test_distinct_pages_near_target(self, scaled_trace):
        config, trace, _, _ = scaled_trace
        assert trace.distinct_pages() == pytest.approx(
            config.distinct_pages, rel=0.35
        )

    def test_thirteen_files(self, scaled_trace):
        _, trace, _, _ = scaled_trace
        files = {ref.file_id for txn in trace for ref in txn.references}
        assert files == set(range(13))


class TestStructure:
    def test_access_skew_within_files(self, scaled_trace):
        """Zipf popularity: the top pages take a large reference share."""
        _, trace, _, sizes = scaled_trace
        from collections import Counter

        counts = Counter(
            ref.page_no
            for txn in trace
            for ref in txn.references
            if ref.file_id == 0 and not ref.write
        )
        total = sum(counts.values())
        top = sum(count for _page, count in counts.most_common(len(counts) // 20))
        assert top / total > 0.4  # top 5% of pages >40% of references

    def test_writes_disjoint_from_adhoc_footprint(self, scaled_trace):
        _, trace, _, _ = scaled_trace
        for txn in trace:
            for ref in txn.references:
                if ref.write:
                    assert ref.file_id >= 3

    def test_writes_fall_in_write_region(self, scaled_trace):
        _, trace, _, sizes = scaled_trace
        for txn in trace:
            for ref in txn.references:
                if ref.write:
                    assert ref.page_no >= (3 * sizes[ref.file_id]) // 4

    def test_deterministic_under_seed(self):
        config = TraceWorkloadConfig(scale=0.05)
        t1, _, _ = generate_trace(config, StreamRegistry(9).stream("tracegen"))
        t2, _, _ = generate_trace(config, StreamRegistry(9).stream("tracegen"))
        assert t1.num_references() == t2.num_references()
        assert t1.distinct_pages() == t2.distinct_pages()

    def test_different_seeds_differ(self):
        config = TraceWorkloadConfig(scale=0.05)
        t1, _, _ = generate_trace(config, StreamRegistry(1).stream("tracegen"))
        t2, _, _ = generate_trace(config, StreamRegistry(2).stream("tracegen"))
        assert t1.num_references() != t2.num_references()


class TestFileSizes:
    def test_sizes_sum_near_distinct_pages(self):
        config = TraceWorkloadConfig()
        sizes = file_sizes(config)
        assert sum(sizes) == pytest.approx(config.distinct_pages, rel=0.05)

    def test_sizes_skewed_descending(self):
        sizes = file_sizes(TraceWorkloadConfig())
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[0] > 5 * sizes[-1]

    def test_scaling(self):
        full = TraceWorkloadConfig()
        scaled = TraceWorkloadConfig(scale=0.1).scaled()
        assert scaled.num_transactions == pytest.approx(
            full.num_transactions * 0.1, rel=0.01
        )
        assert scaled.scale == 1.0
