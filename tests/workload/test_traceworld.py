"""Unit tests for the trace world (database, replay, routing, GLA)."""

import pytest

from repro.sim import StreamRegistry
from repro.system.config import SystemConfig, TraceWorkloadConfig
from repro.workload.trace import Trace, TraceReference, TraceTransaction
from repro.workload.traceworld import TraceReplayGenerator, TraceWorld


def make_world(num_nodes=2, scale=0.03, trace=None):
    config = SystemConfig(
        num_nodes=num_nodes,
        workload="trace",
        trace=TraceWorkloadConfig(scale=scale),
        arrival_rate_per_node=1.0,
    )
    return TraceWorld(config, StreamRegistry(5), trace=trace)


class TestWorldConstruction:
    def test_one_partition_per_file(self):
        world = make_world()
        assert len(world.database) == 13
        assert world.database.by_index(0).name == "FILE0"

    def test_all_partitions_lockable(self):
        world = make_world()
        assert all(p.lockable for p in world.database)

    def test_partitions_cover_file_extents(self):
        world = make_world()
        for txn in world.trace:
            for ref in txn.references:
                partition = world.database.by_index(ref.file_id)
                assert ref.page_no < partition.num_pages

    def test_disk_budget_proportional_to_file_size(self):
        world = make_world()
        disks = [p.disks for p in world.database]
        sizes = [p.num_pages for p in world.database]
        # Bigger files get at least as many disks as much smaller ones.
        assert disks[0] > disks[-1]
        assert sizes[0] > sizes[-1]

    def test_gla_covers_all_referenced_pages(self):
        world = make_world(num_nodes=3)
        for txn in world.trace:
            for ref in txn.references:
                assert 0 <= world.gla_of_page((ref.file_id, ref.page_no)) < 3

    def test_external_trace_accepted(self):
        trace = Trace(
            [TraceTransaction(0, [TraceReference(0, 5, False)])], num_files=2
        )
        world = make_world(trace=trace)
        assert len(world.database) == 2
        assert world.database.by_index(0).num_pages == 6


class TestReplayGenerator:
    def _trace(self):
        return Trace(
            [
                TraceTransaction(0, [TraceReference(0, 1, False)]),
                TraceTransaction(1, [TraceReference(0, 2, True)]),
            ],
            num_files=1,
        )

    def test_replays_in_order_then_cycles(self):
        generator = TraceReplayGenerator(self._trace())
        types = [generator.next_transaction().type_id for _ in range(5)]
        assert types == [0, 1, 0, 1, 0]
        assert generator.replays == 2

    def test_fresh_transaction_objects(self):
        generator = TraceReplayGenerator(self._trace())
        first = generator.next_transaction()
        generator.next_transaction()
        third = generator.next_transaction()  # same recorded txn as first
        assert first is not third
        assert first.txn_id != third.txn_id
        assert first.accesses[0] is not third.accesses[0]
        assert first.accesses[0].page == third.accesses[0].page

    def test_modes_preserved(self):
        generator = TraceReplayGenerator(self._trace())
        t0 = generator.next_transaction()
        t1 = generator.next_transaction()
        assert not t0.accesses[0].write
        assert t1.accesses[0].write
        assert t1.is_update

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            TraceReplayGenerator(Trace([], num_files=1))
