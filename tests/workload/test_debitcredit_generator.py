"""Unit tests for the debit-credit transaction generator."""

import pytest

from repro.db.debitcredit import DebitCreditLayout
from repro.sim import StreamRegistry
from repro.system.config import DebitCreditConfig
from repro.workload.debitcredit import DebitCreditGenerator


def make_generator(num_nodes=4, seed=11, **config_overrides):
    config = DebitCreditConfig(**config_overrides)
    layout = DebitCreditLayout(config, num_nodes)
    return layout, DebitCreditGenerator(layout, StreamRegistry(seed).stream("dc"))


class TestTransactionShape:
    def test_four_record_accesses(self):
        _, gen = make_generator()
        txn = gen.next_transaction()
        assert len(txn.accesses) == 4

    def test_all_accesses_are_updates(self):
        _, gen = make_generator()
        txn = gen.next_transaction()
        assert all(a.write for a in txn.accesses)
        assert txn.is_update

    def test_access_order_account_history_teller_branch(self):
        layout, gen = make_generator()
        txn = gen.next_transaction()
        partitions = [a.page[0] for a in txn.accesses]
        assert partitions == [
            layout.account.index,
            layout.history.index,
            layout.branch_teller.index,
            layout.branch_teller.index,
        ]

    def test_history_access_unlocked_append(self):
        _, gen = make_generator()
        txn = gen.next_transaction()
        history = txn.accesses[1]
        assert not history.lockable
        assert history.append
        assert history.page[1] == -1  # placeholder until routed

    def test_clustered_transaction_locks_two_pages(self):
        _, gen = make_generator()
        txn = gen.next_transaction()
        locked = {a.page for a in txn.accesses if a.lockable}
        # ACCOUNT page + one clustered BRANCH/TELLER page.
        assert len(locked) == 2

    def test_unclustered_transaction_locks_three_pages(self):
        _, gen = make_generator(cluster_branch_teller=False)
        txn = gen.next_transaction()
        locked = {a.page for a in txn.accesses if a.lockable}
        assert len(locked) == 3

    def test_transaction_ids_unique_and_increasing(self):
        _, gen = make_generator()
        ids = [gen.next_transaction().txn_id for _ in range(10)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 10


class TestDistributions:
    def test_branches_uniform(self):
        layout, gen = make_generator(num_nodes=2)
        n = 20_000
        counts = [0] * layout.total_branches
        for _ in range(n):
            counts[gen.next_transaction().branch] += 1
        mean = n / layout.total_branches
        assert min(counts) > 0.5 * mean
        assert max(counts) < 1.6 * mean

    def test_85_percent_account_locality(self):
        layout, gen = make_generator(num_nodes=4)
        n = 20_000
        local = 0
        for _ in range(n):
            txn = gen.next_transaction()
            account_page = txn.accesses[0].page
            first_account = account_page[1] * layout.config.account_blocking_factor
            if layout.branch_of_account(first_account) == txn.branch:
                local += 1
        assert local / n == pytest.approx(0.85, abs=0.01)

    def test_remote_account_goes_to_other_branch(self):
        layout, gen = make_generator(num_nodes=4, account_local_probability=0.0)
        for _ in range(200):
            txn = gen.next_transaction()
            account_page = txn.accesses[0].page
            first_account = account_page[1] * layout.config.account_blocking_factor
            assert layout.branch_of_account(first_account) != txn.branch

    def test_single_branch_database_always_local(self):
        layout, gen = make_generator(
            num_nodes=1, branches_per_node=1, account_local_probability=0.0
        )
        txn = gen.next_transaction()
        assert txn.branch == 0

    def test_teller_and_branch_on_same_clustered_page(self):
        _, gen = make_generator()
        for _ in range(50):
            txn = gen.next_transaction()
            assert txn.accesses[2].page == txn.accesses[3].page
