"""Unit and integration tests for the synthetic workload generator."""

import pytest

from repro.sim import StreamRegistry
from repro.system.config import SystemConfig
from repro.system.runner import run_simulation
from repro.workload.synthetic import (
    AccessSpec,
    PartitionSpec,
    SyntheticGenerator,
    SyntheticWorkloadSpec,
    TransactionClass,
)


def order_entry_spec():
    return SyntheticWorkloadSpec(
        partitions=[
            PartitionSpec("ORDERS", 50_000, disks=6),
            PartitionSpec("STOCK", 5_000, disks=6),
            PartitionSpec("LOG_SEQ", 1_000, lockable=False),
        ],
        classes=[
            TransactionClass(
                "new-order",
                weight=10,
                accesses=[
                    AccessSpec("STOCK", count=5, write_probability=1.0,
                               distribution="zipf", zipf_theta=0.8),
                    AccessSpec("ORDERS", count=1, write_probability=1.0),
                ],
                affinity_node=0,
            ),
            TransactionClass(
                "stock-level",
                weight=2,
                accesses=[
                    AccessSpec("STOCK", count=40, distribution="zipf",
                               hot_fraction=0.2),
                ],
                affinity_node=1,
            ),
        ],
    )


def make_generator(spec=None):
    spec = spec or order_entry_spec()
    database = spec.build_database()
    return spec, database, SyntheticGenerator(
        spec, database, StreamRegistry(3).stream("syn")
    )


class TestSpecValidation:
    def test_invalid_distribution(self):
        with pytest.raises(ValueError):
            AccessSpec("X", distribution="pareto")

    def test_invalid_hot_fraction(self):
        with pytest.raises(ValueError):
            AccessSpec("X", hot_fraction=0.0)

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            TransactionClass("c", weight=0.0, accesses=[AccessSpec("X")])

    def test_empty_accesses(self):
        with pytest.raises(ValueError):
            TransactionClass("c", weight=1.0, accesses=[])

    def test_database_construction(self):
        spec, database, _gen = make_generator()
        assert len(database) == 3
        assert not database["LOG_SEQ"].lockable
        assert spec.class_by_name("new-order").weight == 10
        with pytest.raises(KeyError):
            spec.class_by_name("nope")


class TestGeneration:
    def test_access_counts_match_spec(self):
        _spec, _db, gen = make_generator()
        for _ in range(50):
            txn = gen.next_transaction()
            if txn.type_id == 0:
                assert len(txn.accesses) == 6  # 5 STOCK + 1 ORDERS
                assert txn.is_update
            else:
                assert len(txn.accesses) == 40
                assert not txn.is_update

    def test_class_mix_follows_weights(self):
        _spec, _db, gen = make_generator()
        n = 6000
        for _ in range(n):
            gen.next_transaction()
        share = gen.generated_per_class[0] / n
        assert share == pytest.approx(10 / 12, abs=0.03)

    def test_hot_fraction_respected(self):
        spec, db, gen = make_generator()
        hot_limit = int(db["STOCK"].num_pages * 0.2)
        for _ in range(30):
            txn = gen.next_transaction()
            if txn.type_id == 1:
                for access in txn.accesses:
                    assert access.page[1] < hot_limit

    def test_pages_within_partition_bounds(self):
        _spec, db, gen = make_generator()
        for _ in range(100):
            for access in gen.next_transaction().accesses:
                partition = db.by_index(access.page[0])
                assert 0 <= access.page[1] < partition.num_pages

    def test_zipf_skew_visible(self):
        from collections import Counter

        _spec, _db, gen = make_generator()
        counts = Counter()
        for _ in range(2000):
            txn = gen.next_transaction()
            if txn.type_id == 0:
                for access in txn.accesses:
                    if access.page[0] == 1:  # STOCK
                        counts[access.page[1]] += 1
        top = counts.most_common(1)[0][1]
        assert top > 5 * (sum(counts.values()) / max(len(counts), 1))


class TestEndToEnd:
    def _config(self, **overrides):
        defaults = dict(
            workload="synthetic",
            synthetic=order_entry_spec(),
            num_nodes=2,
            coupling="gem",
            routing="affinity",
            update_strategy="noforce",
            arrival_rate_per_node=20.0,
            buffer_pages_per_node=500,
            warmup_time=0.5,
            measure_time=2.0,
        )
        defaults.update(overrides)
        return SystemConfig(**defaults)

    def test_synthetic_requires_spec(self):
        with pytest.raises(ValueError):
            SystemConfig(workload="synthetic")

    def test_simulation_runs_with_gem(self):
        result = run_simulation(self._config())
        assert result.completed > 10
        assert "STOCK" in result.hit_ratios

    def test_simulation_runs_with_pcl(self):
        result = run_simulation(self._config(coupling="pcl", routing="random"))
        assert result.completed > 10
        assert result.messages_per_txn > 0

    def test_affinity_routing_uses_class_nodes(self):
        from repro.system.cluster import Cluster

        cluster = Cluster(self._config(arrival_rate_per_node=1e-6))
        txn = cluster.generator.next_transaction()
        expected = cluster.config.synthetic.classes[txn.type_id].affinity_node
        assert cluster.router.route(txn) == expected
