"""Unit tests for the trace format and its statistics."""

import io

import pytest

from repro.workload.trace import Trace, TraceReference, TraceTransaction


def small_trace():
    return Trace(
        [
            TraceTransaction(0, [TraceReference(0, 1, False), TraceReference(1, 2, True)]),
            TraceTransaction(1, [TraceReference(0, 1, False)]),
            TraceTransaction(0, [TraceReference(2, 9, False)] * 3),
        ],
        num_files=3,
    )


class TestStatistics:
    def test_counts(self):
        trace = small_trace()
        assert len(trace) == 3
        assert trace.num_references() == 6
        assert trace.mean_references() == pytest.approx(2.0)
        assert trace.max_references() == 3

    def test_types_and_pages(self):
        trace = small_trace()
        assert trace.num_types() == 2
        assert trace.distinct_pages() == 3

    def test_write_fraction(self):
        trace = small_trace()
        assert trace.write_reference_fraction() == pytest.approx(1 / 6)

    def test_update_fraction(self):
        trace = small_trace()
        assert trace.update_transaction_fraction() == pytest.approx(1 / 3)

    def test_pages_per_file(self):
        trace = small_trace()
        assert trace.pages_per_file() == {0: 1, 1: 2, 2: 9}

    def test_empty_trace_statistics(self):
        trace = Trace([], num_files=1)
        assert trace.mean_references() == 0.0
        assert trace.write_reference_fraction() == 0.0
        assert trace.update_transaction_fraction() == 0.0
        assert trace.max_references() == 0


class TestRoundTrip:
    def test_write_and_read_back(self):
        trace = small_trace()
        buffer = io.StringIO()
        trace.write_to(buffer)
        buffer.seek(0)
        loaded = Trace.read_from(buffer)
        assert len(loaded) == len(trace)
        assert loaded.num_files == trace.num_files
        for original, reloaded in zip(trace, loaded):
            assert original.type_id == reloaded.type_id
            assert original.references == reloaded.references

    def test_file_round_trip(self, tmp_path):
        trace = small_trace()
        path = str(tmp_path / "t.trace")
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded.num_references() == trace.num_references()

    def test_rejects_garbage_header(self):
        with pytest.raises(ValueError):
            Trace.read_from(io.StringIO("not a trace\n"))

    def test_rejects_bad_mode(self):
        text = "# repro-trace v1\nfiles 1\ntxn 0 0:1:z\n"
        with pytest.raises(ValueError):
            Trace.read_from(io.StringIO(text))

    def test_rejects_malformed_line(self):
        text = "# repro-trace v1\nfiles 1\nbogus line here\n"
        with pytest.raises(ValueError):
            Trace.read_from(io.StringIO(text))

    def test_empty_transaction_round_trip(self):
        trace = Trace([TraceTransaction(4, [])], num_files=1)
        buffer = io.StringIO()
        trace.write_to(buffer)
        buffer.seek(0)
        loaded = Trace.read_from(buffer)
        assert len(loaded.transactions[0].references) == 0
        assert loaded.transactions[0].type_id == 4
