"""Unit tests for global deadlock detection."""

from repro.cc.deadlock import DeadlockDetector
from repro.node.lock_table import LockMode, LockTable

S = LockMode.SHARED
X = LockMode.EXCLUSIVE


def noop():
    pass


class TestCycleDetection:
    def test_no_deadlock_on_simple_wait(self):
        detector = DeadlockDetector()
        table = LockTable()
        table.request(1, (0, 1), X, noop)
        table.request(2, (0, 1), X, noop)
        assert detector.register_block(2, table, noop) is None
        assert detector.deadlocks_detected == 0

    def test_two_txn_cycle_detected(self):
        detector = DeadlockDetector()
        table = LockTable()
        aborted = []
        # 1 holds a, 2 holds b; then 1 wants b, 2 wants a.
        table.request(1, (0, 1), X, noop)
        table.request(2, (0, 2), X, noop)
        table.request(1, (0, 2), X, noop)
        assert detector.register_block(1, table, lambda: aborted.append(1)) is None
        table.request(2, (0, 1), X, noop)
        victim = detector.register_block(2, table, lambda: aborted.append(2))
        assert victim == 2  # youngest
        assert aborted == [2]
        assert detector.deadlocks_detected == 1

    def test_victim_is_youngest_even_if_not_last_blocker(self):
        detector = DeadlockDetector()
        table = LockTable()
        aborted = []
        # 5 (young) holds a and waits for b; 1 (old) holds b, requests a.
        table.request(5, (0, 1), X, noop)
        table.request(1, (0, 2), X, noop)
        table.request(5, (0, 2), X, noop)
        detector.register_block(5, table, lambda: aborted.append(5))
        table.request(1, (0, 1), X, noop)
        victim = detector.register_block(1, table, lambda: aborted.append(1))
        assert victim == 5
        assert aborted == [5]

    def test_three_txn_cycle(self):
        detector = DeadlockDetector()
        table = LockTable()
        aborted = []
        table.request(1, (0, 1), X, noop)
        table.request(2, (0, 2), X, noop)
        table.request(3, (0, 3), X, noop)
        table.request(1, (0, 2), X, noop)
        detector.register_block(1, table, lambda: aborted.append(1))
        table.request(2, (0, 3), X, noop)
        detector.register_block(2, table, lambda: aborted.append(2))
        table.request(3, (0, 1), X, noop)
        victim = detector.register_block(3, table, lambda: aborted.append(3))
        assert victim == 3
        assert aborted == [3]

    def test_cross_table_cycle(self):
        """PCL: a deadlock spanning two GLA lock tables is detected."""
        detector = DeadlockDetector()
        table_a, table_b = LockTable("a"), LockTable("b")
        aborted = []
        table_a.request(1, (0, 1), X, noop)
        table_b.request(2, (1, 1), X, noop)
        table_b.request(1, (1, 1), X, noop)
        detector.register_block(1, table_b, lambda: aborted.append(1))
        table_a.request(2, (0, 1), X, noop)
        victim = detector.register_block(2, table_a, lambda: aborted.append(2))
        assert victim == 2
        assert aborted == [2]

    def test_upgrade_deadlock(self):
        detector = DeadlockDetector()
        table = LockTable()
        aborted = []
        table.request(1, (0, 1), S, noop)
        table.request(2, (0, 1), S, noop)
        table.request(1, (0, 1), X, noop)
        detector.register_block(1, table, lambda: aborted.append(1))
        table.request(2, (0, 1), X, noop)
        victim = detector.register_block(2, table, lambda: aborted.append(2))
        assert victim == 2

    def test_clear_removes_registration(self):
        detector = DeadlockDetector()
        table = LockTable()
        table.request(1, (0, 1), X, noop)
        table.request(2, (0, 1), X, noop)
        detector.register_block(2, table, noop)
        detector.clear(2)
        assert not detector.is_blocked(2)


class TestSideCycles:
    """Cycles the DFS finds that do not contain the registering txn."""

    def test_side_cycle_resolved_but_not_reported_to_caller(self):
        detector = DeadlockDetector()
        table = LockTable()
        aborted = []
        pb, pcd = (0, 1), (0, 2)

        def abort(txn):
            # Realistic abort: withdraw the queued request, release all
            # held locks (which may promote waiters).
            def cb():
                aborted.append(txn)
                page = table.blocked_page(txn)
                if page is not None:
                    table.cancel(txn, page)
                for held in table.held_pages(txn):
                    table.release(txn, held)
            return cb

        def granted(txn):
            return lambda: detector.clear(txn)

        # 1 holds X on pb; 2 and 3 share pcd; then 2 and 3 queue for pb
        # and finally 1 queues for pcd -- creating TWO cycles through 1:
        # 1<->2 and 1<->3.
        table.request(1, pb, X, noop)
        table.request(2, pcd, S, noop)
        table.request(3, pcd, S, noop)
        table.request(2, pb, X, granted(2))
        assert detector.register_block(2, table, abort(2)) is None
        table.request(3, pb, X, granted(3))
        assert detector.register_block(3, table, abort(3)) is None
        table.request(1, pcd, X, granted(1))
        victim = detector.register_block(1, table, abort(1))
        # 1's own registration must resolve BOTH of its cycles, not just
        # the first one found (pre-fix only [1, 2] was broken).
        assert victim == 2
        assert aborted == [2, 3]
        assert detector.deadlocks_detected == 2
        assert not detector.is_blocked(1)  # promoted on pcd after 3's abort
        # A later blocker behind the surviving holder sees no cycle at
        # all.  Pre-fix the leftover 1<->3 cycle was found from here via
        # the sub-path branch and its victim (3) was returned to txn 4
        # as if *4's* wait had been broken.
        table.request(4, pb, X, granted(4))
        assert detector.register_block(4, table, abort(4)) is None
        assert detector.is_blocked(4)
        assert aborted == [2, 3]


class TestDeterministicVictimOrder:
    def test_dfs_explores_blockers_in_sorted_order(self):
        """Victim sequence must not depend on set iteration order.

        Transaction 1 waits for both 3 and 10, each of which waits for
        1: two cycles resolved back to back.  ``waiting_for`` returns a
        set, and ``{3, 10}`` iterates as ``[10, 3]`` under CPython's
        hashing -- pre-fix the DFS followed that order and aborted 10
        before 3.  With sorted edge expansion the victim sequence is
        the value order ``[3, 10]`` regardless of hash layout.
        """
        detector = DeadlockDetector()
        table = LockTable()
        aborted = []

        def abort(txn):
            return lambda: aborted.append(txn)

        pa, pb, pc = (0, 1), (0, 2), (0, 3)
        # 1 holds pb and pc; 3 and 10 share pa.
        table.request(1, pb, X, noop)
        table.request(1, pc, X, noop)
        table.request(3, pa, S, noop)
        table.request(10, pa, S, noop)
        # 3 queues for pb, 10 queues for pc: edges 3->1 and 10->1.
        table.request(3, pb, X, noop)
        assert detector.register_block(3, table, abort(3)) is None
        table.request(10, pc, X, noop)
        assert detector.register_block(10, table, abort(10)) is None
        # 1 queues for pa behind both holders: cycles 1<->3 and 1<->10.
        table.request(1, pa, X, noop)
        victim = detector.register_block(1, table, abort(1))
        assert victim == 3  # first cycle resolved went through 3
        assert aborted == [3, 10]
        assert detector.victims == [3, 10]
        assert detector.deadlocks_detected == 2
