"""Unit tests for global deadlock detection."""

import pytest

from repro.cc.deadlock import DeadlockDetector
from repro.node.lock_table import LockMode, LockTable

S = LockMode.SHARED
X = LockMode.EXCLUSIVE


def noop():
    pass


class TestCycleDetection:
    def test_no_deadlock_on_simple_wait(self):
        detector = DeadlockDetector()
        table = LockTable()
        table.request(1, (0, 1), X, noop)
        table.request(2, (0, 1), X, noop)
        assert detector.register_block(2, table, noop) is None
        assert detector.deadlocks_detected == 0

    def test_two_txn_cycle_detected(self):
        detector = DeadlockDetector()
        table = LockTable()
        aborted = []
        # 1 holds a, 2 holds b; then 1 wants b, 2 wants a.
        table.request(1, (0, 1), X, noop)
        table.request(2, (0, 2), X, noop)
        table.request(1, (0, 2), X, noop)
        assert detector.register_block(1, table, lambda: aborted.append(1)) is None
        table.request(2, (0, 1), X, noop)
        victim = detector.register_block(2, table, lambda: aborted.append(2))
        assert victim == 2  # youngest
        assert aborted == [2]
        assert detector.deadlocks_detected == 1

    def test_victim_is_youngest_even_if_not_last_blocker(self):
        detector = DeadlockDetector()
        table = LockTable()
        aborted = []
        # 5 (young) holds a and waits for b; 1 (old) holds b, requests a.
        table.request(5, (0, 1), X, noop)
        table.request(1, (0, 2), X, noop)
        table.request(5, (0, 2), X, noop)
        detector.register_block(5, table, lambda: aborted.append(5))
        table.request(1, (0, 1), X, noop)
        victim = detector.register_block(1, table, lambda: aborted.append(1))
        assert victim == 5
        assert aborted == [5]

    def test_three_txn_cycle(self):
        detector = DeadlockDetector()
        table = LockTable()
        aborted = []
        table.request(1, (0, 1), X, noop)
        table.request(2, (0, 2), X, noop)
        table.request(3, (0, 3), X, noop)
        table.request(1, (0, 2), X, noop)
        detector.register_block(1, table, lambda: aborted.append(1))
        table.request(2, (0, 3), X, noop)
        detector.register_block(2, table, lambda: aborted.append(2))
        table.request(3, (0, 1), X, noop)
        victim = detector.register_block(3, table, lambda: aborted.append(3))
        assert victim == 3
        assert aborted == [3]

    def test_cross_table_cycle(self):
        """PCL: a deadlock spanning two GLA lock tables is detected."""
        detector = DeadlockDetector()
        table_a, table_b = LockTable("a"), LockTable("b")
        aborted = []
        table_a.request(1, (0, 1), X, noop)
        table_b.request(2, (1, 1), X, noop)
        table_b.request(1, (1, 1), X, noop)
        detector.register_block(1, table_b, lambda: aborted.append(1))
        table_a.request(2, (0, 1), X, noop)
        victim = detector.register_block(2, table_a, lambda: aborted.append(2))
        assert victim == 2
        assert aborted == [2]

    def test_upgrade_deadlock(self):
        detector = DeadlockDetector()
        table = LockTable()
        aborted = []
        table.request(1, (0, 1), S, noop)
        table.request(2, (0, 1), S, noop)
        table.request(1, (0, 1), X, noop)
        detector.register_block(1, table, lambda: aborted.append(1))
        table.request(2, (0, 1), X, noop)
        victim = detector.register_block(2, table, lambda: aborted.append(2))
        assert victim == 2

    def test_clear_removes_registration(self):
        detector = DeadlockDetector()
        table = LockTable()
        table.request(1, (0, 1), X, noop)
        table.request(2, (0, 1), X, noop)
        detector.register_block(2, table, noop)
        detector.clear(2)
        assert not detector.is_blocked(2)
