"""Unit tests for primary copy locking (driven on a quiesced cluster)."""

import pytest

from repro.errors import TransactionAborted
from repro.workload.transaction import PageAccess

from tests.helpers import drive_cluster as drive
from tests.helpers import make_txn, quiesced_cluster


def make_cluster(**overrides):
    overrides.setdefault("coupling", "pcl")
    return quiesced_cluster(**overrides)


def settle(cluster, delay=0.1):
    """Advance simulated time (e.g. to let in-flight messages land)."""

    def proc():
        yield cluster.sim.timeout(delay)

    drive(cluster, proc())


def local_page(cluster, node):
    """A BRANCH/TELLER page whose GLA is ``node``."""
    layout = cluster.layout
    branch = node * layout.config.branches_per_node
    return layout.branch_teller_page(branch)


def commit_modification(cluster, txn_id, node, page):
    """Write ``page`` at ``node`` and commit through the protocol."""
    txn = make_txn(txn_id, node)

    def proc():
        grant = yield from cluster.protocol.acquire(txn, page, True, None)
        buffer = cluster.nodes[node].buffer
        access = PageAccess(page, write=True)
        txn.accesses.append(access)
        yield from buffer.access(txn, access, grant)
        for p, v in txn.modified.items():
            cluster.ledger.install_commit(p, v)
        yield from cluster.protocol.commit_release(txn)
        buffer.finish_commit(txn)

    drive(cluster, proc())
    return txn


class TestLocalVsRemote:
    def test_local_request_costs_no_messages(self):
        cluster = make_cluster()
        page = local_page(cluster, node=0)
        txn = make_txn(1, 0)
        grant = drive(cluster, cluster.protocol.acquire(txn, page, False, None))
        assert grant.local
        assert cluster.nodes[0].comm.sent_short == 0
        assert cluster.protocol.local_lock_requests == 1

    def test_remote_request_exchanges_two_messages(self):
        cluster = make_cluster()
        page = local_page(cluster, node=1)
        txn = make_txn(1, 0)
        grant = drive(cluster, cluster.protocol.acquire(txn, page, False, None))
        assert not grant.local
        # Request (node 0) + reply (node 1), both short.
        assert cluster.nodes[0].comm.sent_short == 1
        assert cluster.nodes[1].comm.sent_short == 1
        assert cluster.protocol.remote_lock_requests == 1

    def test_remote_request_latency_includes_message_cpu(self):
        cluster = make_cluster()
        page = local_page(cluster, node=1)
        txn = make_txn(1, 0)
        drive(cluster, cluster.protocol.acquire(txn, page, False, None))
        # 4 send/receive operations at 5000 instructions each = 2ms,
        # plus transmission; the paper quotes >= 20000 instructions.
        assert cluster.sim.now >= 4 * 5000 / 10e6

    def test_local_share_statistic(self):
        cluster = make_cluster()
        t1 = make_txn(1, 0)
        t2 = make_txn(2, 0)
        drive(cluster, cluster.protocol.acquire(t1, local_page(cluster, 0), False, None))
        drive(cluster, cluster.protocol.acquire(t2, local_page(cluster, 1), False, None))
        assert cluster.protocol.local_share() == pytest.approx(0.5)


class TestCoherency:
    def test_remote_modification_ships_page_to_gla(self):
        cluster = make_cluster()
        page = local_page(cluster, node=1)
        commit_modification(cluster, 1, node=0, page=page)
        settle(cluster)  # let the release arrive
        # GLA (node 1) now buffers the current version dirty.
        assert cluster.nodes[1].buffer.has_current_dirty(page, 1)
        # The release was a single long message.
        assert cluster.nodes[0].comm.sent_long == 1
        # Seqno published at the GLA.
        assert cluster.protocol.tables[1].entry(page).seqno == 1
        # The modifier's own copy is clean now (GLA owns write-back).
        assert not cluster.nodes[0].buffer.has_current_dirty(page, 1)

    def test_grant_supplies_page_when_gla_holds_dirty_current(self):
        cluster = make_cluster()
        page = local_page(cluster, node=1)
        commit_modification(cluster, 1, node=1, page=page)  # GLA-local write
        reader = make_txn(2, 0)
        grant = drive(cluster, cluster.protocol.acquire(reader, page, False, None))
        assert grant.page_supplied
        assert grant.seqno == 1
        # The grant reply was a long message.
        assert cluster.nodes[1].comm.sent_long == 1

    def test_grant_does_not_supply_clean_page(self):
        cluster = make_cluster()
        page = local_page(cluster, node=1)
        reader_at_gla = make_txn(1, 1)

        def warm():
            grant = yield from cluster.protocol.acquire(reader_at_gla, page, False, None)
            access = PageAccess(page, write=False)
            reader_at_gla.accesses.append(access)
            yield from cluster.nodes[1].buffer.access(reader_at_gla, access, grant)
            yield from cluster.protocol.commit_release(reader_at_gla)

        drive(cluster, warm())
        remote_reader = make_txn(2, 0)
        grant = drive(
            cluster, cluster.protocol.acquire(remote_reader, page, False, None)
        )
        # GLA caches the page but clean -> storage is current -> the
        # requester reads the permanent database itself.
        assert not grant.page_supplied
        assert cluster.nodes[1].comm.sent_long == 0

    def test_grant_not_supplied_when_requester_current(self):
        cluster = make_cluster()
        page = local_page(cluster, node=1)
        commit_modification(cluster, 1, node=1, page=page)
        reader = make_txn(2, 0)
        grant = drive(
            cluster, cluster.protocol.acquire(reader, page, False, 1)
        )
        assert not grant.page_supplied

    def test_force_never_ships_pages(self):
        cluster = make_cluster(update_strategy="force")
        page = local_page(cluster, node=1)
        commit_modification(cluster, 1, node=0, page=page)
        settle(cluster)
        # Release message is short under FORCE (storage is current).
        assert cluster.nodes[0].comm.sent_long == 0
        reader = make_txn(2, 0)
        grant = drive(cluster, cluster.protocol.acquire(reader, page, False, None))
        assert not grant.page_supplied
        assert grant.seqno == 1

    def test_releases_grouped_per_gla_node(self):
        cluster = make_cluster(num_nodes=2)
        layout = cluster.layout
        txn = make_txn(1, 0)
        remote_pages = [
            layout.branch_teller_page(layout.config.branches_per_node + i)
            for i in range(3)
        ]

        def proc():
            for page in remote_pages:
                yield from cluster.protocol.acquire(txn, page, False, None)
            sent_before = cluster.nodes[0].comm.sent_short
            yield from cluster.protocol.commit_release(txn)
            return cluster.nodes[0].comm.sent_short - sent_before

        release_messages = drive(cluster, proc())
        assert release_messages == 1  # one combined release message


class TestReadOptimization:
    def make_opt_cluster(self):
        return make_cluster(pcl_read_optimization=True)

    def _warm_auth(self, cluster, txn_id, node, page):
        """First remote S lock: grants a read authorization."""
        txn = make_txn(txn_id, node)

        def proc():
            grant = yield from cluster.protocol.acquire(txn, page, False, None)
            access = PageAccess(page, write=False)
            txn.accesses.append(access)
            yield from cluster.nodes[node].buffer.access(txn, access, grant)
            yield from cluster.protocol.commit_release(txn)

        drive(cluster, proc())
        return txn

    def test_first_remote_read_grants_authorization(self):
        cluster = self.make_opt_cluster()
        page = local_page(cluster, node=1)
        self._warm_auth(cluster, 1, 0, page)
        assert page in cluster.nodes[0].auth_cache

    def test_subsequent_read_is_local(self):
        cluster = self.make_opt_cluster()
        page = local_page(cluster, node=1)
        self._warm_auth(cluster, 1, 0, page)
        messages_before = cluster.nodes[0].comm.sent_short
        txn = make_txn(2, 0)
        grant = drive(cluster, cluster.protocol.acquire(txn, page, False, None))
        assert grant.local
        assert cluster.nodes[0].comm.sent_short == messages_before
        assert cluster.protocol.auth_read_locks == 1
        drive(cluster, cluster.protocol.commit_release(txn))

    def test_write_revokes_authorizations(self):
        cluster = self.make_opt_cluster()
        page = local_page(cluster, node=1)
        self._warm_auth(cluster, 1, 0, page)
        revocations_before = cluster.protocol.revocations
        commit_modification(cluster, 2, node=1, page=page)
        assert cluster.protocol.revocations == revocations_before + 1
        assert page not in cluster.nodes[0].auth_cache

    def test_revocation_waits_for_local_readers(self):
        cluster = self.make_opt_cluster()
        page = local_page(cluster, node=1)
        self._warm_auth(cluster, 1, 0, page)
        sim = cluster.sim
        order = []

        def long_reader():
            txn = make_txn(2, 0)
            yield from cluster.protocol.acquire(txn, page, False, None)
            yield sim.timeout(0.050)
            order.append(("reader-release", sim.now))
            yield from cluster.protocol.commit_release(txn)

        def writer():
            yield sim.timeout(0.001)
            txn = make_txn(3, 1)
            yield from cluster.protocol.acquire(txn, page, True, None)
            order.append(("writer-granted", sim.now))
            yield from cluster.protocol.abort_release(txn)

        sim.process(long_reader())
        sim.process(writer())
        sim.run(until=sim.now + 10.0)
        assert order[0][0] == "reader-release"
        assert order[1][0] == "writer-granted"
        assert order[1][1] >= order[0][1]


class TestAbortPaths:
    def test_remote_deadlock_victim_gets_abort_reply(self):
        cluster = make_cluster()
        layout = cluster.layout
        sim = cluster.sim
        # Both pages have their GLA at node 1; transactions run at 0.
        page_a = layout.branch_teller_page(layout.config.branches_per_node)
        page_b = layout.branch_teller_page(layout.config.branches_per_node + 1)
        outcomes = {}

        def proc(txn, first, second):
            try:
                yield from cluster.protocol.acquire(txn, first, True, None)
                yield sim.timeout(0.002)
                yield from cluster.protocol.acquire(txn, second, True, None)
                outcomes[txn.txn_id] = "ok"
                yield sim.timeout(0.01)
                yield from cluster.protocol.commit_release(txn)
            except TransactionAborted:
                outcomes[txn.txn_id] = "aborted"
                yield from cluster.protocol.abort_release(txn)

        sim.process(proc(make_txn(1, 0), page_a, page_b))
        sim.process(proc(make_txn(2, 0), page_b, page_a))
        sim.run(until=sim.now + 20.0)
        assert outcomes == {1: "ok", 2: "aborted"}

    def test_abort_release_frees_remote_locks(self):
        cluster = make_cluster()
        page = local_page(cluster, node=1)
        txn = make_txn(1, 0)

        def proc():
            yield from cluster.protocol.acquire(txn, page, True, None)
            yield from cluster.protocol.abort_release(txn)
            yield cluster.sim.timeout(0.1)  # release message in flight

        drive(cluster, proc())
        other = make_txn(2, 1)
        grant = drive(cluster, cluster.protocol.acquire(other, page, True, None))
        assert grant.seqno == 0  # no modification was published
