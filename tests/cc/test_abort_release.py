"""Regression tests: ``abort_release`` is idempotent and leak-free.

The release paths of both lock-based protocols used to sweep
``txn.held_locks`` up front and then release the swept set, so a
second (or concurrently running) ``abort_release`` for the same
transaction -- which happens when a deadlock-victim restart races a
crash-triggered abort -- would try to release locks that were no
longer held and blow up (GEM) or re-send release messages for them
(PCL).  Pages must leave ``held_locks`` only as their release is
actually applied, and a repeated call must find nothing left to do.
"""

from tests.helpers import drive_cluster as drive
from tests.helpers import make_txn, quiesced_cluster


def page_of_node(cluster, node, offset=0):
    branch = node * cluster.layout.config.branches_per_node + offset
    return cluster.layout.branch_teller_page(branch)


def acquire_pages(cluster, txn, pages, write=True):
    def proc():
        for page in pages:
            yield from cluster.protocol.acquire(txn, page, write, None)

    drive(cluster, proc())


def assert_no_leaks(cluster, txn):
    assert not txn.held_locks
    for table in cluster.protocol.lock_tables():
        for page in list(table._entries):
            assert table.holds(txn.txn_id, page) is None, page
    assert cluster.protocol.num_blocked() == 0


class TestRepeatedAbort:
    def test_gem_double_abort_is_noop(self):
        cluster = quiesced_cluster(num_nodes=3, coupling="gem")
        txn = make_txn(1, 0)
        pages = [page_of_node(cluster, 0), page_of_node(cluster, 1)]
        acquire_pages(cluster, txn, pages)

        drive(cluster, cluster.protocol.abort_release(txn))
        assert_no_leaks(cluster, txn)
        # Pre-fix this raised (releasing locks no longer held).
        drive(cluster, cluster.protocol.abort_release(txn))
        assert_no_leaks(cluster, txn)

    def test_pcl_double_abort_is_noop(self):
        cluster = quiesced_cluster(num_nodes=3, coupling="pcl")
        txn = make_txn(1, 0)
        pages = [page_of_node(cluster, 0), page_of_node(cluster, 1),
                 page_of_node(cluster, 2)]
        acquire_pages(cluster, txn, pages)

        def double_abort():
            yield from cluster.protocol.abort_release(txn)
            yield from cluster.protocol.abort_release(txn)
            # Drain the release messages at the remote GLAs.
            yield cluster.sim.timeout(0.1)

        drive(cluster, double_abort())
        assert_no_leaks(cluster, txn)

    def test_mvcc_double_abort_is_noop(self):
        for coupling in ("gem", "pcl"):
            cluster = quiesced_cluster(
                num_nodes=3, coupling=coupling, protocol="mvcc"
            )
            txn = make_txn(1, 0)
            pages = [page_of_node(cluster, 0), page_of_node(cluster, 1)]
            acquire_pages(cluster, txn, pages)

            def double_abort():
                yield from cluster.protocol.abort_release(txn)
                yield from cluster.protocol.abort_release(txn)
                yield cluster.sim.timeout(0.1)

            drive(cluster, double_abort())
            assert_no_leaks(cluster, txn)

    def test_dgcc_double_abort_is_noop(self):
        for coupling in ("gem", "pcl"):
            cluster = quiesced_cluster(
                num_nodes=3, coupling=coupling, protocol="dgcc"
            )
            txn = make_txn(1, 0)
            txn.accesses = []
            pages = [page_of_node(cluster, 0), page_of_node(cluster, 1)]
            acquire_pages(cluster, txn, pages)

            def double_abort():
                yield from cluster.protocol.abort_release(txn)
                yield from cluster.protocol.abort_release(txn)
                yield cluster.sim.timeout(0.1)

            drive(cluster, double_abort())
            assert_no_leaks(cluster, txn)


class TestConcurrentAbort:
    """Two aborts of one transaction racing each other (deadlock-victim
    restart vs crash cleanup) must release every lock exactly once."""

    def test_gem_concurrent_aborts(self):
        cluster = quiesced_cluster(num_nodes=3, coupling="gem")
        txn = make_txn(1, 0)
        pages = [page_of_node(cluster, 0), page_of_node(cluster, 1),
                 page_of_node(cluster, 1, offset=1)]
        acquire_pages(cluster, txn, pages)

        def race():
            first = cluster.sim.process(cluster.protocol.abort_release(txn))
            second = cluster.sim.process(cluster.protocol.abort_release(txn))
            yield cluster.sim.all_of([first, second])

        drive(cluster, race())
        assert_no_leaks(cluster, txn)

    def test_pcl_concurrent_aborts(self):
        cluster = quiesced_cluster(num_nodes=3, coupling="pcl")
        txn = make_txn(1, 0)
        pages = [page_of_node(cluster, 0), page_of_node(cluster, 1),
                 page_of_node(cluster, 2)]
        acquire_pages(cluster, txn, pages)

        def race():
            first = cluster.sim.process(cluster.protocol.abort_release(txn))
            second = cluster.sim.process(cluster.protocol.abort_release(txn))
            yield cluster.sim.all_of([first, second])
            yield cluster.sim.timeout(0.1)

        drive(cluster, race())
        assert_no_leaks(cluster, txn)
