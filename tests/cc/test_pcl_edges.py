"""Additional PCL edge cases."""

from repro.workload.transaction import PageAccess

from tests.helpers import drive_cluster as drive
from tests.helpers import make_txn, quiesced_cluster


def make_cluster(**overrides):
    overrides.setdefault("num_nodes", 3)
    overrides.setdefault("coupling", "pcl")
    return quiesced_cluster(**overrides)


def page_of_node(cluster, node, offset=0):
    branch = node * cluster.layout.config.branches_per_node + offset
    return cluster.layout.branch_teller_page(branch)


class TestMultiGlaRelease:
    def test_release_messages_one_per_remote_gla(self):
        cluster = make_cluster()
        txn = make_txn(1, 0)
        pages = [page_of_node(cluster, 1), page_of_node(cluster, 2),
                 page_of_node(cluster, 2, offset=1)]

        def proc():
            for page in pages:
                yield from cluster.protocol.acquire(txn, page, False, None)
            before = cluster.nodes[0].comm.sent_short
            yield from cluster.protocol.commit_release(txn)
            return cluster.nodes[0].comm.sent_short - before

        # Locks at two remote GLAs -> exactly two release messages.
        assert drive(cluster, proc()) == 2

    def test_local_and_remote_mix(self):
        cluster = make_cluster()
        txn = make_txn(1, 0)
        local = page_of_node(cluster, 0)
        remote = page_of_node(cluster, 1)

        def proc():
            g1 = yield from cluster.protocol.acquire(txn, local, False, None)
            g2 = yield from cluster.protocol.acquire(txn, remote, False, None)
            assert g1.local and not g2.local
            yield from cluster.protocol.commit_release(txn)
            yield cluster.sim.timeout(0.05)

        drive(cluster, proc())
        # Both GLAs show the locks released.
        assert cluster.protocol.tables[0].holds(1, local) is None
        assert cluster.protocol.tables[1].holds(1, remote) is None


class TestSeqnoPropagation:
    def test_seqno_visible_to_next_locker_after_remote_commit(self):
        cluster = make_cluster()
        page = page_of_node(cluster, 1)
        writer = make_txn(1, 0)

        def write_proc():
            grant = yield from cluster.protocol.acquire(writer, page, True, None)
            access = PageAccess(page, write=True)
            writer.accesses.append(access)
            yield from cluster.nodes[0].buffer.access(writer, access, grant)
            for p, v in writer.modified.items():
                cluster.ledger.install_commit(p, v)
            yield from cluster.protocol.commit_release(writer)
            cluster.nodes[0].buffer.finish_commit(writer)

        drive(cluster, write_proc())

        reader = make_txn(2, 2)
        grant = drive(cluster, cluster.protocol.acquire(reader, page, False, None))
        # Even though the release travelled as a message, the lock was
        # only grantable after the GLA applied seqno 1.
        assert grant.seqno == 1

    def test_waiter_at_gla_gets_post_release_seqno(self):
        cluster = make_cluster()
        page = page_of_node(cluster, 1)
        sim = cluster.sim
        results = {}

        def writer_proc():
            txn = make_txn(1, 0)
            grant = yield from cluster.protocol.acquire(txn, page, True, None)
            access = PageAccess(page, write=True)
            txn.accesses.append(access)
            yield from cluster.nodes[0].buffer.access(txn, access, grant)
            yield sim.timeout(0.02)
            for p, v in txn.modified.items():
                cluster.ledger.install_commit(p, v)
            yield from cluster.protocol.commit_release(txn)
            cluster.nodes[0].buffer.finish_commit(txn)

        def reader_proc():
            yield sim.timeout(0.005)  # arrive while the writer holds X
            txn = make_txn(2, 2)
            grant = yield from cluster.protocol.acquire(txn, page, False, None)
            results["seqno"] = grant.seqno
            results["supplied"] = grant.page_supplied
            yield from cluster.protocol.commit_release(txn)

        sim.process(writer_proc())
        sim.process(reader_proc())
        sim.run(until=sim.now + 20.0)
        assert results["seqno"] == 1
        # The GLA received the page with the release: it can supply it.
        assert results["supplied"]


class TestRevocationEdges:
    def test_writer_with_sole_authorization_not_revoked(self):
        cluster = make_cluster(pcl_read_optimization=True)
        page = page_of_node(cluster, 1)
        # Node 0 warms an authorization.
        reader = make_txn(1, 0)

        def warm():
            grant = yield from cluster.protocol.acquire(reader, page, False, None)
            access = PageAccess(page, write=False)
            reader.accesses.append(access)
            yield from cluster.nodes[0].buffer.access(reader, access, grant)
            yield from cluster.protocol.commit_release(reader)

        drive(cluster, warm())
        # The same node then writes: its own authorization must not
        # trigger a revoke round against itself.
        writer = make_txn(2, 0)

        def write():
            yield from cluster.protocol.acquire(writer, page, True, None)
            yield from cluster.protocol.abort_release(writer)

        before = cluster.protocol.revocations
        drive(cluster, write())
        assert cluster.protocol.revocations == before


class TestRevokeOrder:
    def test_authorizations_revoked_in_node_order(self):
        """Revoke messages must go out in sorted node order.

        ``auth_nodes`` is a set; ``{8, 1}`` iterates as ``[8, 1]``
        under CPython's hashing, and the message send order feeds the
        event schedule.  Pre-fix the revokes followed set order.
        """
        cluster = make_cluster(num_nodes=9)
        protocol = cluster.protocol
        gla_node = cluster.nodes[0]
        sent = []

        def fake_send(dst, kind, payload, **kwargs):
            sent.append(dst)
            payload["ack"].succeed({})
            return
            yield  # pragma: no cover - makes this a generator

        gla_node.comm.send = fake_send

        class Entry:
            auth_nodes = {8, 1}

        assert list(Entry.auth_nodes) == [8, 1]  # the hazardous order
        drive(cluster, protocol._revoke_authorizations(
            gla_node, page_of_node(cluster, 0), Entry, requester=0))
        assert sent == [1, 8]
        assert Entry.auth_nodes == set()
        assert protocol.revocations == 2
