"""Unit tests for the GEM locking protocol (driven on a quiesced cluster)."""

import pytest

from repro.cc.base import PageSource
from repro.errors import TransactionAborted

from tests.helpers import drive_cluster as drive
from tests.helpers import make_txn as _make_txn
from tests.helpers import quiesced_cluster


def make_cluster(**overrides):
    overrides.setdefault("routing", "random")
    return quiesced_cluster(**overrides)


def make_txn(cluster, txn_id, node):
    return _make_txn(txn_id, node)


PAGE = (0, 7)


class TestAcquire:
    def test_acquire_returns_current_seqno(self):
        cluster = make_cluster()
        txn = make_txn(cluster, 1, 0)
        grant = drive(cluster, cluster.protocol.acquire(txn, PAGE, False, None))
        assert grant.seqno == 0
        assert grant.source is PageSource.STORAGE
        assert PAGE in txn.held_locks

    def test_acquire_costs_entry_accesses(self):
        cluster = make_cluster()
        txn = make_txn(cluster, 1, 0)
        before = cluster.gem.entry_accesses
        drive(cluster, cluster.protocol.acquire(txn, PAGE, False, None))
        assert cluster.gem.entry_accesses == before + 2

    def test_acquire_holds_cpu_during_entry_access(self):
        cluster = make_cluster()
        txn = make_txn(cluster, 1, 0)
        drive(cluster, cluster.protocol.acquire(txn, PAGE, False, None))
        # 2 entry ops at 2us plus 2x100 instructions at 10 MIPS.
        assert cluster.sim.now == pytest.approx(2 * 2e-6 + 2 * 100 / 10e6)

    def test_conflicting_acquire_waits_for_release(self):
        cluster = make_cluster()
        holder = make_txn(cluster, 1, 0)
        waiter = make_txn(cluster, 2, 1)
        sim = cluster.sim
        log = []

        def holder_proc():
            yield from cluster.protocol.acquire(holder, PAGE, True, None)
            yield sim.timeout(0.010)
            yield from cluster.protocol.commit_release(holder)
            log.append(("released", sim.now))

        def waiter_proc():
            yield sim.timeout(0.001)
            yield from cluster.protocol.acquire(waiter, PAGE, True, None)
            log.append(("granted", sim.now))

        sim.process(holder_proc())
        sim.process(waiter_proc())
        sim.run(until=sim.now + 50.0)
        assert log[0][0] == "released"
        assert log[1][0] == "granted"
        assert log[1][1] >= log[0][1]


class TestCoherency:
    def _commit_modification(self, cluster, txn_id, node, page=PAGE):
        txn = make_txn(cluster, txn_id, node)

        def proc():
            grant = yield from cluster.protocol.acquire(txn, page, True, None)
            buffer = cluster.nodes[node].buffer
            from repro.workload.transaction import PageAccess

            access = PageAccess(page, write=True)
            txn.accesses.append(access)
            yield from buffer.access(txn, access, grant)
            for p, v in txn.modified.items():
                cluster.ledger.install_commit(p, v)
            yield from cluster.protocol.commit_release(txn)
            buffer.finish_commit(txn)

        drive(cluster, proc())
        return txn

    def test_noforce_modification_records_owner(self):
        cluster = make_cluster(update_strategy="noforce")
        self._commit_modification(cluster, 1, node=0)
        entry = cluster.protocol.glt.entry(PAGE)
        assert entry.seqno == 1
        assert entry.owner == 0

    def test_force_modification_clears_owner(self):
        cluster = make_cluster(update_strategy="force")
        self._commit_modification(cluster, 1, node=0)
        entry = cluster.protocol.glt.entry(PAGE)
        assert entry.seqno == 1
        assert entry.owner is None

    def test_reader_at_other_node_directed_to_owner(self):
        cluster = make_cluster(update_strategy="noforce")
        self._commit_modification(cluster, 1, node=0)
        reader = make_txn(cluster, 2, 1)
        grant = drive(cluster, cluster.protocol.acquire(reader, PAGE, False, None))
        assert grant.source is PageSource.OWNER
        assert grant.owner_node == 0

    def test_owner_itself_reads_from_storage_path(self):
        cluster = make_cluster(update_strategy="noforce")
        self._commit_modification(cluster, 1, node=0)
        reader = make_txn(cluster, 2, 0)
        grant = drive(cluster, cluster.protocol.acquire(reader, PAGE, False, None))
        assert grant.source is PageSource.STORAGE

    def test_page_request_returns_version_from_owner(self):
        cluster = make_cluster(update_strategy="noforce")
        self._commit_modification(cluster, 1, node=0)
        reader = make_txn(cluster, 2, 1)

        def proc():
            grant = yield from cluster.protocol.acquire(reader, PAGE, False, None)
            version = yield from cluster.protocol.request_page_from_owner(
                reader, PAGE, grant
            )
            return version

        assert drive(cluster, proc()) == 1
        # One short request + one long reply travelled the network.
        assert cluster.nodes[1].comm.sent_short == 1
        assert cluster.nodes[0].comm.sent_long == 1

    def test_page_request_fails_over_when_owner_dropped_page(self):
        cluster = make_cluster(update_strategy="noforce")
        txn = self._commit_modification(cluster, 1, node=0)
        # Simulate the owner having written back and dropped the page.
        drive(
            cluster,
            cluster.nodes[0].storage.write(PAGE, 1, cluster.nodes[0].cpu),
        )
        cluster.nodes[0].buffer._frames.clear()
        reader = make_txn(cluster, 2, 1)

        def proc():
            grant = yield from cluster.protocol.acquire(reader, PAGE, False, None)
            version = yield from cluster.protocol.request_page_from_owner(
                reader, PAGE, grant
            )
            return version

        assert drive(cluster, proc()) is None
        assert cluster.protocol.page_requests_failed == 1

    def test_write_back_hook_clears_owner(self):
        cluster = make_cluster(update_strategy="noforce")
        self._commit_modification(cluster, 1, node=0)
        drive(cluster, cluster.protocol.page_written_back(0, PAGE, 1))
        assert cluster.protocol.glt.entry(PAGE).owner is None

    def test_write_back_of_stale_version_keeps_owner(self):
        cluster = make_cluster(update_strategy="noforce")
        self._commit_modification(cluster, 1, node=0)
        self._commit_modification(cluster, 2, node=1)
        # Node 0 write-back of its old version 1 must not clear node
        # 1's ownership of version 2.
        drive(cluster, cluster.protocol.page_written_back(0, PAGE, 1))
        assert cluster.protocol.glt.entry(PAGE).owner == 1

    def test_page_transfer_via_gem_extension(self):
        cluster = make_cluster(update_strategy="noforce", page_transfer_via_gem=True)
        self._commit_modification(cluster, 1, node=0)
        reader = make_txn(cluster, 2, 1)

        def proc():
            grant = yield from cluster.protocol.acquire(reader, PAGE, False, None)
            version = yield from cluster.protocol.request_page_from_owner(
                reader, PAGE, grant
            )
            return version

        pages_before = cluster.gem.page_accesses
        assert drive(cluster, proc()) == 1
        # Two GEM page accesses (owner write + requester read), no
        # network messages.
        assert cluster.gem.page_accesses == pages_before + 2
        assert cluster.nodes[1].comm.sent_short == 0


class TestDeadlockIntegration:
    def test_deadlock_aborts_youngest(self):
        cluster = make_cluster()
        sim = cluster.sim
        t1 = make_txn(cluster, 1, 0)
        t2 = make_txn(cluster, 2, 1)
        page_a, page_b = (0, 1), (0, 2)
        outcomes = {}

        def proc(txn, first, second):
            try:
                yield from cluster.protocol.acquire(txn, first, True, None)
                yield sim.timeout(0.001)
                yield from cluster.protocol.acquire(txn, second, True, None)
                outcomes[txn.txn_id] = "ok"
                yield sim.timeout(0.005)
                yield from cluster.protocol.commit_release(txn)
            except TransactionAborted:
                outcomes[txn.txn_id] = "aborted"
                yield from cluster.protocol.abort_release(txn)

        sim.process(proc(t1, page_a, page_b))
        sim.process(proc(t2, page_b, page_a))
        sim.run(until=sim.now + 50.0)
        assert outcomes[2] == "aborted"
        assert outcomes[1] == "ok"
        assert cluster.detector.deadlocks_detected == 1
