"""Unit tests for the GEM lock-authorization refinement (section 2)."""

from tests.helpers import drive_cluster as drive
from tests.helpers import make_txn, quiesced_cluster


def make_cluster(**overrides):
    overrides.setdefault("gem_lock_authorizations", True)
    return quiesced_cluster(**overrides)


PAGE = (0, 7)


def acquire_and_release(cluster, txn_id, node, page=PAGE, write=False):
    txn = make_txn(txn_id, node)

    def proc():
        yield from cluster.protocol.acquire(txn, page, write, None)
        yield from cluster.protocol.commit_release(txn)

    drive(cluster, proc())
    return txn


class TestAuthorizationGrant:
    def test_sole_interest_grants_authorization(self):
        cluster = make_cluster()
        acquire_and_release(cluster, 1, node=0)
        assert PAGE in cluster.nodes[0].gem_auth

    def test_authorized_request_skips_gem(self):
        cluster = make_cluster()
        acquire_and_release(cluster, 1, node=0)
        before = cluster.gem.entry_accesses
        acquire_and_release(cluster, 2, node=0)
        assert cluster.gem.entry_accesses == before
        assert cluster.protocol.authorized_lock_requests == 1

    def test_disabled_by_default(self):
        cluster = make_cluster(gem_lock_authorizations=False)
        acquire_and_release(cluster, 1, node=0)
        assert PAGE not in cluster.nodes[0].gem_auth
        before = cluster.gem.entry_accesses
        acquire_and_release(cluster, 2, node=0)
        assert cluster.gem.entry_accesses > before


class TestRevocation:
    def test_other_node_revokes_authorization(self):
        cluster = make_cluster()
        acquire_and_release(cluster, 1, node=0)
        assert PAGE in cluster.nodes[0].gem_auth
        acquire_and_release(cluster, 2, node=1)
        assert PAGE not in cluster.nodes[0].gem_auth
        assert cluster.protocol.authorization_revocations == 1
        # The revoke/ack exchange travelled as messages.
        assert cluster.nodes[1].comm.sent_short >= 1
        assert cluster.nodes[0].comm.sent_short >= 1

    def test_authorization_moves_to_new_sole_node(self):
        cluster = make_cluster()
        acquire_and_release(cluster, 1, node=0)
        acquire_and_release(cluster, 2, node=1)
        assert PAGE in cluster.nodes[1].gem_auth

    def test_correctness_under_cross_node_writes(self):
        """Writes bounce between nodes; the ledger verifies coherency."""
        cluster = make_cluster()
        for i in range(6):
            node = i % 2
            txn = make_txn(100 + i, node)

            def proc(txn=txn, node=node):
                grant = yield from cluster.protocol.acquire(txn, PAGE, True, None)
                from repro.workload.transaction import PageAccess

                access = PageAccess(PAGE, write=True)
                txn.accesses.append(access)
                yield from cluster.nodes[node].buffer.access(txn, access, grant)
                for p, v in txn.modified.items():
                    cluster.ledger.install_commit(p, v)
                yield from cluster.protocol.commit_release(txn)
                cluster.nodes[node].buffer.finish_commit(txn)

            drive(cluster, proc())
        assert cluster.ledger.committed_version(PAGE) == 6


class TestEndToEnd:
    def test_affinity_workload_eliminates_most_gem_traffic(self):
        from repro.system.runner import run_simulation

        from tests.helpers import system_config

        base = system_config()
        plain = run_simulation(base)
        refined = run_simulation(base.replace(gem_lock_authorizations=True))
        assert refined.gem_utilization < plain.gem_utilization * 0.7
        assert refined.completed > 100
