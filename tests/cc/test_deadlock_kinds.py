"""Regression tests: non-lock waits never become deadlock victims.

MVCC commit validation and DGCC epoch barriers park transactions and
register with the detector so crash cleanup can cancel the wait -- but
those waits hold no lock-queue position and cannot close a waits-for
cycle.  The detector used to treat every registration as a lock wait;
a validating transaction that still appeared in a lock table's holder
list could then be misreported as the victim of a cycle it was not
part of.
"""

from repro.cc.deadlock import DeadlockDetector
from repro.node.lock_table import LockMode, LockTable

X = LockMode.EXCLUSIVE


def noop():
    pass


class TestNonLockKinds:
    def test_validation_wait_triggers_no_cycle_search(self):
        detector = DeadlockDetector()
        table = LockTable()
        aborted = []
        # A real lock cycle between 1 and 2 exists in the table ...
        table.request(1, (0, 1), X, noop)
        table.request(2, (0, 2), X, noop)
        table.request(1, (0, 2), X, noop)
        detector.register_block(1, table, lambda: aborted.append(1))
        table.request(2, (0, 1), X, noop)
        # ... but transaction 3's validation wait must not resolve it:
        # a non-lock registration runs no cycle search at all.
        victim = detector.register_block(
            3, None, lambda: aborted.append(3), kind="validation"
        )
        assert victim is None
        assert detector.deadlocks_detected == 0
        assert aborted == []

    def test_validation_waiter_is_never_the_victim(self):
        detector = DeadlockDetector()
        table = LockTable()
        aborted = []
        # Transaction 9 (youngest) holds a lock and parks in validation.
        table.request(9, (0, 1), X, noop)
        detector.register_block(
            9, table, lambda: aborted.append(9), kind="validation"
        )
        # 1 and 2 deadlock; 9 waits on nothing, so the cycle is 1<->2
        # and the victim must be 2 -- not 9, even though 9 is youngest
        # and registered with the same table.
        table.request(1, (0, 2), X, noop)
        table.request(2, (0, 3), X, noop)
        table.request(1, (0, 3), X, noop)
        detector.register_block(1, table, lambda: aborted.append(1))
        table.request(2, (0, 2), X, noop)
        victim = detector.register_block(2, table, lambda: aborted.append(2))
        assert victim == 2
        assert aborted == [2]
        assert detector.is_blocked(9)

    def test_barrier_wait_contributes_no_edges(self):
        detector = DeadlockDetector()
        table = LockTable()
        aborted = []
        # 1 waits for 2's lock; 2 is parked at a DGCC barrier.  Even if
        # a bogus table were attached to the barrier registration there
        # is no 2 -> 1 edge, so no cycle may be reported.
        table.request(2, (0, 1), X, noop)
        table.request(1, (0, 1), X, noop)
        detector.register_block(
            2, table, lambda: aborted.append(2), kind="barrier"
        )
        victim = detector.register_block(1, table, lambda: aborted.append(1))
        assert victim is None
        assert detector.deadlocks_detected == 0
        assert aborted == []

    def test_crash_cleanup_still_cancels_non_lock_waits(self):
        detector = DeadlockDetector()
        cancelled = []
        detector.register_block(
            7, None, lambda: cancelled.append(7), kind="validation"
        )
        detector.register_block(
            8, None, lambda: cancelled.append(8), kind="barrier"
        )
        assert detector.abort_blocked(7)
        assert detector.abort_blocked(8)
        assert cancelled == [7, 8]
        assert not detector.is_blocked(7)
        assert not detector.is_blocked(8)
