"""simsan: identity with the unsanitized engine, plus seeded violations.

The sanitizer's contract is *observation only*: a sanitized run must
produce byte-identical model results to an unsanitized one, and a
healthy run must report zero violations.  Each seeded-corruption test
then breaks one invariant by hand and asserts the matching check
catches it with a structured violation.
"""

import pytest

from repro.obs.recorder import NULL_RECORDER
from repro.sanitize import (
    SanitizedRecorder,
    SanitizedSimulator,
    SanitizerError,
    SanitizerReport,
    SimSanitizer,
    sanitize_enabled,
)
from repro.sanitize.sanitizer import ENV_FLAG
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.runner import run_simulation


def small_config(**overrides):
    base = dict(
        num_nodes=2,
        warmup_time=0.5,
        measure_time=1.0,
        random_seed=7,
    )
    base.update(overrides)
    return SystemConfig(**base)


def comparable(result):
    data = result.as_dict()
    data.pop("wall_clock_seconds", None)
    return data


class TestEnablement:
    def test_config_flag_enables(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        assert sanitize_enabled(True)
        assert not sanitize_enabled(False)

    def test_env_flag_enables(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        assert sanitize_enabled(False)
        monkeypatch.setenv(ENV_FLAG, "0")
        assert not sanitize_enabled(False)

    def test_env_flag_installs_the_sanitizer_on_the_cluster(self, monkeypatch):
        monkeypatch.setenv(ENV_FLAG, "1")
        cluster = Cluster(small_config())
        assert cluster.sanitizer is not None
        assert isinstance(cluster.sim, SanitizedSimulator)
        assert isinstance(cluster.recorder, SanitizedRecorder)

    def test_off_by_default(self, monkeypatch):
        monkeypatch.delenv(ENV_FLAG, raising=False)
        cluster = Cluster(small_config())
        assert cluster.sanitizer is None
        assert not isinstance(cluster.sim, SanitizedSimulator)


class TestIdentity:
    @pytest.mark.parametrize("coupling", ["gem", "pcl", "rdma"])
    def test_sanitized_run_is_bit_identical(self, coupling):
        config = small_config(coupling=coupling)
        plain = run_simulation(config)
        sanitized = run_simulation(config.replace(sanitize=True))
        assert comparable(plain) == comparable(sanitized)

    def test_healthy_run_reports_zero_violations(self):
        cluster = Cluster(small_config(sanitize=True))
        cluster.sim.run(until=1.0)
        report = cluster.sanitizer.finish(cluster)
        assert report.ok
        assert report.events_checked > 0
        assert report.resources_checked > 0
        assert report.lock_tables_checked > 0


class TestMonotonicClock:
    def test_clock_rewind_is_caught(self):
        report = SanitizerReport()
        sim = SanitizedSimulator(report)
        sim.timeout(0.5)
        rewinder = sim.timeout(1.0)

        def rewind(_event):
            sim.now = 0.25

        rewinder.callbacks.append(rewind)
        sim.run(until=2.0)
        assert [v.check for v in report.violations] == ["monotonic-time"]
        assert "clock moved backwards" in report.violations[0].detail

    def test_normal_schedule_is_clean(self):
        report = SanitizerReport()
        sim = SanitizedSimulator(report)
        for delay in (0.1, 0.2, 0.7):
            sim.timeout(delay)
        sim.run(until=1.0)
        assert report.ok
        assert report.events_checked == 3
        assert sim.now == 1.0


class TestRecorderShadow:
    def test_balanced_spans_are_clean(self):
        report = SanitizerReport()
        recorder = SanitizedRecorder(NULL_RECORDER, report)
        recorder.txn_begin("t1", 0, 0.0)
        with recorder.span("t1", "cpu"):
            with recorder.span("t1", "io"):
                pass
        recorder.txn_end("t1", 1.0)
        assert report.ok
        assert report.spans_checked == 2

    def test_txn_end_with_open_span_is_caught(self):
        report = SanitizerReport()
        recorder = SanitizedRecorder(NULL_RECORDER, report)
        recorder.txn_begin("t1", 0, 0.0)
        # simlint: disable-next=SIM002 -- deliberately unbalanced to seed the violation
        recorder.span("t1", "cpu").__enter__()
        recorder.txn_end("t1", 1.0)
        assert [v.check for v in report.violations] == ["span-balance"]
        assert "open span" in report.violations[0].detail

    def test_mismatched_pop_order_is_caught(self):
        report = SanitizerReport()
        recorder = SanitizedRecorder(NULL_RECORDER, report)
        recorder.txn_begin("t1", 0, 0.0)
        # simlint: disable-next=SIM002 -- deliberately unbalanced to seed the violation
        outer = recorder.span("t1", "cpu").__enter__()
        # simlint: disable-next=SIM002 -- deliberately unbalanced to seed the violation
        inner = recorder.span("t1", "io").__enter__()
        outer.__exit__(None, None, None)  # pops "cpu" while "io" is open
        inner.__exit__(None, None, None)
        assert "span-balance" in [v.check for v in report.violations]
        assert any("innermost" in v.detail for v in report.violations)

    def test_double_exit_pops_with_nothing_open(self):
        report = SanitizerReport()
        recorder = SanitizedRecorder(NULL_RECORDER, report)
        recorder.txn_begin("t1", 0, 0.0)
        # simlint: disable-next=SIM002 -- deliberately unbalanced to seed the violation
        span = recorder.span("t1", "cpu").__enter__()
        span.__exit__(None, None, None)
        span.__exit__(None, None, None)
        assert any(
            "no span open" in v.detail for v in report.violations
        ), report.violations

    def test_backwards_interval_is_caught(self):
        report = SanitizerReport()
        recorder = SanitizedRecorder(NULL_RECORDER, report)
        recorder.interval(0, "cpu", 2.0, 1.0)
        assert [v.check for v in report.violations] == ["span-balance"]
        assert "ends before it starts" in report.violations[0].detail


class TestHorizonChecks:
    def run_cluster(self, **overrides):
        cluster = Cluster(small_config(sanitize=True, **overrides))
        cluster.sim.run(until=1.0)
        return cluster

    def test_overfull_resource_is_caught(self):
        cluster = self.run_cluster()
        mpl = cluster.nodes[0].mpl
        mpl._busy = mpl.capacity + 1
        with pytest.raises(SanitizerError) as excinfo:
            cluster.sanitizer.finish(cluster)
        checks = [v.check for v in excinfo.value.report.violations]
        assert "resource-accounting" in checks
        assert "outside [0," in str(excinfo.value)

    def test_phantom_blocked_txn_is_caught(self):
        cluster = self.run_cluster(coupling="gem")
        table = cluster.protocol.glt
        table._blocked[999_999] = next(iter(table._entries), "p0")
        with pytest.raises(SanitizerError) as excinfo:
            cluster.sanitizer.finish(cluster)
        assert any(
            v.check == "lock-grants" and "999999" in v.detail
            for v in excinfo.value.report.violations
        )

    def test_torn_rdma_install_is_caught(self):
        cluster = self.run_cluster(coupling="rdma")
        pool = cluster.protocol.rdma.pool
        assert pool, "rdma run must leave pages resident in the pool"
        page = next(iter(pool))
        pool[page] = cluster.ledger.committed_version(page) + 1
        with pytest.raises(SanitizerError) as excinfo:
            cluster.sanitizer.finish(cluster)
        assert any(
            v.check == "pool-ledger" and "torn install" in v.detail
            for v in excinfo.value.report.violations
        )

    def test_sanitize_finish_is_a_no_op_without_the_sanitizer(self):
        cluster = Cluster(small_config())
        cluster.sim.run(until=1.0)
        cluster.sanitize_finish()  # must not raise

    def test_report_summary_lists_every_violation(self):
        report = SanitizerReport()
        report.record("resource-accounting", "node0.cpu", "busy count -1")
        report.record("lock-grants", "glt page 3", "held and waiting")
        summary = report.summary()
        assert "2 violation(s)" in summary
        assert "[resource-accounting] node0.cpu" in summary
        assert "[lock-grants] glt page 3" in summary
