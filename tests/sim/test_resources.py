"""Unit tests for Resource and Store."""

import pytest

from repro.sim import Resource, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestResourceBasics:
    def test_invalid_capacity_rejected(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_immediate_grant_when_idle(self, sim):
        res = Resource(sim, capacity=1)
        grants = []

        def proc():
            yield res.request()
            grants.append(sim.now)
            res.release()

        sim.process(proc())
        sim.run()
        assert grants == [0.0]

    def test_release_idle_resource_raises(self, sim):
        res = Resource(sim, capacity=1)
        with pytest.raises(RuntimeError):
            res.release()

    def test_fifo_queuing_single_server(self, sim):
        res = Resource(sim, capacity=1, name="cpu")
        log = []

        def job(tag, service):
            yield res.request()
            log.append(("start", tag, sim.now))
            yield sim.timeout(service)
            res.release()
            log.append(("end", tag, sim.now))

        sim.process(job("a", 2.0))
        sim.process(job("b", 1.0))
        sim.process(job("c", 1.0))
        sim.run()
        assert log == [
            ("start", "a", 0.0),
            ("end", "a", 2.0),
            ("start", "b", 2.0),
            ("end", "b", 3.0),
            ("start", "c", 3.0),
            ("end", "c", 4.0),
        ]

    def test_multi_server_parallelism(self, sim):
        res = Resource(sim, capacity=2)
        ends = []

        def job(service):
            yield from res.acquire(service)
            ends.append(sim.now)

        for _ in range(4):
            sim.process(job(1.0))
        sim.run()
        # Two run immediately, two queue behind them.
        assert ends == [1.0, 1.0, 2.0, 2.0]

    def test_holder_crash_with_release_in_finally_frees_unit(self, sim):
        res = Resource(sim, capacity=1)
        grants = []

        def holder():
            yield res.request()
            try:
                yield sim.timeout(2.0)
                raise ValueError("abort mid-hold")
            finally:
                res.release()

        def waiter():
            yield res.request()
            grants.append(sim.now)
            res.release()

        crashing = sim.process(holder())

        def supervisor():
            try:
                yield crashing
            except ValueError:
                pass

        sim.process(supervisor())
        sim.process(waiter())
        sim.run()
        assert grants == [2.0]
        assert res.busy == 0

    def test_busy_and_queue_counts(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            yield res.request()
            yield sim.timeout(5.0)
            res.release()

        def waiter():
            yield res.request()
            res.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run(until=1.0)
        assert res.busy == 1
        assert res.queue_length == 1
        sim.run()
        assert res.busy == 0
        assert res.queue_length == 0


class TestResourceStatistics:
    def test_utilization_single_job(self, sim):
        res = Resource(sim, capacity=1)

        def job():
            yield from res.acquire(4.0)

        sim.process(job())
        sim.run()
        sim.run(until=8.0)
        assert res.utilization() == pytest.approx(0.5)

    def test_utilization_multi_server(self, sim):
        res = Resource(sim, capacity=4)

        def job():
            yield from res.acquire(10.0)

        sim.process(job())
        sim.process(job())
        sim.run()
        assert res.utilization() == pytest.approx(0.5)

    def test_wait_time_tally(self, sim):
        res = Resource(sim, capacity=1)

        def job(service):
            yield from res.acquire(service)

        sim.process(job(3.0))
        sim.process(job(1.0))
        sim.run()
        assert res.wait_time.count == 2
        assert res.wait_time.mean == pytest.approx((0.0 + 3.0) / 2)

    def test_services_counter(self, sim):
        res = Resource(sim, capacity=2)

        def job():
            yield from res.acquire(1.0)

        for _ in range(5):
            sim.process(job())
        sim.run()
        assert res.services == 5

    def test_reset_stats_discards_history(self, sim):
        res = Resource(sim, capacity=1)

        def job():
            yield from res.acquire(10.0)

        sim.process(job())
        sim.run()
        res.reset_stats()
        sim.run(until=20.0)
        assert res.utilization() == pytest.approx(0.0)
        assert res.services == 0

    def test_mean_queue_length(self, sim):
        res = Resource(sim, capacity=1)

        def holder():
            yield from res.acquire(10.0)

        def waiter():
            yield res.request()
            res.release()

        sim.process(holder())
        sim.process(waiter())
        sim.run()
        # One waiter queued for the whole 10s interval.
        assert res.mean_queue_length() == pytest.approx(1.0)


class TestStore:
    def test_put_then_get(self, sim):
        store = Store(sim)
        seen = []

        def consumer():
            item = yield store.get()
            seen.append((sim.now, item))

        store.put("m1")
        sim.process(consumer())
        sim.run()
        assert seen == [(0.0, "m1")]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        seen = []

        def consumer():
            item = yield store.get()
            seen.append((sim.now, item))

        def producer():
            yield sim.timeout(3.0)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert seen == [(3.0, "late")]

    def test_fifo_item_order(self, sim):
        store = Store(sim)
        seen = []

        def consumer():
            for _ in range(3):
                item = yield store.get()
                seen.append(item)

        for item in ["a", "b", "c"]:
            store.put(item)
        sim.process(consumer())
        sim.run()
        assert seen == ["a", "b", "c"]

    def test_fifo_getter_order(self, sim):
        store = Store(sim)
        seen = []

        def consumer(tag):
            item = yield store.get()
            seen.append((tag, item))

        sim.process(consumer("first"))
        sim.process(consumer("second"))

        def producer():
            yield sim.timeout(1.0)
            store.put("x")
            store.put("y")

        sim.process(producer())
        sim.run()
        assert seen == [("first", "x"), ("second", "y")]

    def test_len_and_puts(self, sim):
        store = Store(sim)
        store.put(1)
        store.put(2)
        assert len(store) == 2
        assert store.puts == 2


class TestCancel:
    """Regression tests: aborting a waiter must not leak a unit."""

    def test_cancel_removes_queued_request(self, sim):
        res = Resource(sim, capacity=1)
        res.request()  # granted immediately, held forever
        waiting = res.request()
        assert res.queue_length == 1
        res.cancel(waiting)
        assert res.queue_length == 0
        res.release()
        assert res.busy == 0  # no grant went to the cancelled event

    def test_cancel_of_unknown_request_raises(self, sim):
        res = Resource(sim, capacity=1)
        from repro.sim.engine import Event

        with pytest.raises(ValueError):
            res.cancel(Event(sim))

    def test_cancel_after_grant_returns_unit(self, sim):
        res = Resource(sim, capacity=1)
        granted = res.request()
        assert granted.triggered
        res.cancel(granted)  # too late to withdraw: unit is returned
        assert res.busy == 0

    def test_aborted_waiter_does_not_leak_unit(self, sim):
        """A waiter killed inside ``acquire`` must withdraw its request.

        Pre-fix, the queued request survived the death of its
        generator: the next ``release`` granted the unit to the dead
        event and ``busy`` stayed at 1 forever.
        """
        from repro.errors import TransactionAborted

        res = Resource(sim, capacity=1)

        def holder():
            yield res.request()
            yield sim.timeout(10.0)
            res.release()

        sim.process(holder())
        sim.run(until=1.0)
        # Drive a second acquirer by hand so we can throw into it while
        # it waits for the grant (an abort mid-lock-wait does this to
        # any process suspended inside ``acquire``).
        gen = res.acquire(5.0)
        gen.send(None)  # yields the queued request event
        with pytest.raises(TransactionAborted):
            gen.throw(TransactionAborted(99))
        assert res.queue_length == 0
        sim.run()  # holder releases at t=10
        assert res.busy == 0

    def test_waiter_killed_by_crash_leaves_resource_consistent(self, sim):
        """Regression: a queued waiter interrupted by a node crash must
        withdraw its request -- otherwise a later release grants the
        unit to the dead event and it leaks forever."""
        from repro.errors import NodeCrashed

        res = Resource(sim, capacity=1)

        def holder():
            yield res.request()
            yield sim.timeout(2.0)
            res.release()

        def waiter():
            try:
                yield from res.acquire(1.0)
            except NodeCrashed:
                pass  # the crash teardown swallows it, as the TM does

        sim.process(holder())
        victim = sim.process(waiter())
        sim.run(until=1.0)
        assert res.queue_length == 1
        assert victim.interrupt(NodeCrashed(0))
        sim.run(until=1.001)  # deliver the urgent interrupt throw
        assert res.queue_length == 0  # request withdrawn
        assert res.busy == 1  # holder still owns the unit

        # The unit must still circulate: a fresh waiter gets it when
        # the holder releases at t=2.
        served = []

        def successor():
            yield from res.acquire(0.5)
            served.append(sim.now)

        sim.process(successor())
        sim.run()
        assert served == [pytest.approx(2.5)]
        assert res.busy == 0
        assert res.queue_length == 0

    def test_busy_time_integral(self, sim):
        res = Resource(sim, capacity=2)

        def job(duration):
            yield from res.acquire(duration)

        sim.process(job(2.0))
        sim.process(job(3.0))
        sim.run()
        assert res.busy_time() == pytest.approx(5.0)


class TestGrab:
    """Cancel-safe grant waits (``Resource.grab``).

    Regression class for the unit-leak bug: a bare ``yield
    resource.request()`` interrupted while queued left the request in
    the queue, so the next release granted the unit to a dead event
    and the capacity was lost for the rest of the run.
    """

    def test_grab_holds_unit_on_return(self, sim):
        res = Resource(sim, capacity=1)
        observed = []

        def proc():
            yield from res.grab()
            observed.append(res.busy)
            res.release()

        sim.process(proc())
        sim.run()
        assert observed == [1]
        assert res.busy == 0

    def test_interrupt_while_queued_withdraws_request(self, sim):
        from repro.errors import NodeCrashed

        res = Resource(sim, capacity=1, name="cpu")

        def holder():
            yield from res.acquire(2.0)

        def waiter():
            try:
                yield from res.grab()
            except NodeCrashed:
                return  # torn down while still queued
            res.release()  # pragma: no cover - must not be granted

        sim.process(holder())
        victim = sim.process(waiter())
        sim.run(until=1.0)
        assert res.queue_length == 1
        assert victim.interrupt(NodeCrashed(0))
        sim.run(until=1.001)
        assert res.queue_length == 0

        # The holder's release at t=2 must leave the unit free, not
        # grant it to the interrupted waiter's dead event.
        served = []

        def successor():
            yield from res.acquire(0.5)
            served.append(sim.now)

        sim.process(successor())
        sim.run()
        assert served == [pytest.approx(2.5)]
        assert res.busy == 0
