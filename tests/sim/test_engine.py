"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import SimulationError, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestClockAndTimeouts:
    def test_initial_time_is_zero(self, sim):
        assert sim.now == 0.0

    def test_timeout_advances_clock(self, sim):
        times = []

        def proc():
            yield sim.timeout(1.5)
            times.append(sim.now)
            yield sim.timeout(2.5)
            times.append(sim.now)

        sim.process(proc())
        sim.run()
        assert times == [1.5, 4.0]

    def test_negative_timeout_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_run_until_advances_clock_even_without_events(self, sim):
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_stops_before_later_events(self, sim):
        fired = []

        def proc():
            yield sim.timeout(5.0)
            fired.append(sim.now)

        sim.process(proc())
        sim.run(until=3.0)
        assert fired == []
        assert sim.now == 3.0
        sim.run(until=10.0)
        assert fired == [5.0]

    def test_run_into_past_rejected(self, sim):
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=1.0)

    def test_timeout_carries_value(self, sim):
        seen = []

        def proc():
            value = yield sim.timeout(1.0, value="hello")
            seen.append(value)

        sim.process(proc())
        sim.run()
        assert seen == ["hello"]

    def test_peek_returns_next_event_time(self, sim):
        sim.timeout(7.0)
        assert sim.peek() == 7.0

    def test_peek_empty_is_inf(self, sim):
        assert sim.peek() == float("inf")


class TestEventOrdering:
    def test_events_fire_in_time_order(self, sim):
        order = []

        def proc(delay, tag):
            yield sim.timeout(delay)
            order.append(tag)

        sim.process(proc(3.0, "c"))
        sim.process(proc(1.0, "a"))
        sim.process(proc(2.0, "b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fire_in_schedule_order(self, sim):
        order = []

        def proc(tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in ["first", "second", "third"]:
            sim.process(proc(tag))
        sim.run()
        assert order == ["first", "second", "third"]

    def test_events_processed_counter(self, sim):
        def proc():
            yield sim.timeout(1.0)

        sim.process(proc())
        sim.run()
        assert sim.events_processed > 0


class TestEvents:
    def test_manual_succeed_wakes_waiter(self, sim):
        gate = sim.event()
        seen = []

        def waiter():
            value = yield gate
            seen.append((sim.now, value))

        def firer():
            yield sim.timeout(2.0)
            gate.succeed("go")

        sim.process(waiter())
        sim.process(firer())
        sim.run()
        assert seen == [(2.0, "go")]

    def test_double_trigger_rejected(self, sim):
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)

    def test_value_before_trigger_rejected(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            event.value

    def test_fail_raises_in_waiter(self, sim):
        gate = sim.event()
        caught = []

        def waiter():
            try:
                yield gate
            except ValueError as exc:
                caught.append(str(exc))

        def firer():
            yield sim.timeout(1.0)
            gate.fail(ValueError("boom"))

        sim.process(waiter())
        sim.process(firer())
        sim.run()
        assert caught == ["boom"]

    def test_fail_requires_exception(self, sim):
        event = sim.event()
        with pytest.raises(SimulationError):
            event.fail("not an exception")  # type: ignore[arg-type]

    def test_unobserved_failed_event_surfaces(self, sim):
        event = sim.event()
        event.fail(RuntimeError("lost failure"))
        with pytest.raises(RuntimeError, match="lost failure"):
            sim.run()

    def test_waiting_on_already_processed_event_resumes(self, sim):
        gate = sim.event()
        gate.succeed("early")
        seen = []

        def late_waiter():
            yield sim.timeout(5.0)
            value = yield gate
            seen.append((sim.now, value))

        sim.process(late_waiter())
        sim.run()
        assert seen == [(5.0, "early")]


class TestProcesses:
    def test_process_return_value(self, sim):
        def child():
            yield sim.timeout(1.0)
            return 42

        results = []

        def parent():
            value = yield sim.process(child())
            results.append(value)

        sim.process(parent())
        sim.run()
        assert results == [42]

    def test_process_exception_propagates_to_waiter(self, sim):
        def child():
            yield sim.timeout(1.0)
            raise KeyError("inner")

        caught = []

        def parent():
            try:
                yield sim.process(child())
            except KeyError as exc:
                caught.append(exc.args[0])

        sim.process(parent())
        sim.run()
        assert caught == ["inner"]

    def test_unobserved_crashed_process_surfaces(self, sim):
        def crasher():
            yield sim.timeout(1.0)
            raise RuntimeError("crash")

        sim.process(crasher())
        with pytest.raises(RuntimeError, match="crash"):
            sim.run()

    def test_yielding_non_event_fails_process(self, sim):
        def bad():
            yield "not an event"

        proc = sim.process(bad())

        caught = []

        def watcher():
            try:
                yield proc
            except SimulationError as exc:
                caught.append(str(exc))

        sim.process(watcher())
        sim.run()
        assert len(caught) == 1
        assert "non-event" in caught[0]

    def test_process_is_alive(self, sim):
        def proc():
            yield sim.timeout(3.0)

        p = sim.process(proc())
        assert p.is_alive
        sim.run()
        assert not p.is_alive

    def test_immediate_return_process(self, sim):
        def instant():
            return 7
            yield  # pragma: no cover

        results = []

        def parent():
            value = yield sim.process(instant())
            results.append(value)

        sim.process(parent())
        sim.run()
        assert results == [7]

    def test_cross_simulator_yield_rejected(self, sim):
        other = Simulator()

        def proc():
            yield other.timeout(1.0)

        p = sim.process(proc())
        errors = []

        def watcher():
            try:
                yield p
            except SimulationError as exc:
                errors.append(str(exc))

        sim.process(watcher())
        sim.run()
        assert errors and "another simulator" in errors[0]


class TestConditions:
    def test_all_of_waits_for_all(self, sim):
        seen = []

        def proc():
            result = yield sim.all_of([sim.timeout(1.0, "a"), sim.timeout(3.0, "b")])
            seen.append((sim.now, result))

        sim.process(proc())
        sim.run()
        assert seen == [(3.0, ["a", "b"])]

    def test_all_of_empty_fires_immediately(self, sim):
        seen = []

        def proc():
            result = yield sim.all_of([])
            seen.append((sim.now, result))

        sim.process(proc())
        sim.run()
        assert seen == [(0.0, [])]

    def test_all_of_fails_on_child_failure(self, sim):
        gate = sim.event()

        def firer():
            yield sim.timeout(1.0)
            gate.fail(ValueError("child died"))

        caught = []

        def proc():
            try:
                yield sim.all_of([sim.timeout(5.0), gate])
            except ValueError as exc:
                caught.append((sim.now, str(exc)))

        sim.process(proc())
        sim.process(firer())
        sim.run()
        assert caught == [(1.0, "child died")]

    def test_any_of_fires_on_first(self, sim):
        seen = []

        def proc():
            index, value = yield sim.any_of(
                [sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")]
            )
            seen.append((sim.now, index, value))

        sim.process(proc())
        sim.run()
        assert seen == [(1.0, 1, "fast")]

    def test_any_of_with_already_processed_event(self, sim):
        done = sim.event()
        done.succeed("pre")
        seen = []

        def proc():
            yield sim.timeout(1.0)
            index, value = yield sim.any_of([done, sim.timeout(10.0)])
            seen.append((sim.now, index, value))

        sim.process(proc())
        sim.run(until=20.0)
        assert seen == [(1.0, 0, "pre")]


class TestDeterminism:
    def test_same_model_same_trace(self):
        def build_and_run():
            sim = Simulator()
            trace = []

            def worker(tag, delay):
                for _ in range(3):
                    yield sim.timeout(delay)
                    trace.append((round(sim.now, 9), tag))

            sim.process(worker("x", 1.1))
            sim.process(worker("y", 0.7))
            sim.run()
            return trace

        assert build_and_run() == build_and_run()
