"""Edge-case tests for the simulation engine."""

import pytest

from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestConditionEdges:
    def test_all_of_with_all_preprocessed_events(self, sim):
        e1, e2 = sim.event(), sim.event()
        e1.succeed("a")
        e2.succeed("b")
        sim.run(until=0.0)  # process both
        seen = []

        def proc():
            values = yield sim.all_of([e1, e2])
            seen.append(values)

        sim.process(proc())
        sim.run()
        assert seen == [["a", "b"]]

    def test_all_of_with_preprocessed_failure(self, sim):
        bad = sim.event()
        bad.fail(ValueError("early"))
        caught = []

        def observer():
            try:
                yield bad
            except ValueError:
                caught.append("direct")

        sim.process(observer())
        sim.run()

        def proc():
            try:
                yield sim.all_of([bad, sim.timeout(1.0)])
            except ValueError:
                caught.append("condition")

        sim.process(proc())
        sim.run()
        assert caught == ["direct", "condition"]

    def test_any_of_failure_of_first_component(self, sim):
        gate = sim.event()
        caught = []

        def firer():
            yield sim.timeout(1.0)
            gate.fail(KeyError("boom"))

        def proc():
            try:
                yield sim.any_of([gate, sim.timeout(10.0)])
            except KeyError:
                caught.append(sim.now)

        sim.process(proc())
        sim.process(firer())
        sim.run(until=20.0)
        assert caught == [1.0]

    def test_nested_conditions(self, sim):
        seen = []

        def proc():
            inner = sim.all_of([sim.timeout(1.0, "x"), sim.timeout(2.0, "y")])
            index, value = yield sim.any_of([inner, sim.timeout(5.0)])
            seen.append((sim.now, index, value))

        sim.process(proc())
        sim.run()
        assert seen == [(2.0, 0, ["x", "y"])]


class TestRunEdges:
    def test_run_until_exact_event_time_processes_event(self, sim):
        fired = []

        def proc():
            yield sim.timeout(5.0)
            fired.append(sim.now)

        sim.process(proc())
        sim.run(until=5.0)
        assert fired == [5.0]

    def test_multiple_runs_resume(self, sim):
        fired = []

        def proc():
            for _ in range(3):
                yield sim.timeout(1.0)
                fired.append(sim.now)

        sim.process(proc())
        sim.run(until=1.5)
        assert fired == [1.0]
        sim.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_chained_processes(self, sim):
        order = []

        def leaf(tag, delay):
            yield sim.timeout(delay)
            order.append(tag)
            return tag

        def parent():
            a = yield sim.process(leaf("a", 1.0))
            b = yield sim.process(leaf("b", 1.0))
            order.append(a + b)

        sim.process(parent())
        sim.run()
        assert order == ["a", "b", "ab"]

    def test_many_simultaneous_processes(self, sim):
        done = []

        def proc(i):
            yield sim.timeout(1.0)
            done.append(i)

        for i in range(500):
            sim.process(proc(i))
        sim.run()
        assert done == list(range(500))
