"""Unit tests for random stream registry."""

import pytest

from repro.sim import StreamRegistry
from repro.sim import rng
from repro.sim.rng import zipf_weights


class TestStreams:
    def test_same_name_same_stream(self):
        reg = StreamRegistry(7)
        assert reg.stream("a") is reg.stream("a")

    def test_reproducible_across_registries(self):
        a = StreamRegistry(7).stream("arrivals")
        b = StreamRegistry(7).stream("arrivals")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_streams_are_independent(self):
        reg = StreamRegistry(7)
        a = reg.stream("a")
        b = reg.stream("b")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = StreamRegistry(1).stream("s")
        b = StreamRegistry(2).stream("s")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


class TestDistributions:
    def test_exponential_mean(self):
        stream = StreamRegistry(3).stream("exp")
        n = 20000
        mean = sum(stream.exponential(10.0) for _ in range(n)) / n
        assert mean == pytest.approx(10.0, rel=0.05)

    def test_exponential_zero_mean(self):
        stream = StreamRegistry(3).stream("exp")
        assert stream.exponential(0.0) == 0.0

    def test_exponential_negative_mean_rejected(self):
        stream = StreamRegistry(3).stream("exp")
        with pytest.raises(ValueError):
            stream.exponential(-1.0)

    def test_randint_bounds(self):
        stream = StreamRegistry(3).stream("int")
        values = {stream.randint(1, 3) for _ in range(200)}
        assert values == {1, 2, 3}

    def test_bernoulli_probability(self):
        stream = StreamRegistry(3).stream("bern")
        n = 20000
        hits = sum(stream.bernoulli(0.85) for _ in range(n))
        assert hits / n == pytest.approx(0.85, abs=0.02)

    def test_weighted_index_respects_weights(self):
        stream = StreamRegistry(3).stream("w")
        cumulative = [1.0, 1.0 + 3.0]  # weights 1 and 3
        n = 20000
        ones = sum(stream.weighted_index(cumulative) == 1 for _ in range(n))
        assert ones / n == pytest.approx(0.75, abs=0.02)

    def test_geometric_mean(self):
        stream = StreamRegistry(3).stream("g")
        n = 20000
        mean = sum(stream.geometric(0.25) for _ in range(n)) / n
        assert mean == pytest.approx(4.0, rel=0.05)

    def test_geometric_invalid_p(self):
        stream = StreamRegistry(3).stream("g")
        with pytest.raises(ValueError):
            stream.geometric(0.0)


class TestZipf:
    def test_uniform_when_theta_zero(self):
        weights = zipf_weights(4, 0.0)
        assert weights == pytest.approx([1.0, 2.0, 3.0, 4.0])

    def test_skewed_when_theta_positive(self):
        weights = zipf_weights(3, 1.0)
        assert weights == pytest.approx([1.0, 1.5, 1.5 + 1.0 / 3.0])

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)

    def test_sampling_skew(self):
        stream = StreamRegistry(5).stream("zipf")
        cumulative = zipf_weights(100, 1.0)
        n = 20000
        first = sum(stream.weighted_index(cumulative) == 0 for _ in range(n))
        last = sum(stream.weighted_index(cumulative) == 99 for _ in range(n))
        assert first > 10 * max(last, 1)

class TestZipfCache:
    """The memoized cumulative tables must be bit-identical to a fresh
    computation -- caching is a pure speedup, never a semantic change."""

    def test_repeated_calls_share_one_table(self):
        rng._ZIPF_CACHE.clear()
        first = zipf_weights(128, 0.8)
        second = zipf_weights(128, 0.8)
        assert second is first

    def test_cached_table_bit_identical_to_fresh(self):
        import itertools

        rng._ZIPF_CACHE.clear()
        cached = zipf_weights(512, 0.73)
        fresh = list(
            itertools.accumulate(1.0 / (i + 1) ** 0.73 for i in range(512))
        )
        # Float equality on purpose: the cache must not change a single
        # bit of any weight (goldens depend on the sampled sequences).
        assert cached == fresh
        assert [w.hex() for w in cached] == [w.hex() for w in fresh]

    def test_sampling_unchanged_by_cache_state(self):
        rng._ZIPF_CACHE.clear()
        cold_stream = StreamRegistry(11).stream("zipf")
        cold = [
            cold_stream.weighted_index(zipf_weights(64, 1.1)) for _ in range(200)
        ]
        warm_stream = StreamRegistry(11).stream("zipf")
        warm = [
            warm_stream.weighted_index(zipf_weights(64, 1.1)) for _ in range(200)
        ]
        assert cold == warm

    def test_distinct_parameters_get_distinct_tables(self):
        rng._ZIPF_CACHE.clear()
        assert zipf_weights(8, 0.5) is not zipf_weights(8, 0.6)
        assert zipf_weights(8, 0.5) is not zipf_weights(9, 0.5)
        assert len(rng._ZIPF_CACHE) == 3
