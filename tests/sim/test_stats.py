"""Unit tests for statistics collectors."""

import json
import math

import pytest

from repro.sim import Counter, StatsRegistry, Tally, TimeWeighted


class TestCounter:
    def test_increment(self):
        c = Counter("n")
        c.increment()
        c.increment(4)
        assert c.count == 5

    def test_reset(self):
        c = Counter()
        c.increment(10)
        c.reset()
        assert c.count == 0


class TestTally:
    def test_empty_tally(self):
        t = Tally()
        assert t.count == 0
        assert t.mean == 0.0
        assert t.variance == 0.0

    def test_mean_min_max(self):
        t = Tally()
        for value in [2.0, 4.0, 6.0]:
            t.record(value)
        assert t.mean == pytest.approx(4.0)
        assert t.min == 2.0
        assert t.max == 6.0

    def test_variance_matches_textbook(self):
        t = Tally()
        data = [1.0, 2.0, 3.0, 4.0]
        for value in data:
            t.record(value)
        mean = sum(data) / len(data)
        expected = sum((x - mean) ** 2 for x in data) / (len(data) - 1)
        assert t.variance == pytest.approx(expected)
        assert t.stdev == pytest.approx(math.sqrt(expected))

    def test_single_observation_variance_zero(self):
        t = Tally()
        t.record(5.0)
        assert t.variance == 0.0

    def test_percentile_requires_samples(self):
        t = Tally()
        t.record(1.0)
        with pytest.raises(ValueError):
            t.percentile(0.5)

    def test_percentiles(self):
        t = Tally(keep_samples=True)
        for value in [10.0, 20.0, 30.0, 40.0, 50.0]:
            t.record(value)
        assert t.percentile(0.0) == 10.0
        assert t.percentile(1.0) == 50.0
        assert t.percentile(0.5) == 30.0
        assert t.percentile(0.25) == pytest.approx(20.0)

    def test_percentile_empty(self):
        t = Tally(keep_samples=True)
        assert t.percentile(0.5) == 0.0

    def test_reset(self):
        t = Tally(keep_samples=True)
        t.record(3.0)
        t.reset()
        assert t.count == 0
        assert t.mean == 0.0
        assert t.percentile(0.5) == 0.0


class TestTimeWeighted:
    def test_time_average_piecewise(self):
        tw = TimeWeighted(initial=0.0, now=0.0)
        tw.update(2.0, now=1.0)  # value 0 over [0,1)
        tw.update(4.0, now=3.0)  # value 2 over [1,3)
        # value 4 over [3,5)
        assert tw.time_average(now=5.0) == pytest.approx((0 * 1 + 2 * 2 + 4 * 2) / 5)

    def test_add_delta(self):
        tw = TimeWeighted(initial=1.0, now=0.0)
        tw.add(2.0, now=2.0)
        assert tw.value == 3.0
        assert tw.time_average(now=4.0) == pytest.approx((1 * 2 + 3 * 2) / 4)

    def test_max_tracking(self):
        tw = TimeWeighted(initial=0.0, now=0.0)
        tw.update(5.0, now=1.0)
        tw.update(2.0, now=2.0)
        assert tw.max == 5.0

    def test_time_backwards_rejected(self):
        tw = TimeWeighted(now=5.0)
        with pytest.raises(ValueError):
            tw.update(1.0, now=4.0)

    def test_zero_elapsed_returns_current_value(self):
        tw = TimeWeighted(initial=7.0, now=3.0)
        assert tw.time_average(now=3.0) == 7.0

    def test_reset_keeps_current_value(self):
        tw = TimeWeighted(initial=0.0, now=0.0)
        tw.update(10.0, now=1.0)
        tw.reset(now=1.0)
        assert tw.value == 10.0
        assert tw.time_average(now=2.0) == pytest.approx(10.0)
        assert tw.max == 10.0


class TestStatsRegistry:
    def test_collectors_are_memoized(self):
        reg = StatsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.tally("b") is reg.tally("b")
        assert reg.timeweighted("c") is reg.timeweighted("c")

    def test_reset_all(self):
        reg = StatsRegistry()
        reg.counter("a").increment(3)
        reg.tally("b").record(1.0)
        reg.timeweighted("c").update(5.0, now=1.0)
        reg.reset_all(now=2.0)
        assert reg.counter("a").count == 0
        assert reg.tally("b").count == 0
        assert reg.timeweighted("c").time_average(now=3.0) == pytest.approx(5.0)


class TestTallyJsonSafety:
    """Regression tests: empty tallies must serialize to valid JSON."""

    def test_empty_tally_min_max_are_none(self):
        t = Tally("rt")
        assert t.min is None
        assert t.max is None

    def test_empty_tally_summary_is_strict_json(self):
        # Pre-fix min/max were +/-inf, which json.dumps renders as the
        # non-standard Infinity token strict parsers reject.
        t = Tally("rt")
        text = json.dumps(t.summary())

        def reject(token):
            raise AssertionError(f"non-standard JSON constant {token!r}")

        decoded = json.loads(text, parse_constant=reject)
        assert decoded == {
            "count": 0, "mean": 0.0, "stdev": 0.0, "min": None, "max": None,
        }

    def test_summary_of_populated_tally(self):
        t = Tally("rt")
        for value in (2.0, 6.0, 4.0):
            t.record(value)
        summary = t.summary()
        assert summary["count"] == 3
        assert summary["mean"] == pytest.approx(4.0)
        assert summary["min"] == 2.0
        assert summary["max"] == 6.0

    def test_reset_returns_to_none(self):
        t = Tally("rt")
        t.record(1.0)
        t.reset()
        assert t.min is None and t.max is None


class TestTimeWeightedIntegral:
    def test_integral_includes_open_segment(self):
        tw = TimeWeighted("busy")
        tw.update(2.0, 1.0)   # 0 for [0,1)
        tw.update(0.0, 3.0)   # 2 for [1,3)
        assert tw.integral(3.0) == pytest.approx(4.0)
        tw.update(1.0, 4.0)
        assert tw.integral(6.0) == pytest.approx(6.0)  # + 1 for [4,6)

    def test_reset_clears_area(self):
        tw = TimeWeighted("busy", initial=1.0)
        tw.reset(5.0)
        assert tw.integral(7.0) == pytest.approx(2.0)


class TestBatchHelpers:
    def test_record_many_is_bit_identical_to_repeated_record(self):
        values = [3.7, -1.2, 0.0, 9.4, 2.5, 2.5, 8.125, -0.001]
        one = Tally("a", keep_samples=True)
        for v in values:
            one.record(v)
        many = Tally("b", keep_samples=True)
        many.record_many(values)
        assert many.count == one.count
        assert many.mean == one.mean          # exact, not approx
        assert many.stdev == one.stdev
        assert many.min == one.min and many.max == one.max
        assert many.percentile(0.5) == one.percentile(0.5)

    def test_record_many_empty_is_a_no_op(self):
        t = Tally("a")
        t.record_many([])
        assert t.count == 0 and t.min is None

    def test_record_many_appends_to_existing_samples(self):
        t = Tally("a", keep_samples=True)
        t.record(1.0)
        t.record_many([2.0, 3.0])
        assert t.count == 3
        assert t.percentile(0.0) == 1.0 and t.percentile(1.0) == 3.0

    def test_update_many_exact_is_bit_identical_to_repeated_update(self):
        values = [1.0, 3.0, 0.0, 2.0, 2.0, 5.0]
        times = [0.5, 1.25, 2.0, 2.0, 3.75, 4.5]
        one = TimeWeighted("a")
        for v, t in zip(values, times):
            one.update(v, t)
        many = TimeWeighted("b")
        many.update_many(values, times)
        assert many.integral(5.0) == one.integral(5.0)   # exact
        assert many.time_average(5.0) == one.time_average(5.0)
        assert many.max == one.max

    def test_update_many_length_mismatch_rejected(self):
        tw = TimeWeighted("a")
        with pytest.raises(ValueError):
            tw.update_many([1.0, 2.0], [0.5])

    def test_update_many_empty_is_a_no_op(self):
        tw = TimeWeighted("a", initial=2.0)
        tw.update_many([], [])
        assert tw.integral(3.0) == pytest.approx(6.0)

    def test_update_many_backwards_time_rejected(self):
        tw = TimeWeighted("a")
        tw.update(1.0, 2.0)
        with pytest.raises(ValueError):
            tw.update_many([2.0], [1.0])

    def test_update_many_numpy_path_matches_exact_path(self):
        np = pytest.importorskip("numpy")
        values = list(np.linspace(0.0, 7.0, 40))
        times = list(np.cumsum(np.linspace(0.01, 0.2, 40)))
        exact = TimeWeighted("a")
        exact.update_many(values, times)
        fast = TimeWeighted("b")
        fast.update_many(values, times, exact=False)
        assert fast.integral(10.0) == pytest.approx(exact.integral(10.0))
        assert fast.max == pytest.approx(exact.max)

    def test_update_many_numpy_backwards_time_rejected(self):
        pytest.importorskip("numpy")
        tw = TimeWeighted("a")
        with pytest.raises(ValueError):
            tw.update_many([1.0, 2.0], [3.0, 1.0], exact=False)
