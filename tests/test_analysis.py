"""Cross-validation: operational-law predictions vs simulation.

The strongest correctness check available for a simulator: measured
utilizations and message counts must agree with what the utilization
law derives from the configuration.
"""

import pytest

from repro.analysis import predict_debit_credit
from repro.system.config import SystemConfig
from repro.system.runner import run_simulation


def config(**overrides):
    defaults = dict(
        num_nodes=2,
        coupling="gem",
        routing="affinity",
        update_strategy="noforce",
        warmup_time=1.0,
        measure_time=5.0,
    )
    defaults.update(overrides)
    return SystemConfig(**defaults)


def normalized(result):
    """Scale factor from the achieved to the offered arrival rate."""
    return result.arrival_rate_per_node / max(result.throughput_per_node, 1e-9)


class TestPredictionsVsSimulation:
    def test_cpu_utilization_gem_noforce(self):
        cfg = config()
        predicted = predict_debit_credit(cfg)
        measured = run_simulation(cfg)
        assert measured.cpu_utilization_avg * normalized(measured) == pytest.approx(
            predicted.cpu_utilization, rel=0.12
        )

    def test_cpu_utilization_includes_force_overhead(self):
        noforce = predict_debit_credit(config())
        force = predict_debit_credit(config(update_strategy="force"))
        assert force.cpu_utilization > noforce.cpu_utilization
        measured = run_simulation(config(update_strategy="force"))
        assert measured.cpu_utilization_avg * normalized(measured) == pytest.approx(
            force.cpu_utilization, rel=0.12
        )

    def test_cpu_utilization_pcl_random_includes_messages(self):
        cfg = config(coupling="pcl", routing="random", num_nodes=4)
        predicted = predict_debit_credit(cfg)
        measured = run_simulation(cfg)
        assert predicted.cpu_utilization > predict_debit_credit(
            config(num_nodes=4)
        ).cpu_utilization
        assert measured.cpu_utilization_avg * normalized(measured) == pytest.approx(
            predicted.cpu_utilization, rel=0.15
        )

    def test_gem_utilization(self):
        cfg = config(num_nodes=4, routing="random")
        predicted = predict_debit_credit(cfg)
        measured = run_simulation(cfg)
        assert measured.gem_utilization == pytest.approx(
            predicted.gem_utilization, rel=0.35
        )
        assert predicted.gem_utilization < 0.02  # the paper's "< 2%"

    def test_log_disk_utilization(self):
        cfg = config()
        predicted = predict_debit_credit(cfg)
        measured = run_simulation(cfg)
        assert measured.log_disk_utilization_max * normalized(
            measured
        ) == pytest.approx(predicted.log_disk_utilization, rel=0.2)

    def test_remote_lock_prediction_random(self):
        cfg = config(coupling="pcl", routing="random", num_nodes=4)
        predicted = predict_debit_credit(cfg)
        measured = run_simulation(cfg)
        assert predicted.remote_locks_per_txn == pytest.approx(1.5)  # 2 * 3/4
        assert measured.remote_lock_requests_per_txn == pytest.approx(
            predicted.remote_locks_per_txn, rel=0.1
        )

    def test_remote_lock_prediction_affinity(self):
        cfg = config(coupling="pcl", routing="affinity", num_nodes=4)
        predicted = predict_debit_credit(cfg)
        measured = run_simulation(cfg)
        # Paper footnote 3: at most 0.15 remote ACCOUNT lock requests.
        assert predicted.remote_locks_per_txn < 0.15
        assert measured.remote_lock_requests_per_txn == pytest.approx(
            predicted.remote_locks_per_txn, rel=0.25
        )

    def test_message_prediction_pcl(self):
        cfg = config(coupling="pcl", routing="random", num_nodes=4)
        predicted = predict_debit_credit(cfg)
        measured = run_simulation(cfg)
        # Reply messages are counted at the GLA side; totals match.
        assert measured.messages_per_txn == pytest.approx(
            predicted.messages_per_txn, rel=0.15
        )

    def test_prediction_rejects_trace_workload(self):
        with pytest.raises(ValueError):
            predict_debit_credit(config(workload="trace"))
