"""GLA (global lock authority) assignment for primary copy locking.

To keep the share of locally processable lock requests high, GLA and
workload allocation should be coordinated (section 3.2).  Given a
routing table for a trace, each page segment's lock authority is
assigned to the node whose routed transactions reference it most,
subject to a balance cap so every node carries a comparable share of
the lock traffic.

(The debit-credit workload uses the closed-form BRANCH-based GLA
assignment in :meth:`repro.db.debitcredit.DebitCreditLayout.gla_of_page`
instead.)
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, Tuple

from repro.db.pages import PageId
from repro.routing.routing_table import RoutingTable
from repro.workload.trace import Trace

__all__ = ["SegmentGlaMap", "build_gla_map"]

Segment = Tuple[int, int]


class SegmentGlaMap:
    """Maps pages to their lock-authority node via fixed segments."""

    def __init__(
        self, assignment: Dict[Segment, int], segment_size: int, num_nodes: int
    ):
        self.assignment = dict(assignment)
        self.segment_size = segment_size
        self.num_nodes = num_nodes

    def __call__(self, page: PageId) -> int:
        segment = (page[0], page[1] // self.segment_size)
        node = self.assignment.get(segment)
        if node is None:
            # Unreferenced segments: deterministic spread.
            return hash(segment) % self.num_nodes
        return node

    def share_of(self, node: int) -> float:
        if not self.assignment:
            return 0.0
        return sum(1 for n in self.assignment.values() if n == node) / len(
            self.assignment
        )


def build_gla_map(
    trace: Trace,
    routing_table: RoutingTable,
    num_nodes: int,
    segment_size: int = 256,
    balance_slack: float = 1.3,
) -> SegmentGlaMap:
    """Assign each referenced segment to the node referencing it most.

    Reference counts are taken under the given routing (each type's
    references accrue to its routed node).  A balance cap prevents one
    node from owning a disproportionate share of the lock traffic.
    """
    segment_refs: Dict[Segment, Counter] = defaultdict(Counter)
    for txn in trace:
        node = routing_table.node_for(txn.type_id)
        for ref in txn.references:
            segment_refs[(ref.file_id, ref.page_no // segment_size)][node] += 1
    total_refs = sum(sum(c.values()) for c in segment_refs.values())
    cap = (total_refs / num_nodes * balance_slack) if num_nodes > 1 else float("inf")
    node_load = [0.0] * num_nodes
    assignment: Dict[Segment, int] = {}
    # Hot segments first so they land on their best node before caps bind.
    ordered = sorted(
        segment_refs.items(), key=lambda item: -sum(item[1].values())
    )
    for segment, per_node in ordered:
        weight = sum(per_node.values())
        candidates = sorted(per_node.items(), key=lambda kv: -kv[1])
        chosen = None
        for node, _count in candidates:
            if node_load[node] + weight <= cap:
                chosen = node
                break
        if chosen is None:
            chosen = min(range(num_nodes), key=lambda n: node_load[n])
        assignment[segment] = chosen
        node_load[chosen] += weight
    return SegmentGlaMap(assignment, segment_size, num_nodes)
