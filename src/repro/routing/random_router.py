"""Random (balanced) transaction routing.

The paper's random routing "merely ensures that every node is assigned
about the same number of transactions to support load balancing"; a
round-robin assignment realizes exactly that while remaining oblivious
to the transactions' reference behaviour.
"""

from __future__ import annotations

from repro.workload.transaction import Transaction

__all__ = ["RandomRouter"]


class RandomRouter:
    """Round-robin workload allocation."""

    def __init__(self, num_nodes: int):
        if num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        self.num_nodes = num_nodes
        self._next = 0

    def route(self, txn: Transaction) -> int:
        node = self._next
        self._next = (self._next + 1) % self.num_nodes
        return node
