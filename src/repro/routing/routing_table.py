"""Routing tables for trace workloads and the affinity heuristic.

The paper determines affinity-based workload allocations for traces
with "iterative heuristics that use the reference distribution of the
workload and the number of nodes as input parameters" [Ra92b].  This
module implements a greedy variant of that scheme:

1. Build a reference vector per transaction type over page *segments*
   (fixed-size ranges of each file's page space).
2. Process types in descending reference-volume order; assign each
   type to the node whose already-assigned segment set it overlaps
   most, subject to a load-balance cap.

The result is a :class:`RoutingTable` (type -> node) used by the
affinity router, and the same segment statistics drive the GLA
assignment (:mod:`repro.routing.gla`).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from typing import Dict, List, Tuple

from repro.workload.trace import Trace

__all__ = ["RoutingTable", "build_routing_table", "type_segment_vectors"]

Segment = Tuple[int, int]  # (file_id, page_no // segment_size)


class RoutingTable:
    """Per-type node assignment for trace workloads."""

    def __init__(self, assignment: Dict[int, int], num_nodes: int):
        if any(not 0 <= node < num_nodes for node in assignment.values()):
            raise ValueError("assignment references an invalid node")
        self.assignment = dict(assignment)
        self.num_nodes = num_nodes

    def node_for(self, type_id: int) -> int:
        node = self.assignment.get(type_id)
        if node is None:
            # Unknown types fall back to a deterministic spread.
            return type_id % self.num_nodes
        return node

    def types_of(self, node: int) -> List[int]:
        return sorted(t for t, n in self.assignment.items() if n == node)


def type_segment_vectors(
    trace: Trace, segment_size: int = 256
) -> Tuple[Dict[int, Counter], Dict[int, int]]:
    """Reference vectors per transaction type over page segments.

    Returns ``(vectors, volumes)`` where ``vectors[type]`` counts
    references per segment and ``volumes[type]`` is the total.
    """
    if segment_size < 1:
        raise ValueError("segment_size must be >= 1")
    vectors: Dict[int, Counter] = defaultdict(Counter)
    volumes: Dict[int, int] = defaultdict(int)
    for txn in trace:
        vector = vectors[txn.type_id]
        for ref in txn.references:
            vector[(ref.file_id, ref.page_no // segment_size)] += 1
            volumes[txn.type_id] += 1
    return dict(vectors), dict(volumes)


def build_routing_table(
    trace: Trace,
    num_nodes: int,
    segment_size: int = 256,
    balance_slack: float = 1.25,
) -> RoutingTable:
    """Greedy affinity clustering of transaction types onto nodes."""
    if num_nodes < 1:
        raise ValueError("num_nodes must be >= 1")
    vectors, volumes = type_segment_vectors(trace, segment_size)
    if num_nodes == 1:
        return RoutingTable({t: 0 for t in vectors}, 1)
    total_volume = sum(volumes.values())
    cap = total_volume / num_nodes * balance_slack
    node_segments: List[Counter] = [Counter() for _ in range(num_nodes)]
    node_load = [0.0] * num_nodes
    assignment: Dict[int, int] = {}
    for type_id in sorted(volumes, key=lambda t: -volumes[t]):
        vector = vectors[type_id]
        volume = volumes[type_id]
        best_node, best_score = None, None
        for node in range(num_nodes):
            if node_load[node] + volume > cap:
                continue
            overlap = sum(
                min(count, node_segments[node][seg]) for seg, count in vector.items()
            )
            # Prefer overlap; break ties toward the least-loaded node.
            score = (overlap, -node_load[node])
            if best_score is None or score > best_score:
                best_node, best_score = node, score
        if best_node is None:
            best_node = min(range(num_nodes), key=lambda n: node_load[n])
        assignment[type_id] = best_node
        node_load[best_node] += volume
        node_segments[best_node].update(vector)
    return RoutingTable(assignment, num_nodes)
