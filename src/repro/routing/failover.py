"""Failover wrapper around any workload router.

When fault injection is enabled, the SOURCE keeps generating arrivals
for all nodes; this wrapper redirects the share aimed at a crashed node
to the next surviving one (the paper's front-end redistributes work on
a node failure).  The base router keeps its own state, so routing with
faults disabled -- or before/after a crash window -- is bit-identical
to the unwrapped router.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.workload.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.cluster import Cluster

__all__ = ["FailoverRouter"]


class FailoverRouter:
    """Delegate to ``base``; reroute targets that are currently down."""

    def __init__(self, base, cluster: "Cluster"):
        self.base = base
        self.cluster = cluster
        self.num_nodes = base.num_nodes

    def route(self, txn: Transaction) -> int:
        target = self.base.route(txn)
        faults = self.cluster.faults
        if faults is not None:
            return faults.reroute(target)
        return target
