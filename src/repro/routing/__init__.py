"""Workload allocation (transaction routing) strategies.

* :class:`~repro.routing.random_router.RandomRouter` -- balanced
  round-robin assignment ("we merely ensure that every node is
  assigned about the same number of transactions").
* :class:`~repro.routing.affinity.AffinityRouter` -- BRANCH-based
  partitioning of the debit-credit workload for maximum node-specific
  locality.
* :class:`~repro.routing.routing_table.RoutingTable` and
  :func:`~repro.routing.routing_table.build_routing_table` -- per-type
  routing of trace workloads computed by an affinity heuristic
  ([Ra92b] style).
* :mod:`~repro.routing.gla` -- GLA assignment heuristics for PCL,
  coordinated with the routing.
"""

from repro.routing.affinity import AffinityRouter
from repro.routing.random_router import RandomRouter

__all__ = ["AffinityRouter", "RandomRouter"]
