"""Affinity-based transaction routing.

For debit-credit, a BRANCH-based partitioning of the workload gives
every node the transactions of an equal number of branches; TELLER and
HISTORY accesses are then completely partitioned and at most 15 % of
the ACCOUNT accesses leave the node's partition (section 3.1).

For trace workloads the affinity router delegates to a per-type
routing table (see :mod:`repro.routing.routing_table`).
"""

from __future__ import annotations

from typing import Callable

from repro.workload.transaction import Transaction

__all__ = ["AffinityRouter"]


class AffinityRouter:
    """Routes each transaction to its home node."""

    def __init__(self, home_of: Callable[[Transaction], int], num_nodes: int):
        self.home_of = home_of
        self.num_nodes = num_nodes

    @classmethod
    def for_debit_credit(cls, layout, num_nodes: int) -> "AffinityRouter":
        def home_of(txn: Transaction) -> int:
            if txn.branch is None:
                raise ValueError("debit-credit transaction without a branch")
            return layout.home_node(txn.branch)

        return cls(home_of, num_nodes)

    @classmethod
    def from_routing_table(cls, table, num_nodes: int) -> "AffinityRouter":
        return cls(lambda txn: table.node_for(txn.type_id), num_nodes)

    def route(self, txn: Transaction) -> int:
        node = self.home_of(txn)
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"router produced invalid node {node}")
        return node
