"""Command-line interface.

Subcommands::

    python -m repro run ...          # simulate one configuration
    python -m repro experiments ...  # regenerate tables/figures
    python -m repro trace-gen ...    # generate a synthetic trace file
    python -m repro predict ...      # operational-law predictions

Run ``python -m repro <subcommand> --help`` for the options.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.analysis import predict_debit_credit
from repro.system.config import SystemConfig, TraceWorkloadConfig
from repro.system.runner import run_simulation

__all__ = ["main", "build_parser"]


def _add_config_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument(
        "--coupling", choices=["gem", "pcl", "rdma"], default="gem",
        help="coupling regime: GEM close coupling (default), loosely "
             "coupled primary-copy locking, or RDMA-style memory "
             "disaggregation",
    )
    parser.add_argument(
        "--protocol", choices=["2pl", "mvcc", "dgcc"], default="2pl",
        help="concurrency control: strict two-phase locking (default), "
             "multi-version optimistic CC, or dependency-graph batching",
    )
    parser.add_argument(
        "--routing", choices=["affinity", "random"], default="affinity"
    )
    parser.add_argument(
        "--update", choices=["noforce", "force"], default="noforce"
    )
    parser.add_argument("--rate", type=float, default=100.0,
                        help="arrival rate per node [TPS]")
    parser.add_argument("--buffer", type=int, default=200,
                        help="database buffer pages per node")
    parser.add_argument("--workload", choices=["debit_credit", "trace"],
                        default="debit_credit")
    parser.add_argument("--trace-scale", type=float, default=0.1)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--warmup", type=float, default=2.0)
    parser.add_argument("--measure", type=float, default=8.0)
    parser.add_argument(
        "--faults", metavar="NODE:TIME:DOWN", action="append", default=None,
        help="crash NODE at simulated second TIME for DOWN seconds "
             "(repeatable; enables the fault-injection subsystem)",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="run under the simsan runtime sanitizer (observation-only "
             "invariant checks; identical results, slower run)",
    )
    _add_parallel_arguments(parser)


def _parse_fault_spec(text: str):
    try:
        node, time, down = text.split(":")
        return {"node": int(node), "time": float(time), "down_time": float(down)}
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"--faults expects NODE:TIME:DOWN, got {text!r}"
        ) from exc


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _add_profile_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", nargs="?", const="", default=None, metavar="FILE",
        help="run under cProfile and print the 25 hottest functions by "
             "cumulative time to stderr; with FILE, additionally dump "
             "the full pstats data there (inspect with python -m pstats)",
    )


def _add_parallel_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=_positive_int, default=1,
                        help="worker processes for simulations (default 1)")
    parser.add_argument("--seeds", type=_positive_int, default=1,
                        help="replicates per point; >1 reports mean ± 95%% CI")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the result cache")


def _config_from_args(args: argparse.Namespace) -> SystemConfig:
    faults = None
    if getattr(args, "faults", None):
        faults = {"crashes": [_parse_fault_spec(spec) for spec in args.faults]}
    return SystemConfig(
        faults=faults,
        num_nodes=args.nodes,
        coupling=args.coupling,
        protocol=args.protocol,
        routing=args.routing,
        update_strategy=args.update,
        arrival_rate_per_node=args.rate,
        buffer_pages_per_node=args.buffer,
        workload=args.workload,
        trace=TraceWorkloadConfig(scale=args.trace_scale),
        pcl_read_optimization=(
            args.coupling == "pcl" and args.workload == "trace"
        ),
        random_seed=args.seed,
        warmup_time=args.warmup,
        measure_time=args.measure,
        sanitize=getattr(args, "sanitize", False),
    )


def _make_runner(args: argparse.Namespace):
    """Build a SweepRunner from the shared --jobs/--seeds/--no-cache flags."""
    from repro.system.parallel import ResultCache, SweepRunner

    cache = None if args.no_cache else ResultCache()
    return SweepRunner(jobs=args.jobs, seeds=args.seeds, cache=cache,
                       progress=sys.stderr.isatty())


def _cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    if args.trace:
        from repro.obs import run_traced

        result, monitor = run_traced(config, args.trace)
        csv_path = args.trace + ".devices.csv"
        with open(csv_path, "w") as fh:
            fh.write(monitor.to_csv() + "\n")
        if args.json:
            print(json.dumps(result.as_dict(), indent=2, default=str))
        else:
            print(result.summary())
            print(result.response_breakdown.table())
            print(f"trace -> {args.trace}\ndevice series -> {csv_path}")
        return 0
    if args.breakdown:
        config = config.replace(collect_breakdown=True)
    if args.seeds > 1 or args.jobs > 1:
        with _make_runner(args) as runner:
            replicated = runner.run(config)
        if args.json:
            print(json.dumps(
                {
                    "seeds": replicated.seeds,
                    "replicates": [r.as_dict() for r in replicated.results],
                    "throughput": replicated.throughput_stats.__dict__,
                    "response_time_ms": replicated.response_time_stats.__dict__,
                    "cpu_utilization_max": replicated.utilization_stats.__dict__,
                },
                indent=2, default=str,
            ))
        else:
            print(replicated.summary())
        return 0
    result = run_simulation(config)
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, default=str))
    else:
        print(result.summary())
        print("hit ratios: "
              + ", ".join(f"{k}={v:.0%}" for k, v in result.hit_ratios.items()))
        if args.breakdown and result.response_breakdown is not None:
            print(result.response_breakdown.table())
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.experiments.common import Scale
    from repro.experiments.run_all import FIGURES, run_all

    scales = {"quick": Scale.quick, "smoke": Scale.smoke, "full": Scale.full}
    scale = scales[args.scale]()
    if args.figure == "all":
        run_all(scale, args.outdir, jobs=args.jobs, seeds=args.seeds,
                use_cache=not args.no_cache)
        return 0
    modules = dict(FIGURES)
    if args.figure == "table41":
        from repro.experiments import table41

        with _make_runner(args) as runner:
            anchor = table41.run(scale, runner=runner)
        print(anchor.summary())
        for check, ok in table41.validate(anchor).items():
            print(f"  {'PASS' if ok else 'FAIL'}  {check}")
        return 0
    if args.figure not in modules:
        print(f"unknown figure {args.figure!r}", file=sys.stderr)
        return 2
    kwargs = {}
    if getattr(args, "protocol", None):
        import inspect

        run_params = inspect.signature(modules[args.figure].run).parameters
        if "protocol" in run_params:
            kwargs["protocol"] = args.protocol
        elif "protocols" in run_params:
            kwargs["protocols"] = (args.protocol,)
        else:
            print(f"{args.figure} does not take --protocol", file=sys.stderr)
            return 2
    with _make_runner(args) as runner:
        print(modules[args.figure].run(scale, runner=runner, **kwargs).table())
    return 0


def _cmd_trace_gen(args: argparse.Namespace) -> int:
    from repro.workload.tracegen import main as tracegen_main

    return tracegen_main(
        [args.output, "--scale", str(args.scale), "--seed", str(args.seed)]
    )


def _cmd_predict(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    prediction = predict_debit_credit(config)
    for key, value in prediction.as_dict().items():
        print(f"{key:<24} {value:,.4g}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Closely coupled database sharing simulation (Rahm, ICDCS 1993)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser("run", help="simulate one configuration")
    _add_config_arguments(run_parser)
    run_parser.add_argument("--json", action="store_true")
    run_parser.add_argument(
        "--breakdown", action="store_true",
        help="collect and print the response-time decomposition",
    )
    run_parser.add_argument(
        "--trace", metavar="FILE", default=None,
        help="export a Chrome-trace JSON (about://tracing / Perfetto) of "
             "the run to FILE, plus FILE.devices.csv with per-device "
             "utilization time series; implies --breakdown",
    )
    _add_profile_argument(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    exp_parser = sub.add_parser("experiments", help="regenerate tables/figures")
    exp_parser.add_argument(
        "figure",
        help="table41, fig41..fig47, fig_failover, fig_shootout, "
             "fig_regimes, or 'all'",
    )
    exp_parser.add_argument(
        "--scale", choices=["quick", "smoke", "full"], default="quick"
    )
    exp_parser.add_argument(
        "--protocol", choices=["2pl", "mvcc", "dgcc"], default=None,
        help="concurrency-control protocol for figure drivers that "
             "accept one (fig41, fig45, fig47, fig_failover; "
             "fig_shootout/fig_regimes restrict their protocol grid)",
    )
    exp_parser.add_argument("--outdir", default="results")
    _add_parallel_arguments(exp_parser)
    _add_profile_argument(exp_parser)
    exp_parser.set_defaults(func=_cmd_experiments)

    trace_parser = sub.add_parser("trace-gen", help="generate a trace file")
    trace_parser.add_argument("output")
    trace_parser.add_argument("--scale", type=float, default=1.0)
    trace_parser.add_argument("--seed", type=int, default=42)
    trace_parser.set_defaults(func=_cmd_trace_gen)

    predict_parser = sub.add_parser(
        "predict", help="operational-law predictions for a configuration"
    )
    _add_config_arguments(predict_parser)
    predict_parser.set_defaults(func=_cmd_predict)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "profile", None) is None:
        return args.func(args)
    # --profile: run the subcommand under cProfile and report the
    # hottest functions by cumulative time on stderr (stdout stays
    # reserved for the subcommand's own output, e.g. --json).
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        status = args.func(args)
    finally:
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stderr)
        if args.profile:
            stats.dump_stats(args.profile)
            print(f"profile data -> {args.profile}", file=sys.stderr)
        stats.sort_stats("cumulative").print_stats(25)
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
