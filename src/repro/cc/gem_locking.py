"""Close coupling: concurrency/coherency control with a GEM lock table.

Every lock request and release is processed against a **global lock
table (GLT)** stored in Global Extended Memory (section 3.2):

* Acquiring or releasing a lock costs two synchronous GEM entry
  accesses (read the entry into main memory, write the modified value
  back with Compare&Swap); the accessing CPU is held for the complete
  operation, including queuing at the GEM server.
* Lock conflicts register a wait in the GLT; when the holder releases,
  it writes a grant notification entry per woken waiter, and the waiter
  re-reads the entry (one more access) before proceeding.
* Coherency control rides in the same entries: page sequence numbers
  detect buffer invalidations with no extra GEM traffic, and under
  NOFORCE the entry records the current **page owner**.  Stale or
  missing pages are requested from the owner with a short message and
  returned in a long message across the communication system -- or,
  optionally, exchanged through GEM itself
  (``config.page_transfer_via_gem``, an extension the paper's
  conclusions propose).
"""

from __future__ import annotations

from typing import Any, Generator, Mapping, Optional, Tuple, TYPE_CHECKING

from repro.cc.base import CCProtocol, LockGrant, PageSource
from repro.cc.messages import (
    GltRevokePayload,
    PageRequestPayload,
    PageResponsePayload,
)
from repro.db.pages import PageId
from repro.errors import TransactionAborted
from repro.obs import phases
from repro.node.lock_table import LockMode, LockTable
from repro.sim.engine import Event
from repro.sim.resources import held_chain, held_chain_cancel
from repro.sim.stats import Tally
from repro.workload.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.manager import CrashRecord, FaultManager
    from repro.node.node import Node
    from repro.system.cluster import Cluster

__all__ = ["GemLockingProtocol"]


class GemLockingProtocol(CCProtocol):
    """Global lock table in GEM with synchronous entry accesses."""

    name = "gem"

    def __init__(self, cluster: "Cluster") -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = cluster.config
        self.gem = cluster.gem
        self.detector = cluster.detector
        self.recorder = cluster.recorder
        self.glt = LockTable("glt")
        # Hot-path config values, resolved once (SystemConfig attribute
        # lookups on every entry access are measurable).
        self._gem_entry_instr = self.config.instructions_per_gem_entry_op
        self._lock_op_instr = self.config.instructions_per_lock_op
        self._auth = self.config.gem_lock_authorizations
        self._noforce = self.config.noforce
        self.lock_wait_time = Tally("gem.lock_wait")
        self.page_request_delay = Tally("gem.page_request_delay")
        self.page_requests = 0
        self.page_requests_failed = 0
        self.authorized_lock_requests = 0
        self.authorization_revocations = 0
        for node in cluster.nodes:
            node.register_handler("page_req", self._handle_page_request)
            node.register_handler("glt_revoke", self._handle_authorization_revoke)
            #: Pages this node holds a sole-interest lock authorization
            #: for (section 2's refinement; config.gem_lock_authorizations).
            node.gem_auth = set()

    # -- GEM entry access helper --------------------------------------------

    def _entry_chain(self, node_id: int, count: int) -> Event:
        """Build the chained entry for ``count`` synchronous GLT accesses.

        The whole CPU-grant / setup-instructions / server-access
        sequence is one chained entry (held_chain): the caller yields
        the returned completion event once per compound access instead
        of once per leg, guarding it with ``held_chain_cancel``.  The
        hottest call sites (lock acquire, commit release) yield it
        directly; colder paths go through the :meth:`_entry_ops`
        wrapper.
        """
        cpu = self.cluster.nodes[node_id].cpu
        instr = count * self._gem_entry_instr
        cpu.instructions_executed += instr
        gem = self.gem
        gem.entry_accesses += count
        return held_chain(
            cpu.resource,
            gem.server,
            instr / cpu.speed,
            count * gem.entry_access_time,
        )

    def _entry_ops(
        self, node_id: int, count: int, txn_id: Optional[int] = None
    ) -> Generator[Event, Any, None]:
        """``count`` synchronous GLT entry accesses, CPU held throughout.

        ``txn_id`` attributes the time to that transaction's GEM phase
        (acquire path); release-path accesses pass None and stay inside
        the covering COMMIT/BACKOFF span.  The span context manager is
        skipped entirely when tracing is off.
        """
        done = self._entry_chain(node_id, count)
        recorder = self.recorder
        if recorder.enabled:
            with recorder.span(txn_id, phases.GEM):
                try:
                    yield done
                except BaseException:
                    held_chain_cancel(done)
                    raise
        else:
            try:
                yield done
            except BaseException:
                held_chain_cancel(done)
                raise

    # -- lock acquisition ------------------------------------------------------

    def acquire(
        self,
        txn: Transaction,
        page: PageId,
        write: bool,
        cached_version: Optional[int],
    ) -> Generator[Event, Any, LockGrant]:
        node_id = txn.node
        node = self.cluster.nodes[node_id]
        mode = LockMode.EXCLUSIVE if write else LockMode.SHARED
        authorized = self._auth and page in node.gem_auth
        if authorized:
            # Sole-interest refinement (section 2): the local lock
            # manager processes the request without any GEM access.
            self.authorized_lock_requests += 1
            yield from node.cpu.consume(self._lock_op_instr)
        else:
            # Read the GLT entry and write back the updated value
            # (grant registered, or wait registered on conflict).  The
            # hottest GEM access: with tracing off the chain event is
            # yielded directly, skipping the _entry_ops generator.
            if self.recorder.enabled:
                yield from self._entry_ops(node_id, 2, txn_id=txn.txn_id)
            else:
                done = self._entry_chain(node_id, 2)
                try:
                    yield done
                except BaseException:
                    held_chain_cancel(done)
                    raise
            if self._auth:
                holder = min(self.glt.entry(page).auth_nodes, default=None)
                if holder is not None and holder != node_id:
                    with self.recorder.span(txn.txn_id, phases.COMM):
                        yield from self._revoke_authorization(node, page, holder)
        txn_id = txn.txn_id
        # Created lazily: immediate grants (the common case) never
        # invoke on_grant, so the wait event would be garbage.
        wait_event: Optional[Event] = None

        def on_grant() -> None:
            self.detector.clear(txn_id)
            assert wait_event is not None  # created before any queueing
            wait_event.succeed()

        granted = self.glt.request(txn_id, page, mode, on_grant)
        if not granted:
            wait_event = self.sim.event()
            blocked_at = self.sim.now

            def abort_victim() -> None:
                self.glt.cancel(txn_id, page)
                wait_event.fail(TransactionAborted(txn_id))

            self.detector.register_block(txn_id, self.glt, abort_victim)
            # The GLT is the global lock authority: waits here are
            # global lock waits in the breakdown.
            with self.recorder.span(txn_id, phases.LOCK_GLOBAL):
                yield wait_event  # raises TransactionAborted if chosen victim
            self.lock_wait_time.record(self.sim.now - blocked_at)
            if not authorized:
                # Re-read the entry after wake-up to observe the grant.
                yield from self._entry_ops(node_id, 1, txn_id=txn_id)
        txn.held_locks[page] = write or txn.held_locks.get(page, False)
        txn.local_lock_requests += 1
        entry = self.glt.entry(page)
        if (
            self._auth
            and not authorized
            and len(entry.holders) == 1
            and not entry.queue
        ):
            # Sole interest: authorize this node's local lock manager.
            entry.auth_nodes.clear()
            entry.auth_nodes.add(node_id)
            node.gem_auth.add(page)
        owner = entry.owner
        if self._noforce and owner is not None and owner != node_id:
            faults = self.cluster.faults
            if faults is None or not faults.is_down(owner):
                return LockGrant(
                    entry.seqno,
                    source=PageSource.OWNER,
                    owner_node=owner,
                    local=True,
                )
            # The owner crashed and its buffer is gone; read permanent
            # storage instead (gated behind REDO if the page was lost).
        return LockGrant(entry.seqno, source=PageSource.STORAGE, local=True)

    # -- NOFORCE page transfers ---------------------------------------------

    def request_page_from_owner(
        self, txn: Transaction, page: PageId, grant: LockGrant
    ) -> Generator[Event, Any, Optional[int]]:
        """Fetch the current page version from the owning node's buffer."""
        assert grant.owner_node is not None
        self.page_requests += 1
        started = self.sim.now
        with self.recorder.span(txn.txn_id, phases.PAGE_TRANSFER):
            if self.config.page_transfer_via_gem:
                version = yield from self._page_transfer_via_gem(txn, page, grant)
            else:
                node = self.cluster.nodes[txn.node]
                reply = self.sim.event()
                faults = self.cluster.faults
                if faults is not None:
                    faults.watch(grant.owner_node, reply)
                request: PageRequestPayload = {
                    "page": page,
                    "reply": reply,
                    "requester": txn.node,
                }
                yield from node.comm.send(grant.owner_node, "page_req", request)
                payload = yield reply
                if faults is not None:
                    faults.unwatch(grant.owner_node, reply)
                if payload.get("crashed"):
                    version = None
                else:
                    version = payload.get("version")
        if version is None:
            self.page_requests_failed += 1
        else:
            self.page_request_delay.record(self.sim.now - started)
        return version

    def _revoke_authorization(
        self, node: "Node", page: PageId, holder: int
    ) -> Generator[Event, Any, None]:
        """Another node holds the lock authorization: revoke it.

        The holder flushes its local lock state to the GLT (two entry
        accesses) and acknowledges; the requester then re-reads the
        entry (one access) before proceeding.
        """
        self.authorization_revocations += 1
        ack = self.sim.event()
        faults = self.cluster.faults
        if faults is not None:
            # A crash of the holder clears its authorization in
            # crash_node; answer the ack so the requester proceeds.
            faults.watch(holder, ack)
        revoke: GltRevokePayload = {
            "page": page,
            "ack": ack,
            "requester": node.node_id,
        }
        yield from node.comm.send(holder, "glt_revoke", revoke)
        yield ack
        if faults is not None:
            faults.unwatch(holder, ack)
        yield from self._entry_ops(node.node_id, 1)

    def _handle_authorization_revoke(
        self, node: "Node", payload: Mapping[str, Any]
    ) -> Generator[Event, Any, None]:
        page = payload["page"]
        node.gem_auth.discard(page)
        entry = self.glt.peek(page)
        if entry is not None:
            entry.auth_nodes.discard(node.node_id)
        # Flush the locally processed lock state back to the GLT.
        yield from self._entry_ops(node.node_id, 2)
        yield from node.comm.send(
            payload["requester"], "glt_revoke_ack", {}, reply_event=payload["ack"]
        )

    def _handle_page_request(
        self, node: "Node", payload: Mapping[str, Any]
    ) -> Generator[Event, Any, None]:
        """Owner-side handler: return the buffered page, if still owned."""
        page = payload["page"]
        reply: Event = payload["reply"]
        version = node.buffer.cached_version(page)
        response: PageResponsePayload = {"version": version}
        yield from node.comm.send(
            payload["requester"],
            "page_rsp",
            response,
            long=version is not None,
            reply_event=reply,
        )

    def _page_transfer_via_gem(
        self, txn: Transaction, page: PageId, grant: LockGrant
    ) -> Generator[Event, Any, Optional[int]]:
        """Extension: exchange the page through GEM instead of messages.

        The owner writes the page to a GEM exchange buffer, the
        requester reads it: two synchronous GEM page accesses plus the
        GEM I/O initiation overhead on both sides, coordinated through
        one entry access each -- far cheaper than 2 x 8000 instructions
        of message overhead.
        """
        owner_node = self.cluster.nodes[grant.owner_node]
        version = owner_node.buffer.cached_version(page)
        if version is None:
            return None
        # Owner side: initiate + write page to GEM (charged to owner).
        owner_cpu = owner_node.cpu
        yield from owner_cpu.grab()
        try:
            yield owner_cpu.busy_work(self.config.instructions_per_gem_io)
            yield from self.gem.access_page()
        finally:
            owner_cpu.release()
        # Requester side: read page from GEM.
        cpu = self.cluster.nodes[txn.node].cpu
        yield from cpu.grab()
        try:
            yield cpu.busy_work(self.config.instructions_per_gem_io)
            yield from self.gem.access_page()
        finally:
            cpu.release()
        return version

    # -- release ---------------------------------------------------------------

    def commit_release(self, txn: Transaction) -> Generator[Event, Any, None]:
        node_id = txn.node
        node = self.cluster.nodes[node_id]
        # No defensive copy: only the owning transaction's process
        # mutates held_locks, and it is suspended in this generator.
        for page in txn.held_locks:
            authorized = self._auth and page in node.gem_auth
            if authorized:
                yield from node.cpu.consume(self._lock_op_instr)
            else:
                done = self._entry_chain(node_id, 2)
                try:
                    yield done
                except BaseException:
                    held_chain_cancel(done)
                    raise
            entry = self.glt.entry(page)
            new_version = txn.modified.get(page)
            if new_version is not None:
                entry.seqno = new_version
                entry.owner = node_id if self._noforce else None
            granted = self.glt.release(txn.txn_id, page)
            if granted and not authorized:
                # One grant-notification entry write per woken waiter.
                done = self._entry_chain(node_id, len(granted))
                try:
                    yield done
                except BaseException:
                    held_chain_cancel(done)
                    raise
        txn.held_locks.clear()

    def abort_release(self, txn: Transaction) -> Generator[Event, Any, None]:
        # Idempotent and interruption-safe: pages are popped from
        # held_locks as they are released (not cleared in one sweep at
        # the end), and a page whose GLT entry is already gone -- a
        # racing crash-induced abort released it, or this generator was
        # interrupted mid-release and re-run -- is skipped instead of
        # double-released (LockTable.release raises on unheld pages).
        node_id = txn.node
        node = self.cluster.nodes[node_id]
        txn_id = txn.txn_id
        held = txn.held_locks
        while held:
            page = next(iter(held))  # insertion order, like the old loop
            if self.glt.holds(txn_id, page) is None:
                held.pop(page, None)
                continue
            authorized = self._auth and page in node.gem_auth
            if authorized:
                yield from node.cpu.consume(self._lock_op_instr)
            else:
                yield from self._entry_ops(node_id, 2)
            # Re-check after yielding: a crash-path abort may have
            # raced this release while the entry accesses were queued.
            if self.glt.holds(txn_id, page) is not None:
                granted = self.glt.release(txn_id, page)
            else:
                granted = []
            held.pop(page, None)
            if granted and not authorized:
                yield from self._entry_ops(node_id, len(granted))

    # -- write-back hook ----------------------------------------------------------

    def page_written_back(
        self, node_id: int, page: PageId, version: int
    ) -> Generator[Event, Any, None]:
        """Clear page ownership after a committed dirty page reached disk."""
        if self.config.force:
            return
        entry = self.glt.peek(page)
        if entry is None:
            return
        yield from self._entry_ops(node_id, 2)
        if entry.owner == node_id and entry.seqno == version:
            entry.owner = None

    # -- fault injection -----------------------------------------------------

    def lock_tables(self) -> Tuple[LockTable, ...]:
        return (self.glt,)

    def crash_node(self, faults: "FaultManager", record: "CrashRecord") -> None:
        """Synchronous teardown: the node's lock authorizations die.

        The GLT itself lives in non-volatile GEM and survives -- that
        is the close-coupling availability advantage the paper argues
        (section 5): no lock state is lost with a node.
        """
        node = self.cluster.nodes[record.node]
        if self.config.gem_lock_authorizations:
            node.gem_auth.clear()
            for entry in self.glt._entries.values():
                entry.auth_nodes.discard(record.node)

    def recover(
        self, faults: "FaultManager", record: "CrashRecord"
    ) -> Generator[Event, Any, None]:
        """Failover with a surviving GLT: release the dead node's locks.

        The coordinator scans the (intact) GLT for locks held by the
        crashed node's transactions, makes each entry's sequence number
        consistent with the ledger, and releases -- plain entry
        accesses, no lock-state reconstruction and no inter-node
        messages.  Then it REDOes the lost pages from the dead node's
        log.
        """
        coord = faults.coordinator()
        coord_node = self.cluster.nodes[coord]
        ledger = self.cluster.ledger
        for txn in record.killed:
            # The GLT is authoritative: a lock granted in the table just
            # before the crash may never have reached txn.held_locks
            # (the requester died between the table grant and its local
            # registration), so scan the table rather than trust the
            # dead transaction's bookkeeping.
            pages = set(txn.held_locks)
            pages.update(self.glt.held_pages(txn.txn_id))
            for page in sorted(pages):
                if self.glt.holds(txn.txn_id, page) is None:
                    continue
                yield from self._entry_ops(coord, 2)
                yield from coord_node.cpu.consume(
                    faults.config.recovery_instructions_per_lock
                )
                entry = self.glt.entry(page)
                entry.seqno = max(entry.seqno, ledger.committed_version(page))
                granted = self.glt.release(txn.txn_id, page)
                if granted:
                    yield from self._entry_ops(coord, len(granted))
        # Ownership entries pointing at the dead buffer are void.  For
        # non-lost pages the permanent copy is current, so clear them
        # now; lost pages keep readers fenced until REDO restores them.
        for page in sorted(
            p for p, e in self.glt._entries.items() if e.owner == record.node
        ):
            if page in record.lost:
                continue
            yield from self._entry_ops(coord, 1)
            self.glt._entries[page].owner = None
        yield from faults.redo_pages(record, coord)
        for entry in self.glt._entries.values():
            if entry.owner == record.node:
                entry.owner = None

    # reintegrate: the base no-op is correct -- the restarted node finds
    # its lock state in GEM; only the restart CPU (charged by the
    # manager) is needed.  This is the measurable reintegration gap
    # versus PCL's GLA failback.

    # -- statistics -------------------------------------------------------------

    def reset_stats(self) -> None:
        self.lock_wait_time.reset()
        self.page_request_delay.reset()
        self.page_requests = 0
        self.page_requests_failed = 0
        self.glt.requests = 0
        self.glt.immediate_grants = 0
        self.glt.waits = 0
        self.authorized_lock_requests = 0
        self.authorization_revocations = 0
