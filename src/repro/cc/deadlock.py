"""Global deadlock detection.

Both protocols register blocked transactions here.  On every new block
the detector searches the system-wide waits-for graph for a cycle
through the newly blocked transaction; if one exists, the *youngest*
transaction in the cycle (highest sequence number) is aborted via the
abort callback supplied at registration.

The debit-credit workload is deadlock-free by construction (all
transactions acquire locks in the same partition order), so this
machinery only fires for the trace workload and in targeted tests.  The
paper does not charge messages for its (unspecified) detection scheme;
neither do we -- detection is modelled as an oracle, which is
conservative in favour of the loosely coupled configurations.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.node.lock_table import LockTable

__all__ = ["DeadlockDetector"]


class DeadlockDetector:
    """System-wide waits-for graph and victim selection."""

    def __init__(self) -> None:
        # txn -> (lock table it waits in or None, abort callback, kind)
        self._blocked: Dict[
            int, Tuple[Optional[LockTable], Callable[[], None], str]
        ] = {}
        self.deadlocks_detected = 0
        self.victims: List[int] = []

    def register_block(
        self,
        txn: int,
        table: Optional[LockTable],
        abort: Callable[[], None],
        kind: str = "lock",
    ) -> Optional[int]:
        """Record that ``txn`` blocked in ``table``.

        Runs cycle detection and aborts the youngest participant of
        every cycle found.  The return value tells the *caller* whether
        its own wait was broken: the victim's id if ``txn`` itself was
        part of a resolved cycle (possibly ``txn``), else None.  The DFS
        can surface cycles that do not contain ``txn`` at all -- those
        are resolved too, but must not be reported as the caller's.

        ``kind`` distinguishes genuine lock-queue waits (``"lock"``,
        the default) from waits that cannot deadlock -- MVCC commit
        validation (``"validation"``) and DGCC epoch barriers
        (``"barrier"``).  Non-lock waits are registered only so the
        crash path (:meth:`abort_blocked`) can cancel them: they
        contribute no waits-for edges, trigger no cycle search and are
        never selected as deadlock victims.  ``table`` may be None for
        such waits.
        """
        self._blocked[txn] = (table, abort, kind)
        if kind != "lock":
            # A wait with no outgoing waits-for edges cannot close a
            # cycle; misclassifying it as a lock wait could victimize a
            # validating/barrier-parked transaction that holds no locks.
            return None
        caller_victim: Optional[int] = None
        while True:
            cycle = self._find_cycle(txn)
            if cycle is None:
                return caller_victim
            self.deadlocks_detected += 1
            victim = max(cycle)  # youngest = largest sequence number
            self.victims.append(victim)
            table_cb = self._blocked.get(victim)
            if table_cb is None:
                # Cycle members are blocked by construction; if the
                # victim somehow is not, bail out rather than re-finding
                # the same cycle forever.
                return victim if txn in cycle else caller_victim
            _table, abort_cb, _kind = table_cb
            self.clear(victim)
            abort_cb()
            if txn in cycle and caller_victim is None:
                caller_victim = victim
            if victim == txn or not self.is_blocked(txn):
                return caller_victim

    def clear(self, txn: int) -> None:
        """Forget ``txn`` (granted, cancelled or aborted)."""
        self._blocked.pop(txn, None)

    def abort_blocked(self, txn: int) -> bool:
        """Invoke ``txn``'s abort callback if it is blocked (fault path).

        Used when a node crash kills a transaction that is queued for a
        lock: the callback cancels the table registration and fails the
        waiter event, so GLA-side handler processes acting for the dead
        transaction unwind instead of waiting forever.
        """
        entry = self._blocked.pop(txn, None)
        if entry is None:
            return False
        entry[1]()
        return True

    def is_blocked(self, txn: int) -> bool:
        return txn in self._blocked

    def _edges_from(self, txn: int) -> Set[int]:
        entry = self._blocked.get(txn)
        if entry is None:
            return set()
        table, _abort, kind = entry
        if kind != "lock" or table is None:
            return set()
        return table.waiting_for(txn)

    def _find_cycle(self, start: int) -> Optional[List[int]]:
        """DFS for a cycle containing ``start`` in the waits-for graph."""
        path: List[int] = []
        on_path: Set[int] = set()
        visited: Set[int] = set()

        def dfs(txn: int) -> Optional[List[int]]:
            path.append(txn)
            on_path.add(txn)
            # Sorted so the DFS -- and therefore victim selection when a
            # transaction participates in several cycles -- does not
            # depend on set iteration order.
            for blocker in sorted(self._edges_from(txn)):
                if blocker == start:
                    return list(path)
                if blocker in on_path:
                    # A cycle not through `start`: report the sub-path.
                    index = path.index(blocker)
                    return path[index:]
                if blocker not in visited:
                    result = dfs(blocker)
                    if result is not None:
                        return result
            path.pop()
            on_path.discard(txn)
            visited.add(txn)
            return None

        return dfs(start)
