"""Dependency-graph concurrency control (DGCC).

Batched, planned execution in the style of deterministic/dependency-
graph systems (Calvin/DGCC lineage): arriving transactions **declare
their page access sets** and collect into an epoch batch.  Every epoch
the scheduler builds a conflict graph over the batch (two members
conflict when they share a page at least one of them writes) and
topologically levels it into **layers**; members of one layer are
mutually conflict-free and execute concurrently *without any
per-access locking*, layers run in declaration order behind a
completion barrier.  There are no lock conflicts, no deadlocks and no
validation aborts -- the price is the epoch admission delay and the
layer barriers.

Coupling regimes differ only in where the scheduler state lives:

* **GEM**: batch membership and the published schedule live in GEM --
  joining and publishing the schedule are synchronous entry accesses,
  completion reports are entry writes.  The batch state survives node
  crashes.
* **RDMA**: the batch area lives in the disaggregated memory pool;
  joins, schedule publication and completions are remote CAS round
  trips, committed pages are installed into the pool and fetched from
  it with one-sided reads (no owner messages).  The batch state
  survives node crashes like under GEM.
* **PCL**: the lowest-numbered surviving node runs the scheduler;
  joins ship the access set in a long message, the schedule is
  broadcast in short messages, completions are short messages.

Coherency control reuses the paper's NOFORCE ownership scheme: the
committer keeps the dirty page and later readers fetch it with a
page request/response exchange (both regimes -- the schedule names the
owner, so no directory lookup is needed).
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    TYPE_CHECKING,
)

from repro.cc.base import CCProtocol, LockGrant, PageSource
from repro.cc.messages import (
    DgccDonePayload,
    DgccJoinPayload,
    DgccSchedPayload,
    PageRequestPayload,
    PageResponsePayload,
)
from repro.db.pages import PageId
from repro.obs import phases
from repro.node.lock_table import LockTable
from repro.node.rdma import RdmaAccessHelper
from repro.sim.engine import Event
from repro.sim.stats import Tally
from repro.system.config import Coupling
from repro.workload.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.manager import CrashRecord, FaultManager
    from repro.node.node import Node
    from repro.system.cluster import Cluster

__all__ = ["DgccProtocol"]


class _Member:
    """One batch member: a transaction parked until its layer opens."""

    __slots__ = ("txn_id", "node", "accesses", "run_event", "layer")

    def __init__(
        self,
        txn_id: int,
        node: int,
        accesses: List[Tuple[PageId, bool]],
        run_event: Event,
    ) -> None:
        self.txn_id = txn_id
        self.node = node
        self.accesses = accesses
        self.run_event = run_event
        self.layer = 0


class DgccProtocol(CCProtocol):
    """Epoch-batched dependency-graph execution over either regime."""

    name = "dgcc"

    def __init__(self, cluster: "Cluster", gla_map: Callable[[PageId], int]) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = cluster.config
        self.gem = cluster.gem
        self.detector = cluster.detector
        self.recorder = cluster.recorder
        self.gla_map = gla_map
        #: Central batch-area mode: GEM and RDMA share the structure
        #: (crash-surviving batch state, synchronous word accesses);
        #: only the word-access cost model differs.
        self._gem_mode = cluster.config.coupling is not Coupling.PCL
        #: Pool-access helper under ``coupling="rdma"``, else None.
        self._rdma: Optional[RdmaAccessHelper] = (
            RdmaAccessHelper(cluster)
            if cluster.config.coupling is Coupling.RDMA
            else None
        )
        self._epoch = self.config.dgcc_epoch_seconds
        # Hot-path config values, resolved once.
        self._gem_entry_instr = self.config.instructions_per_gem_entry_op
        self._lock_op_instr = self.config.instructions_per_lock_op
        #: Conflict-graph construction cost per declared access.
        self._sched_instr = self.config.instructions_per_gem_entry_op
        self._noforce = self.config.noforce
        #: Committed page sequence numbers (the schedule's version
        #: knowledge; DGCC needs no per-page directory lookups).
        self._seqnos: Dict[PageId, int] = {}
        #: NOFORCE page owners: committer keeps the dirty copy.
        self._owners: Dict[PageId, int] = {}
        #: Members awaiting the next epoch, keyed by txn_id.
        self._collecting: Dict[int, _Member] = {}
        #: All live members (collecting, parked or running).
        self._members: Dict[int, _Member] = {}
        self._current_layer: Set[int] = set()
        self._batch_event: Optional[Event] = None
        self.lock_wait_time = Tally("dgcc.batch_wait")
        self.batch_size = Tally("dgcc.batch_size")
        self.page_request_delay = Tally("dgcc.page_request_delay")
        self.batches = 0
        self.layers_total = 0
        self.page_requests = 0
        self.page_requests_failed = 0
        self.local_lock_requests = 0
        self.remote_lock_requests = 0
        for node in cluster.nodes:
            node.register_handler("page_req", self._handle_page_request)
            if not self._gem_mode:
                node.register_handler("dgcc_join", self._handle_join)
                node.register_handler("dgcc_done", self._handle_done)
        self.sim.process(self._driver(), name="dgcc-driver")

    # -- helpers -----------------------------------------------------------

    def _coordinator(self) -> int:
        faults = self.cluster.faults
        return faults.coordinator() if faults is not None else 0

    def _entry_ops(
        self, node_id: int, count: int, txn_id: Optional[int] = None
    ) -> Generator[Event, Any, None]:
        """``count`` batch-area word accesses: synchronous GEM entry
        accesses, or remote CAS round trips under disaggregation."""
        if self._rdma is not None:
            yield from self._rdma.cas(node_id, count, txn_id=txn_id)
            return
        cpu = self.cluster.nodes[node_id].cpu
        with self.recorder.span(txn_id, phases.GEM):
            yield from cpu.grab()
            try:
                yield cpu.busy_work(count * self._gem_entry_instr)
                yield from self.gem.access_entries(count)
            finally:
                cpu.release()

    # -- the epoch driver --------------------------------------------------

    def _driver(self) -> Generator[Event, Any, None]:
        """Cluster-level scheduler process (never dies; its CPU costs
        are charged to the current coordinator node)."""
        while True:
            yield self.sim.timeout(self._epoch)
            if self._collecting:
                yield from self._run_batch()

    def _run_batch(self) -> Generator[Event, Any, None]:
        members = [self._collecting[t] for t in sorted(self._collecting)]
        self._collecting = {}
        self.batches += 1
        self.batch_size.record(len(members))
        coord = self._coordinator()
        total_accesses = sum(len(m.accesses) for m in members)
        # Publish the schedule: entry writes under GEM, a broadcast of
        # short (delivery-confirmed) messages under PCL.
        if self._gem_mode:
            yield from self._entry_ops(coord, 2 * len(members))
        else:
            coord_node = self.cluster.nodes[coord]
            faults = self.cluster.faults
            sched: DgccSchedPayload = {"batch": self.batches}
            for node in self.cluster.nodes:
                if node.node_id == coord:
                    continue
                if faults is not None and faults.is_down(node.node_id):
                    continue
                notice = self.sim.event()
                yield from coord_node.comm.send(
                    node.node_id, "dgcc_sched", sched, reply_event=notice
                )
                yield notice
        # Conflict-graph construction at the coordinator.
        yield from self.cluster.nodes[coord].cpu.consume(
            self._sched_instr * total_accesses
        )
        layers = self._build_layers(members)
        self.layers_total += len(layers)
        for layer in layers:
            # Members may have died (node crash) since the snapshot.
            alive = [m for m in layer if m.txn_id in self._members]
            self._current_layer = {m.txn_id for m in alive}
            if not self._current_layer:
                continue
            event = self.sim.event()
            self._batch_event = event
            for member in alive:
                self.detector.clear(member.txn_id)
                if not member.run_event.triggered:
                    member.run_event.succeed()
            yield event
            self._batch_event = None
        self._current_layer = set()

    @staticmethod
    def _build_layers(members: List[_Member]) -> List[List[_Member]]:
        """Topological levelling of the batch conflict graph.

        Members are processed in txn_id order (arrival-independent and
        deterministic); a member lands one layer below the deepest
        earlier member it conflicts with.  Reads only conflict with
        writes, so read-read sharing stays within one layer.
        """
        last_write: Dict[PageId, int] = {}
        last_any: Dict[PageId, int] = {}
        layers: List[List[_Member]] = []
        for member in members:
            level = 0
            for page, write in member.accesses:
                prev = last_any.get(page) if write else last_write.get(page)
                if prev is not None and prev + 1 > level:
                    level = prev + 1
            for page, write in member.accesses:
                if write and last_write.get(page, -1) < level:
                    last_write[page] = level
                if last_any.get(page, -1) < level:
                    last_any[page] = level
            while len(layers) <= level:
                layers.append([])
            layers[level].append(member)
            member.layer = level
        return layers

    def _member_done(self, txn_id: int) -> None:
        """A member finished (commit, abort or crash).  Idempotent;
        advances the layer barrier when it was the last one out."""
        member = self._members.pop(txn_id, None)
        if member is None:
            return
        self._collecting.pop(txn_id, None)
        if txn_id in self._current_layer:
            self._current_layer.discard(txn_id)
            if (
                not self._current_layer
                and self._batch_event is not None
                and not self._batch_event.triggered
            ):
                self._batch_event.succeed()

    # -- acquisition -------------------------------------------------------

    def acquire(
        self,
        txn: Transaction,
        page: PageId,
        write: bool,
        cached_version: Optional[int],
    ) -> Generator[Event, Any, LockGrant]:
        txn_id = txn.txn_id
        member = self._members.get(txn_id)
        if member is None:
            # First access: declare the access set, join the batch and
            # park until the member's layer opens.
            yield from self._join(txn)
        else:
            # Scheduled plan: per-access grants are local bookkeeping.
            self.local_lock_requests += 1
            txn.local_lock_requests += 1
            yield from self.cluster.nodes[txn.node].cpu.consume(self._lock_op_instr)
        txn.held_locks[page] = write or txn.held_locks.get(page, False)
        seqno = self._seqnos.get(page, 0)
        if self._noforce:
            if self._rdma is not None:
                if self._rdma.current(page, seqno):
                    # Pool-resident committed copy: a one-sided read
                    # serves it, installer liveness irrelevant.
                    return LockGrant(
                        seqno,
                        source=PageSource.OWNER,
                        owner_node=self._owners.get(page),
                        local=True,
                    )
            else:
                owner = self._owners.get(page)
                if owner is not None and owner != txn.node:
                    faults = self.cluster.faults
                    if faults is None or not faults.is_down(owner):
                        return LockGrant(
                            seqno,
                            source=PageSource.OWNER,
                            owner_node=owner,
                            local=True,
                        )
        return LockGrant(seqno, source=PageSource.STORAGE, local=True)

    def _join(self, txn: Transaction) -> Generator[Event, Any, None]:
        node_id = txn.node
        txn_id = txn.txn_id
        node = self.cluster.nodes[node_id]
        member = _Member(txn_id, node_id, txn.lockable_pages(), self.sim.event())
        self._members[txn_id] = member
        self._collecting[txn_id] = member
        if self._gem_mode:
            self.local_lock_requests += 1
            txn.local_lock_requests += 1
            yield from self._entry_ops(node_id, 2, txn_id=txn_id)
        else:
            coord = self._coordinator()
            if coord == node_id:
                self.local_lock_requests += 1
                txn.local_lock_requests += 1
                yield from node.cpu.consume(self._lock_op_instr)
            else:
                self.remote_lock_requests += 1
                txn.remote_lock_requests += 1
                join: DgccJoinPayload = {
                    "txn_id": txn_id,
                    "accesses": member.accesses,
                    "requester": node_id,
                }
                with self.recorder.span(txn_id, phases.COMM):
                    yield from node.comm.send(coord, "dgcc_join", join, long=True)
        if member.run_event.triggered:
            return

        def detach() -> None:
            # Crash path: the parked member is being killed.
            self._member_done(txn_id)
            if not member.run_event.triggered:
                member.run_event.succeed()

        self.detector.register_block(txn_id, None, detach, kind="barrier")
        blocked_at = self.sim.now
        with self.recorder.span(txn_id, phases.LOCK_GLOBAL):
            yield member.run_event
        self.lock_wait_time.record(self.sim.now - blocked_at)
        self.detector.clear(txn_id)

    def _handle_join(
        self, node: "Node", payload: Mapping[str, Any]
    ) -> Generator[Event, Any, None]:
        # Membership is registered centrally at send time; this charges
        # the scheduler-side processing cost.
        yield from node.cpu.consume(self._lock_op_instr)

    def _handle_done(
        self, node: "Node", payload: Mapping[str, Any]
    ) -> Generator[Event, Any, None]:
        yield from node.cpu.consume(self._lock_op_instr)

    # -- NOFORCE page transfers --------------------------------------------

    def request_page_from_owner(
        self, txn: Transaction, page: PageId, grant: LockGrant
    ) -> Generator[Event, Any, Optional[int]]:
        if self._rdma is not None:
            # One-sided pool read; no owner participates.
            self.page_requests += 1
            pool_started = self.sim.now
            pool_version = yield from self._rdma.fetch(txn, page, grant.seqno)
            if pool_version is None:
                self.page_requests_failed += 1
            else:
                self.page_request_delay.record(self.sim.now - pool_started)
            return pool_version
        assert grant.owner_node is not None
        self.page_requests += 1
        started = self.sim.now
        with self.recorder.span(txn.txn_id, phases.PAGE_TRANSFER):
            node = self.cluster.nodes[txn.node]
            reply = self.sim.event()
            faults = self.cluster.faults
            if faults is not None:
                faults.watch(grant.owner_node, reply)
            request: PageRequestPayload = {
                "page": page,
                "reply": reply,
                "requester": txn.node,
            }
            yield from node.comm.send(grant.owner_node, "page_req", request)
            payload = yield reply
            if faults is not None:
                faults.unwatch(grant.owner_node, reply)
            if payload.get("crashed"):
                version: Optional[int] = None
            else:
                version = payload.get("version")
        if version is None:
            self.page_requests_failed += 1
        else:
            self.page_request_delay.record(self.sim.now - started)
        return version

    def _handle_page_request(
        self, node: "Node", payload: Mapping[str, Any]
    ) -> Generator[Event, Any, None]:
        version = node.buffer.cached_version(payload["page"])
        response: PageResponsePayload = {"version": version}
        yield from node.comm.send(
            payload["requester"],
            "page_rsp",
            response,
            long=version is not None,
            reply_event=payload["reply"],
        )

    # -- release -----------------------------------------------------------

    def commit_release(self, txn: Transaction) -> Generator[Event, Any, None]:
        node_id = txn.node
        txn_id = txn.txn_id
        modified = sorted(txn.modified.items())
        # Publish versions and the completion: entry writes (GEM) or
        # one short completion message to the scheduler (PCL).
        if self._gem_mode:
            yield from self._entry_ops(node_id, 1 + len(modified))
        else:
            coord = self._coordinator()
            node = self.cluster.nodes[node_id]
            if coord == node_id:
                yield from node.cpu.consume(self._lock_op_instr)
            else:
                done: DgccDonePayload = {"txn_id": txn_id, "committed": True}
                yield from node.comm.send(coord, "dgcc_done", done)
        if self._rdma is not None and self._noforce and modified:
            # Disaggregation: committed pages go into the pool with
            # one-sided writes; stale cache copies drop at this instant.
            yield from self._rdma.install(node_id, modified)
        for page, version in modified:
            if version > self._seqnos.get(page, 0):
                self._seqnos[page] = version
            if self._noforce:
                self._owners[page] = node_id
            else:
                self._owners.pop(page, None)
        txn.held_locks.clear()
        self._member_done(txn_id)

    def abort_release(self, txn: Transaction) -> Generator[Event, Any, None]:
        # Nothing was locked and nothing published: leave the batch (or
        # mark the running member done so its layer can advance).
        # Idempotent -- _member_done tolerates repeated calls.
        self._member_done(txn.txn_id)
        txn.held_locks.clear()
        return
        yield  # pragma: no cover - makes this a generator

    # -- write-back hook ---------------------------------------------------

    def page_written_back(
        self, node_id: int, page: PageId, version: int
    ) -> Generator[Event, Any, None]:
        """Clear page ownership once the committed version reached disk."""
        if self.config.force:
            return
        if self._owners.get(page) != node_id or self._seqnos.get(page, 0) != version:
            return
        if self._gem_mode:
            yield from self._entry_ops(node_id, 1)
        if self._owners.get(page) == node_id:
            del self._owners[page]
        if self._rdma is not None:
            self._rdma.written_back(page, version)

    # -- fault injection ---------------------------------------------------

    def lock_tables(self) -> Tuple[LockTable, ...]:
        return ()

    def crash_node(self, faults: "FaultManager", record: "CrashRecord") -> None:
        """Purge the dead node's batch members synchronously (a layer
        must never wait on a transaction that no longer exists) and
        extend the lost-page set with dead-owner pages."""
        for txn in record.killed:
            self._member_done(txn.txn_id)
        # The dead node owned pages whose only write-back copy was its
        # buffer: a surviving *clean* current copy cannot reach storage,
        # so such pages must be REDOne even though readers cache them.
        ledger = self.cluster.ledger
        for page, committed in ledger.stale_pages():
            if page in record.lost or self._owners.get(page) != record.node:
                continue
            if any(
                node.buffer.has_current_dirty(page, committed)
                for node in self.cluster.nodes
                if node.node_id != record.node
            ):
                continue
            record.lost[page] = committed
        # Disaggregation: pages whose committed version is pool-resident
        # did not die with the node's buffer -- trim them from the lost
        # set before the fault manager fences it behind REDO.
        if self._rdma is not None:
            self._rdma.trim_lost(record)

    def recover(
        self, faults: "FaultManager", record: "CrashRecord"
    ) -> Generator[Event, Any, None]:
        """Failover: reconcile the schedule's version/owner knowledge
        with the committed ledger, then REDO the lost pages.  The batch
        state itself needs no reconstruction -- dead members were
        purged at the crash instant and the (GEM-resident respectively
        coordinator-resident) schedule survives by construction."""
        coord = faults.coordinator()
        coord_node = self.cluster.nodes[coord]
        ledger = self.cluster.ledger
        cfg = faults.config
        # Versions a dead committer installed in the ledger but never
        # published to the scheduler.
        for txn in sorted(record.killed, key=lambda t: t.txn_id):
            for page in sorted(txn.modified):
                committed = ledger.committed_version(page)
                if committed > self._seqnos.get(page, 0):
                    self._seqnos[page] = committed
        # Ownership entries pointing at the dead buffer are void; lost
        # pages keep readers fenced until REDO restores them.
        for page in sorted(p for p, o in self._owners.items() if o == record.node):
            if page in record.lost:
                continue
            if self._gem_mode:
                yield from self._entry_ops(coord, 1)
            else:
                yield from coord_node.cpu.consume(cfg.recovery_instructions_per_lock)
            self._owners.pop(page, None)
        yield from faults.redo_pages(record, coord)
        for page in sorted(p for p, o in self._owners.items() if o == record.node):
            self._owners.pop(page, None)

    def reintegrate(
        self, faults: "FaultManager", record: "CrashRecord"
    ) -> Generator[Event, Any, None]:
        """GEM/PCL: no-op -- the restarted node simply resumes joining
        batches; there is no partitioned protocol state to fail back.
        RDMA: the node must re-register with the fabric first."""
        if self._rdma is not None:
            yield from self._rdma.reintegrate(record)

    # -- introspection / statistics ----------------------------------------

    def num_blocked(self) -> int:
        return sum(
            1 for member in self._members.values() if not member.run_event.triggered
        )

    def lock_stats(self) -> Dict[str, float]:
        total = self.local_lock_requests + self.remote_lock_requests
        return {
            "local_share": self.local_lock_requests / total if total else 1.0,
            "remote_lock_requests": float(self.remote_lock_requests),
            "lock_requests": float(total),
            "mean_lock_wait": self.lock_wait_time.mean,
            "page_requests": float(self.page_requests),
            "mean_page_request_delay": self.page_request_delay.mean,
            "pages_supplied_with_grant": 0.0,
        }

    def reset_stats(self) -> None:
        self.lock_wait_time.reset()
        self.batch_size.reset()
        self.page_request_delay.reset()
        self.batches = 0
        self.layers_total = 0
        self.page_requests = 0
        self.page_requests_failed = 0
        self.local_lock_requests = 0
        self.remote_lock_requests = 0
