"""Multi-version timestamp-ordered optimistic CC (MVCC).

A Hekaton-style protocol ([LBD+11]-lineage, adapted to the paper's
coupling regimes): transactions read committed version snapshots
without any locking, writers take lightweight **first-writer-wins
reservations**, and a commit-time validation checks that every page
read is still current.  The serialization order is the order of
**commit timestamps** drawn from one monotonic counter:

* Under **close coupling (GEM)** the version directory -- one entry
  per page with the committed sequence number and (NOFORCE) the page
  owner -- and the timestamp counter live in non-volatile GEM.  Every
  directory operation is a synchronous entry access exactly like a GLT
  access in :class:`~repro.cc.gem_locking.GemLockingProtocol` (CPU
  held throughout).  The directory survives node crashes.
* Under **loose coupling (PCL)** the directory is partitioned across
  the nodes like the GLAs of primary copy locking: reads, write
  reservations, validation and version installs against a remote home
  travel as messages; a cached copy is read message-free as an
  optimistic snapshot (validation catches staleness).  The timestamp
  counter is served by the lowest-numbered surviving node.  A crash
  loses the dead node's directory partition; it is rebuilt from the
  committed ledger during failover.
* Under **memory disaggregation (RDMA)** the directory has the GEM
  structure -- one central version directory, crash-surviving -- but
  every directory word access is a one-sided remote CAS against the
  pool (:class:`~repro.node.rdma.RdmaAccessHelper`), committed pages
  are installed into the pool with one-sided page writes (eagerly
  invalidating stale compute-side cache copies), and a missing page
  is fetched from the pool with a one-sided read instead of an
  owner-to-requester message exchange.

Validation waits use commit-timestamp order: a validator only ever
waits for reservation holders with a *smaller assigned* commit
timestamp, so waits-for edges point strictly backward in timestamp
order and can never form a deadlock cycle (holders without an assigned
timestamp will draw a larger one from the monotonic counter and are
safely ignored -- they will wait for *us*).
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    List,
    Mapping,
    Optional,
    Tuple,
    TYPE_CHECKING,
)

from repro.cc.base import CCProtocol, LockGrant, PageSource
from repro.cc.messages import (
    GlaTransferPayload,
    MvccAbortPayload,
    MvccInstallPayload,
    MvccReadPayload,
    MvccReadResponsePayload,
    MvccReservePayload,
    MvccValidatePayload,
    PageRequestPayload,
    PageResponsePayload,
    TimestampRequestPayload,
    TimestampResponsePayload,
    LockResponsePayload,
)
from repro.db.pages import PageId
from repro.errors import TransactionAborted
from repro.obs import phases
from repro.node.lock_table import LockTable
from repro.node.rdma import RdmaAccessHelper
from repro.sim.engine import Event
from repro.sim.stats import Tally
from repro.system.config import Coupling
from repro.workload.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.manager import CrashRecord, FaultManager
    from repro.node.node import Node
    from repro.system.cluster import Cluster

__all__ = ["MvccProtocol"]


class MvccProtocol(CCProtocol):
    """Multi-version optimistic CC over either coupling regime."""

    name = "mvcc"
    multiversion = True

    def __init__(self, cluster: "Cluster", gla_map: Callable[[PageId], int]) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = cluster.config
        self.gem = cluster.gem
        self.detector = cluster.detector
        self.recorder = cluster.recorder
        self.gla_map = gla_map
        #: Central-directory mode: GEM and RDMA share the directory
        #: structure (one crash-surviving table, synchronous word
        #: accesses); only the word-access cost model differs.
        self._gem_mode = cluster.config.coupling is not Coupling.PCL
        #: Pool-access helper when the directory lives in disaggregated
        #: memory (``coupling="rdma"``), else None.
        self._rdma: Optional[RdmaAccessHelper] = (
            RdmaAccessHelper(cluster)
            if cluster.config.coupling is Coupling.RDMA
            else None
        )
        if self._gem_mode:
            #: One GEM/pool-resident version directory (non-volatile).
            self.tables: List[LockTable] = [LockTable("mvccdir")]
        else:
            #: Per-home directory partitions, volatile like the GLAs.
            self.tables = [
                LockTable(f"mvccdir{n}") for n in range(cluster.config.num_nodes)
            ]
        # Hot-path config values, resolved once.
        self._gem_entry_instr = self.config.instructions_per_gem_entry_op
        self._lock_op_instr = self.config.instructions_per_lock_op
        self._noforce = self.config.noforce
        #: Monotonic begin/commit timestamp counter (GEM cell or served
        #: by the timestamp authority node under PCL; it is modelled as
        #: surviving crashes either way -- a real system would keep it
        #: in GEM respectively re-seed it above the largest logged one).
        self._next_ts = 1
        #: page -> txn holding the (first-writer-wins) write reservation.
        self._reservations: Dict[PageId, int] = {}
        #: txn -> assigned commit timestamp (published at allocation).
        self._txn_tc: Dict[int, int] = {}
        #: blocker txn -> [(waiter txn, wake event)] validation waits.
        self._waiters: Dict[int, List[Tuple[int, Event]]] = {}
        self.lock_wait_time = Tally("mvcc.validation_wait")
        self.remote_grant_delay = Tally("mvcc.remote_grant_delay")
        self.page_request_delay = Tally("mvcc.page_request_delay")
        self.page_requests = 0
        self.page_requests_failed = 0
        self.local_lock_requests = 0
        self.remote_lock_requests = 0
        self.pages_supplied_with_grant = 0
        self.pages_shipped_with_release = 0
        self.timestamps_drawn = 0
        self.reservation_conflicts = 0
        self.validation_failures = 0
        self.commits_validated = 0
        for node in cluster.nodes:
            if self._gem_mode:
                node.register_handler("page_req", self._handle_page_request)
            else:
                node.register_handler("mv_ts", self._handle_ts)
                node.register_handler("mv_read", self._handle_read)
                node.register_handler("mv_reserve", self._handle_reserve)
                node.register_handler("mv_validate", self._handle_validate)
                node.register_handler("mv_install", self._handle_install)
                node.register_handler("mv_abort", self._handle_abort)

    # -- directory helpers -------------------------------------------------

    def _table_for(self, page: PageId) -> LockTable:
        if self._gem_mode:
            return self.tables[0]
        return self.tables[self.gla_map(page)]

    def _entry_ops(
        self, node_id: int, count: int, txn_id: Optional[int] = None
    ) -> Generator[Event, Any, None]:
        """``count`` directory word accesses: synchronous GEM entry
        accesses, or remote CAS round trips under disaggregation."""
        if self._rdma is not None:
            yield from self._rdma.cas(node_id, count, txn_id=txn_id)
            return
        cpu = self.cluster.nodes[node_id].cpu
        with self.recorder.span(txn_id, phases.GEM):
            yield from cpu.grab()
            try:
                yield cpu.busy_work(count * self._gem_entry_instr)
                yield from self.gem.access_entries(count)
            finally:
                cpu.release()

    # -- timestamps --------------------------------------------------------

    def _alloc_ts(self, txn_id: int, commit: bool) -> int:
        ts = self._next_ts
        self._next_ts += 1
        if commit:
            # Published at allocation (not on reply arrival): a
            # concurrent validator must be able to order itself against
            # this transaction the instant the timestamp exists.
            self._txn_tc[txn_id] = ts
        return ts

    def _draw_ts(
        self, node_id: int, txn_id: int, commit: bool
    ) -> Generator[Event, Any, int]:
        """Draw a timestamp: one GEM entry access, or a message round
        to the timestamp authority (free when the authority is local)."""
        self.timestamps_drawn += 1
        if self._gem_mode:
            yield from self._entry_ops(node_id, 1, txn_id=txn_id)
            return self._alloc_ts(txn_id, commit)
        faults = self.cluster.faults
        node = self.cluster.nodes[node_id]
        while True:
            authority = faults.coordinator() if faults is not None else 0
            if authority == node_id:
                yield from node.cpu.consume(self._lock_op_instr)
                return self._alloc_ts(txn_id, commit)
            reply = self.sim.event()
            if faults is not None:
                faults.watch(authority, reply)
            request: TimestampRequestPayload = {
                "txn_id": txn_id,
                "commit": commit,
                "requester": node_id,
                "reply": reply,
            }
            with self.recorder.span(txn_id, phases.COMM):
                yield from node.comm.send(authority, "mv_ts", request)
                payload = yield reply
            if faults is not None:
                faults.unwatch(authority, reply)
                if payload.get("crashed"):
                    # The authority died before answering; a re-draw at
                    # its successor supersedes any published timestamp.
                    continue
            ts: int = payload["ts"]
            return ts

    def _handle_ts(
        self, node: "Node", payload: Mapping[str, Any]
    ) -> Generator[Event, Any, None]:
        yield from node.cpu.consume(self._lock_op_instr)
        response: TimestampResponsePayload = {
            "ts": self._alloc_ts(payload["txn_id"], payload["commit"])
        }
        yield from node.comm.send(
            payload["requester"], "mv_ts_rsp", response, reply_event=payload["reply"]
        )

    # -- acquisition -------------------------------------------------------

    def acquire(
        self,
        txn: Transaction,
        page: PageId,
        write: bool,
        cached_version: Optional[int],
    ) -> Generator[Event, Any, LockGrant]:
        if txn.begin_ts is None:
            txn.begin_ts = yield from self._draw_ts(
                txn.node, txn.txn_id, commit=False
            )
        if self._gem_mode:
            grant = yield from self._acquire_gem(txn, page, write)
            return grant
        grant = yield from self._acquire_pcl(txn, page, write, cached_version)
        return grant

    def _doomed(self, txn: Transaction, page: PageId, current: int) -> bool:
        """Early doom check: a recorded read snapshot was superseded."""
        recorded = txn.read_versions.get(page)
        if recorded is None or recorded == current:
            return False
        self.validation_failures += 1
        self.cluster.nodes[txn.node].buffer.invalidate_stale(page, current)
        return True

    def _reserve(self, txn_id: int, page: PageId) -> bool:
        """Take the first-writer-wins reservation; False on conflict."""
        holder = self._reservations.get(page)
        if holder is not None and holder != txn_id:
            self.reservation_conflicts += 1
            return False
        self._reservations[page] = txn_id
        return True

    def _grant_from_entry(
        self, node_id: int, page: PageId, seqno: int
    ) -> LockGrant:
        """Local/GEM grant: hand out the owner if another node's buffer
        holds the current version (GEM NOFORCE page transfer)."""
        owner = self._table_for(page).entry(page).owner
        if self._rdma is not None:
            if self._noforce and self._rdma.current(page, seqno):
                # The committed copy is pool-resident: served by a
                # one-sided read, installer liveness irrelevant.
                return LockGrant(
                    seqno, source=PageSource.OWNER, owner_node=owner, local=True
                )
            return LockGrant(seqno, source=PageSource.STORAGE, local=True)
        if (
            self._gem_mode
            and self._noforce
            and owner is not None
            and owner != node_id
        ):
            faults = self.cluster.faults
            if faults is None or not faults.is_down(owner):
                return LockGrant(
                    seqno, source=PageSource.OWNER, owner_node=owner, local=True
                )
        return LockGrant(seqno, source=PageSource.STORAGE, local=True)

    def _acquire_gem(
        self, txn: Transaction, page: PageId, write: bool
    ) -> Generator[Event, Any, LockGrant]:
        node_id = txn.node
        txn_id = txn.txn_id
        self.local_lock_requests += 1
        txn.local_lock_requests += 1
        directory = self.tables[0]
        if write:
            # Read the entry, write back the reservation: two accesses.
            yield from self._entry_ops(node_id, 2, txn_id=txn_id)
            entry = directory.entry(page)
            if self._doomed(txn, page, entry.seqno):
                raise TransactionAborted(txn_id)
            if not self._reserve(txn_id, page):
                raise TransactionAborted(txn_id)
            txn.held_locks[page] = True
            txn.read_versions.setdefault(page, entry.seqno)
            return self._grant_from_entry(node_id, page, entry.seqno)
        # Snapshot read: one entry access to learn the current seqno.
        yield from self._entry_ops(node_id, 1, txn_id=txn_id)
        entry = directory.entry(page)
        seqno = txn.read_versions.setdefault(page, entry.seqno)
        txn.held_locks[page] = txn.held_locks.get(page, False)
        return self._grant_from_entry(node_id, page, seqno)

    def _acquire_pcl(
        self,
        txn: Transaction,
        page: PageId,
        write: bool,
        cached_version: Optional[int],
    ) -> Generator[Event, Any, LockGrant]:
        node_id = txn.node
        txn_id = txn.txn_id
        home = self.gla_map(page)
        faults = self.cluster.faults
        while True:
            if faults is None:
                host = home
            else:
                host = yield from faults.resolve_gla(home)
            node = self.cluster.nodes[node_id]
            if host == node_id:
                # Directory partition hosted here: process locally.
                self.local_lock_requests += 1
                txn.local_lock_requests += 1
                yield from node.cpu.consume(self._lock_op_instr)
                entry = self.tables[home].entry(page)
                if write:
                    if self._doomed(txn, page, entry.seqno):
                        raise TransactionAborted(txn_id)
                    if not self._reserve(txn_id, page):
                        raise TransactionAborted(txn_id)
                    txn.held_locks[page] = True
                    txn.read_versions.setdefault(page, entry.seqno)
                    return LockGrant(
                        entry.seqno, source=PageSource.STORAGE, local=True
                    )
                seqno = txn.read_versions.setdefault(page, entry.seqno)
                txn.held_locks[page] = txn.held_locks.get(page, False)
                return LockGrant(seqno, source=PageSource.STORAGE, local=True)
            if not write and cached_version is not None:
                # Optimistic message-free snapshot read of the cached
                # copy; commit validation catches staleness (and then
                # invalidates the copy, so a restart refetches).
                self.local_lock_requests += 1
                txn.local_lock_requests += 1
                yield from node.cpu.consume(self._lock_op_instr)
                seqno = txn.read_versions.setdefault(page, cached_version)
                txn.held_locks[page] = txn.held_locks.get(page, False)
                return LockGrant(seqno, source=PageSource.STORAGE, local=True)
            grant = yield from self._acquire_pcl_remote(
                txn, page, write, home, host, cached_version
            )
            if grant is not None:
                return grant
            # The host crashed before answering: re-resolve and retry.

    def _acquire_pcl_remote(
        self,
        txn: Transaction,
        page: PageId,
        write: bool,
        home: int,
        host: int,
        cached_version: Optional[int],
    ) -> Generator[Event, Any, Optional[LockGrant]]:
        node_id = txn.node
        txn_id = txn.txn_id
        node = self.cluster.nodes[node_id]
        self.remote_lock_requests += 1
        txn.remote_lock_requests += 1
        started = self.sim.now
        reply = self.sim.event()
        faults = self.cluster.faults
        if faults is not None:
            faults.watch(host, reply)
        with self.recorder.span(txn_id, phases.COMM):
            if write:
                reserve: MvccReservePayload = {
                    "txn_id": txn_id,
                    "page": page,
                    "home": home,
                    "cached_version": cached_version,
                    "requester": node_id,
                    "reply": reply,
                }
                yield from node.comm.send(host, "mv_reserve", reserve)
            else:
                read: MvccReadPayload = {
                    "page": page,
                    "home": home,
                    "requester": node_id,
                    "reply": reply,
                }
                yield from node.comm.send(host, "mv_read", read)
            payload = yield reply
        if faults is not None:
            faults.unwatch(host, reply)
            if payload.get("crashed"):
                return None
        self.remote_grant_delay.record(self.sim.now - started)
        if payload.get("aborted"):
            self.reservation_conflicts += 1
            raise TransactionAborted(txn_id)
        current: int = payload["seqno"]
        if write:
            txn.held_locks[page] = True
            txn.read_versions.setdefault(page, current)
            seqno = current
        else:
            seqno = txn.read_versions.setdefault(page, current)
            txn.held_locks[page] = txn.held_locks.get(page, False)
        if payload.get("supplied"):
            self.pages_supplied_with_grant += 1
            return LockGrant(
                seqno, source=PageSource.SUPPLIED, local=False, page_supplied=True
            )
        return LockGrant(seqno, source=PageSource.STORAGE, local=False)

    def _handle_read(
        self, node: "Node", payload: Mapping[str, Any]
    ) -> Generator[Event, Any, None]:
        page = payload["page"]
        yield from node.cpu.consume(self._lock_op_instr)
        entry = self.tables[payload["home"]].entry(page)
        seqno = entry.seqno
        # The reply carries the page exactly when the permanent
        # database cannot serve it (the host buffers the current dirty
        # copy under NOFORCE) -- same rule as a PCL grant.
        supplied = self._noforce and node.buffer.has_current_dirty(page, seqno)
        response: MvccReadResponsePayload = {"seqno": seqno, "supplied": supplied}
        yield from node.comm.send(
            payload["requester"],
            "mv_read_rsp",
            response,
            long=supplied,
            reply_event=payload["reply"],
        )

    def _handle_reserve(
        self, node: "Node", payload: Mapping[str, Any]
    ) -> Generator[Event, Any, None]:
        txn_id = payload["txn_id"]
        page = payload["page"]
        yield from node.cpu.consume(self._lock_op_instr)
        if not self._reserve(txn_id, page):
            refusal: LockResponsePayload = {"aborted": True}
            yield from node.comm.send(
                payload["requester"], "mv_rsp", refusal, reply_event=payload["reply"]
            )
            return
        faults = self.cluster.faults
        if faults is not None and faults.is_down(payload["requester"]):
            # The requester died while the request was in flight; crash
            # recovery cannot see a reservation taken after its scan,
            # so give it straight back.
            if self._reservations.get(page) == txn_id:
                del self._reservations[page]
            return
        entry = self.tables[payload["home"]].entry(page)
        seqno = entry.seqno
        supplied = (
            self._noforce
            and payload["cached_version"] != seqno
            and node.buffer.has_current_dirty(page, seqno)
        )
        grant: LockResponsePayload = {
            "aborted": False,
            "seqno": seqno,
            "supplied": supplied,
        }
        yield from node.comm.send(
            payload["requester"],
            "mv_rsp",
            grant,
            long=supplied,
            reply_event=payload["reply"],
        )

    # -- NOFORCE page transfers (GEM regime) -------------------------------

    def request_page_from_owner(
        self, txn: Transaction, page: PageId, grant: LockGrant
    ) -> Generator[Event, Any, Optional[int]]:
        if self._rdma is not None:
            # One-sided pool read; no owner participates.
            self.page_requests += 1
            pool_started = self.sim.now
            pool_version = yield from self._rdma.fetch(txn, page, grant.seqno)
            if pool_version is None:
                self.page_requests_failed += 1
            else:
                self.page_request_delay.record(self.sim.now - pool_started)
            return pool_version
        assert grant.owner_node is not None
        self.page_requests += 1
        started = self.sim.now
        with self.recorder.span(txn.txn_id, phases.PAGE_TRANSFER):
            node = self.cluster.nodes[txn.node]
            reply = self.sim.event()
            faults = self.cluster.faults
            if faults is not None:
                faults.watch(grant.owner_node, reply)
            request: PageRequestPayload = {
                "page": page,
                "reply": reply,
                "requester": txn.node,
            }
            yield from node.comm.send(grant.owner_node, "page_req", request)
            payload = yield reply
            if faults is not None:
                faults.unwatch(grant.owner_node, reply)
            if payload.get("crashed"):
                version: Optional[int] = None
            else:
                version = payload.get("version")
        if version is None:
            self.page_requests_failed += 1
        else:
            self.page_request_delay.record(self.sim.now - started)
        return version

    def _handle_page_request(
        self, node: "Node", payload: Mapping[str, Any]
    ) -> Generator[Event, Any, None]:
        version = node.buffer.cached_version(payload["page"])
        response: PageResponsePayload = {"version": version}
        yield from node.comm.send(
            payload["requester"],
            "page_rsp",
            response,
            long=version is not None,
            reply_event=payload["reply"],
        )

    # -- validation --------------------------------------------------------

    def prepare_commit(
        self, txn: Transaction
    ) -> Generator[Event, Any, None]:
        """Timestamp-ordered backward validation of the read snapshot.

        Aborts when any page read is no longer current; otherwise waits
        for every reservation holder with a smaller assigned commit
        timestamp to complete, then re-checks (installs they performed
        show up as seqno changes).  Holders without an assigned commit
        timestamp will draw a larger one and are ignored -- the
        monotonic counter makes every waits-for edge point backward in
        timestamp order, so validation waits cannot deadlock.
        """
        if not txn.read_versions:
            return
        node_id = txn.node
        txn_id = txn.txn_id
        read_set = sorted(txn.read_versions.items())
        if self._gem_mode:
            # Re-read one directory entry per page read.
            yield from self._entry_ops(node_id, len(read_set), txn_id=txn_id)
        else:
            yield from self._validate_messages(txn, read_set)
        tc = yield from self._draw_ts(node_id, txn_id, commit=True)
        while True:
            stale = [
                (page, self._table_for(page).entry(page).seqno)
                for page, version in read_set
                if self._table_for(page).entry(page).seqno != version
            ]
            if stale:
                self.validation_failures += 1
                buffer = self.cluster.nodes[node_id].buffer
                for page, current in stale:
                    # Drop the superseded local copy so the restarted
                    # transaction refetches instead of re-reading the
                    # same stale snapshot forever.
                    buffer.invalidate_stale(page, current)
                raise TransactionAborted(txn_id)
            blockers: Dict[int, int] = {}
            for page, _version in read_set:
                holder = self._reservations.get(page)
                if holder is None or holder == txn_id:
                    continue
                holder_tc = self._txn_tc.get(holder)
                if holder_tc is not None and holder_tc < tc:
                    blockers[holder] = holder_tc
            if not blockers:
                break
            blocker = min(blockers, key=lambda t: (blockers[t], t))
            yield from self._wait_for(txn_id, blocker)
            if self._gem_mode:
                # Re-check costs one more directory access.
                yield from self._entry_ops(node_id, 1, txn_id=txn_id)
        self.commits_validated += 1

    def _validate_messages(
        self, txn: Transaction, read_set: List[Tuple[PageId, int]]
    ) -> Generator[Event, Any, None]:
        """Charge one validation round per remote home partition (the
        check itself is central; a crash sentinel is fine because the
        rebuilt directory starts at the committed ledger versions)."""
        node_id = txn.node
        node = self.cluster.nodes[node_id]
        faults = self.cluster.faults
        homes: Dict[int, List[Tuple[PageId, int]]] = {}
        for page, version in read_set:
            homes.setdefault(self.gla_map(page), []).append((page, version))
        for home, pages in sorted(homes.items()):
            if faults is None:
                host = home
            else:
                host = yield from faults.resolve_gla(home)
            if host == node_id:
                yield from node.cpu.consume(self._lock_op_instr)
                continue
            reply = self.sim.event()
            if faults is not None:
                faults.watch(host, reply)
            request: MvccValidatePayload = {
                "txn_id": txn.txn_id,
                "pages": pages,
                "home": home,
                "requester": node_id,
                "reply": reply,
            }
            with self.recorder.span(txn.txn_id, phases.COMM):
                yield from node.comm.send(host, "mv_validate", request)
                yield reply
            if faults is not None:
                faults.unwatch(host, reply)

    def _handle_validate(
        self, node: "Node", payload: Mapping[str, Any]
    ) -> Generator[Event, Any, None]:
        yield from node.cpu.consume(
            self._lock_op_instr * max(1, len(payload["pages"]))
        )
        yield from node.comm.send(
            payload["requester"], "mv_validate_rsp", {}, reply_event=payload["reply"]
        )

    def _wait_for(
        self, txn_id: int, blocker: int
    ) -> Generator[Event, Any, None]:
        event = self.sim.event()
        pair = (txn_id, event)
        self._waiters.setdefault(blocker, []).append(pair)

        def detach() -> None:
            # Crash path: the waiter is being killed; unhook it (its
            # lifecycle process is interrupted separately).
            entries = self._waiters.get(blocker)
            if entries is not None and pair in entries:
                entries.remove(pair)
            if not event.triggered:
                event.succeed()

        self.detector.register_block(txn_id, None, detach, kind="validation")
        blocked_at = self.sim.now
        with self.recorder.span(txn_id, phases.LOCK_GLOBAL):
            yield event
        self.lock_wait_time.record(self.sim.now - blocked_at)
        self.detector.clear(txn_id)

    def _complete(self, txn_id: int) -> None:
        """End of commit/abort/recovery processing: wake validators
        ordered behind this transaction.  Idempotent."""
        self._txn_tc.pop(txn_id, None)
        for waiter_id, event in self._waiters.pop(txn_id, []):
            self.detector.clear(waiter_id)
            if not event.triggered:
                event.succeed()

    # -- release -----------------------------------------------------------

    def commit_release(self, txn: Transaction) -> Generator[Event, Any, None]:
        # Read snapshots hold no protocol state; only write
        # reservations must be resolved into version installs.
        if self._gem_mode:
            yield from self._commit_release_gem(txn)
        else:
            yield from self._commit_release_pcl(txn)
        self._complete(txn.txn_id)

    def _commit_release_gem(self, txn: Transaction) -> Generator[Event, Any, None]:
        node_id = txn.node
        txn_id = txn.txn_id
        held = txn.held_locks
        directory = self.tables[0]
        while held:
            page = next(iter(held))
            if not held[page] or self._reservations.get(page) != txn_id:
                held.pop(page, None)
                continue
            # Install: read the entry, write seqno/owner back.
            yield from self._entry_ops(node_id, 2)
            entry = directory.entry(page)
            new_version = txn.modified.get(page)
            if new_version is not None:
                entry.seqno = max(entry.seqno, new_version)
                entry.owner = node_id if self._noforce else None
                if self._rdma is not None and self._noforce:
                    # Disaggregation: the committed page itself goes
                    # into the pool (one-sided write) and stale
                    # compute-side cache copies drop at this instant.
                    yield from self._rdma.install(
                        node_id, ((page, new_version),)
                    )
            if self._reservations.get(page) == txn_id:
                del self._reservations[page]
            held.pop(page, None)

    def _commit_release_pcl(self, txn: Transaction) -> Generator[Event, Any, None]:
        # Idempotent and interruption-safe like PCL's _release: pages
        # leave held_locks as their install is applied locally or
        # acknowledged remotely, never in one upfront sweep.
        node_id = txn.node
        txn_id = txn.txn_id
        node = self.cluster.nodes[node_id]
        faults = self.cluster.faults
        held = txn.held_locks
        hosts: Dict[int, int] = {}
        if faults is not None:
            for page, mode in held.items():
                if mode:
                    home = self.gla_map(page)
                    if home not in hosts:
                        hosts[home] = yield from faults.resolve_gla(home)
        groups: Dict[Tuple[int, int], List[Tuple[PageId, int]]] = {}
        for page in list(held):
            if not held[page]:
                held.pop(page, None)
                continue
            new_version = txn.modified.get(page)
            home = self.gla_map(page)
            host = hosts.get(home, home)
            if host == node_id or new_version is None:
                # Local home (we are the partition host and keep the
                # dirty copy as its owner), or a reservation that was
                # never written: apply synchronously.
                if new_version is not None:
                    entry = self.tables[home].entry(page)
                    entry.seqno = max(entry.seqno, new_version)
                    entry.owner = node_id if self._noforce else None
                if self._reservations.get(page) == txn_id:
                    del self._reservations[page]
                held.pop(page, None)
            else:
                groups.setdefault((host, home), []).append((page, new_version))
        for (host, home), pages in groups.items():
            carry = self._noforce
            if carry:
                self.pages_shipped_with_release += len(pages)
                # Ownership moves to the directory host with the pages.
                for page, version in pages:
                    node.buffer.mark_clean(page, version)
            ack = self.sim.event()
            if faults is not None:
                if faults.is_down(host):
                    # Crashed since host resolution: the rebuilt
                    # directory starts at the committed ledger versions
                    # (which already include these installs), so only
                    # the reservations need dropping.
                    self._finish_group(txn_id, held, pages)
                    continue
                faults.watch(host, ack)
            install: MvccInstallPayload = {
                "txn_id": txn_id,
                "pages": pages,
                "carry_pages": carry,
                "home": home,
                "requester": node_id,
                "ack": ack,
            }
            yield from node.comm.send(host, "mv_install", install, long=carry)
            # Commit completion is ordered after directory publication:
            # wait for the install acknowledgement (a crash sentinel
            # also releases us -- see above).
            yield ack
            if faults is not None:
                faults.unwatch(host, ack)
            self._finish_group(txn_id, held, pages)

    def _finish_group(
        self,
        txn_id: int,
        held: Dict[PageId, bool],
        pages: List[Tuple[PageId, int]],
    ) -> None:
        for page, _version in pages:
            if self._reservations.get(page) == txn_id:
                del self._reservations[page]
            held.pop(page, None)

    def _handle_install(
        self, node: "Node", payload: Mapping[str, Any]
    ) -> Generator[Event, Any, None]:
        home = payload["home"]
        carry = payload["carry_pages"]
        faults = self.cluster.faults
        yield from node.cpu.consume(
            self._lock_op_instr * max(1, len(payload["pages"]))
        )
        for page, version in payload["pages"]:
            raced = (
                faults is not None
                and home != node.node_id
                and faults.gla_host(home) != node.node_id
            )
            if carry:
                if raced:
                    # The carry raced a failback: this node is no longer
                    # the partition host, so flush straight to storage
                    # instead of buffering a dirty copy nobody owns.
                    yield from self.cluster.storage.write(page, version, node.cpu)
                else:
                    yield from node.buffer.insert_received_page(
                        page, version, dirty=True
                    )
            entry = self.tables[home].entry(page)
            entry.seqno = max(entry.seqno, version)
            entry.owner = node.node_id if carry and not raced else None
        yield from node.comm.send(
            payload["requester"], "mv_install_ack", {}, reply_event=payload["ack"]
        )

    def abort_release(self, txn: Transaction) -> Generator[Event, Any, None]:
        # Idempotent: reservations leave held_locks as they are freed;
        # reads never registered anything.
        if self._gem_mode:
            yield from self._abort_release_gem(txn)
        else:
            yield from self._abort_release_pcl(txn)
        self._complete(txn.txn_id)

    def _abort_release_gem(self, txn: Transaction) -> Generator[Event, Any, None]:
        node_id = txn.node
        txn_id = txn.txn_id
        held = txn.held_locks
        while held:
            page = next(iter(held))
            if not held[page] or self._reservations.get(page) != txn_id:
                held.pop(page, None)
                continue
            yield from self._entry_ops(node_id, 2)
            if self._reservations.get(page) == txn_id:
                del self._reservations[page]
            held.pop(page, None)

    def _abort_release_pcl(self, txn: Transaction) -> Generator[Event, Any, None]:
        node_id = txn.node
        txn_id = txn.txn_id
        node = self.cluster.nodes[node_id]
        faults = self.cluster.faults
        held = txn.held_locks
        hosts: Dict[int, int] = {}
        if faults is not None:
            for page, mode in held.items():
                if mode and self._reservations.get(page) == txn_id:
                    home = self.gla_map(page)
                    if home not in hosts:
                        hosts[home] = yield from faults.resolve_gla(home)
        groups: Dict[Tuple[int, int], List[PageId]] = {}
        for page in list(held):
            if not held[page] or self._reservations.get(page) != txn_id:
                held.pop(page, None)
                continue
            home = self.gla_map(page)
            host = hosts.get(home, home)
            if host == node_id:
                del self._reservations[page]
                held.pop(page, None)
            else:
                groups.setdefault((host, home), []).append(page)
        for (host, home), pages in groups.items():
            release: MvccAbortPayload = {
                "txn_id": txn_id,
                "pages": pages,
                "home": home,
            }
            yield from node.comm.send(host, "mv_abort", release)
            for page in pages:
                if self._reservations.get(page) == txn_id:
                    del self._reservations[page]
                held.pop(page, None)

    def _handle_abort(
        self, node: "Node", payload: Mapping[str, Any]
    ) -> Generator[Event, Any, None]:
        # Reservation state is kept centrally (dropped by the sender);
        # this charges the GLA-side processing cost.
        yield from node.cpu.consume(
            self._lock_op_instr * max(1, len(payload["pages"]))
        )

    # -- write-back hook ---------------------------------------------------

    def page_written_back(
        self, node_id: int, page: PageId, version: int
    ) -> Generator[Event, Any, None]:
        """Clear page ownership once the committed version reached disk."""
        if self.config.force:
            return
        entry = self._table_for(page).peek(page)
        if entry is None:
            return
        if self._gem_mode:
            yield from self._entry_ops(node_id, 2)
        if entry.owner == node_id and entry.seqno == version:
            entry.owner = None
        if self._rdma is not None:
            self._rdma.written_back(page, version)

    # -- fault injection ---------------------------------------------------

    def lock_tables(self) -> Tuple[LockTable, ...]:
        return tuple(self.tables)

    def crash_node(self, faults: "FaultManager", record: "CrashRecord") -> None:
        if self._gem_mode:
            # Directory, reservations and timestamp counter live in
            # non-volatile GEM (or the pool) and survive; recovery only
            # has to clean up on behalf of the dead transactions.  Under
            # disaggregation, pages whose committed version is
            # pool-resident did not die with the node's buffer: trim
            # them from the lost set before the REDO fences go up.
            if self._rdma is not None:
                self._rdma.trim_lost(record)
            return
        home = record.node
        faults.close_partition(home)
        ledger = self.cluster.ledger
        # The dead node's directory partition was volatile.  Rebuild it
        # from the committed ledger *synchronously* so no validator or
        # reader can observe pre-crash sequence numbers (ownership info
        # is gone -- readers fall back to storage, which REDO fences
        # for lost pages).  recover() charges the modelled cost.
        self.tables[home] = LockTable(
            f"mvccdir{home}", seqno_init=ledger.committed_version
        )
        # An install carry in flight to the dead host is gone and the
        # committer already marked its copy clean: a stale page of the
        # dead partition with no surviving *dirty* current copy has no
        # write-back path left and must be REDOne.  (A surviving dirty
        # copy belongs to a committer whose install has not been sent
        # yet; its install will reach the replacement host.)
        for page, committed in ledger.stale_pages():
            if self.gla_map(page) != home or page in record.lost:
                continue
            if any(
                node.buffer.has_current_dirty(page, committed)
                for node in self.cluster.nodes
                if node.node_id != home
            ):
                continue
            record.lost[page] = committed

    def recover(
        self, faults: "FaultManager", record: "CrashRecord"
    ) -> Generator[Event, Any, None]:
        """Failover: clean up after the dead transactions, then REDO.

        GEM: the directory survived; the coordinator drops the dead
        transactions' reservations and reconciles their entries with
        the committed ledger -- plain entry accesses, no messages.
        PCL: the replacement host announces the failover, clears dead
        reservations, receives one long directory-state message per
        other survivor and REDOes the lost pages before reopening the
        partition.  In both regimes, validators waiting on a dead
        transaction are released only after its entries are reconciled.
        """
        coord = faults.coordinator()
        coord_node = self.cluster.nodes[coord]
        ledger = self.cluster.ledger
        cfg = faults.config
        dead_ids = sorted({txn.txn_id for txn in record.killed})
        if self._gem_mode:
            if self._rdma is not None:
                # The dead node's pool-resident reservation words are
                # reclaimable only after its lease expired (no server
                # can revoke one-sided state earlier).
                yield from self._rdma.lease_wait(record)
            for txn_id in dead_ids:
                pages = sorted(
                    p for p, h in self._reservations.items() if h == txn_id
                )
                for page in pages:
                    yield from self._entry_ops(coord, 2)
                    yield from coord_node.cpu.consume(
                        cfg.recovery_instructions_per_lock
                    )
                    entry = self.tables[0].entry(page)
                    entry.seqno = max(entry.seqno, ledger.committed_version(page))
                    self._reservations.pop(page, None)
            # Ownership entries pointing at the dead buffer are void;
            # lost pages keep readers fenced until REDO restores them.
            directory = self.tables[0]
            for page in sorted(
                p for p, e in directory._entries.items() if e.owner == record.node
            ):
                if page in record.lost:
                    continue
                yield from self._entry_ops(coord, 1)
                directory._entries[page].owner = None
            yield from faults.redo_pages(record, coord)
            for entry in directory._entries.values():
                if entry.owner == record.node:
                    entry.owner = None
        else:
            home = record.node
            survivors = [
                n
                for n in self.cluster.nodes
                if n.node_id != home and not faults.is_down(n.node_id)
            ]
            transfer: GlaTransferPayload = {"home": home}
            # Failover announcement (delivery-confirmed short messages).
            for survivor in survivors:
                if survivor.node_id == coord:
                    continue
                notice = self.sim.event()
                yield from coord_node.comm.send(
                    survivor.node_id, "gla_failover", transfer, reply_event=notice
                )
                yield notice
            # Drop the dead transactions' reservations and reconcile
            # the surviving partitions' entries with the ledger.
            for txn_id in dead_ids:
                pages = sorted(
                    p for p, h in self._reservations.items() if h == txn_id
                )
                for page in pages:
                    yield from coord_node.cpu.consume(
                        cfg.recovery_instructions_per_lock
                    )
                    entry = self._table_for(page).entry(page)
                    entry.seqno = max(entry.seqno, ledger.committed_version(page))
                    self._reservations.pop(page, None)
            # Directory-state exchange: one long message per other
            # survivor (far leaner than PCL's per-lock reconstruction
            # -- version state is rebuilt from the ledger, not from
            # shipped lock registrations).
            for survivor in survivors:
                if survivor.node_id == coord:
                    continue
                done = self.sim.event()
                yield from survivor.comm.send(
                    coord, "gla_state", transfer, long=True, reply_event=done
                )
                yield done
            yield from faults.redo_pages(record, coord)
            faults.open_partition(home, coord)
        # Wake validators that were ordered behind dead transactions --
        # after reconciliation, so their re-check sees final state.
        for txn_id in dead_ids:
            self._complete(txn_id)

    def reintegrate(
        self, faults: "FaultManager", record: "CrashRecord"
    ) -> Generator[Event, Any, None]:
        """GEM: nothing to do (directory state never moved).  RDMA: the
        restarted node re-registers with the fabric.  PCL: partition
        failback -- flush the interim host's committed dirty pages of
        the partition and ship the directory back."""
        if self._gem_mode:
            if self._rdma is not None:
                yield from self._rdma.reintegrate(record)
            return
        home = record.node
        host = faults.gla_host(home)
        if host == home or faults.is_down(host):
            return
        faults.close_partition(home)
        cluster = self.cluster
        host_node = cluster.nodes[host]
        ledger = cluster.ledger
        while True:
            dirty = host_node.buffer.dirty_frames(
                lambda page: self.gla_map(page) == home
            )
            dirty = [
                (page, version)
                for page, version in dirty
                if ledger.committed_version(page) == version
            ]
            if not dirty:
                break
            dones = []
            for page, version in dirty:
                done = self.sim.event()
                self.sim.process(
                    self._failback_flush(page, version, host_node, done),
                    name="failback-flush",
                )
                dones.append(done)
            yield self.sim.all_of(dones)
        done = self.sim.event()
        failback: GlaTransferPayload = {"home": home}
        yield from host_node.comm.send(
            home, "gla_failback", failback, long=True, reply_event=done
        )
        yield done
        faults.open_partition(home, None)

    def _failback_flush(
        self, page: PageId, version: int, node: "Node", done: Event
    ) -> Generator[Event, Any, None]:
        yield from self.cluster.storage.write(page, version, node.cpu)
        node.buffer.mark_clean(page, version)
        done.succeed()

    # -- introspection / statistics ----------------------------------------

    def num_blocked(self) -> int:
        return sum(len(waiters) for waiters in self._waiters.values())

    def lock_stats(self) -> Dict[str, float]:
        total = self.local_lock_requests + self.remote_lock_requests
        return {
            "local_share": self.local_lock_requests / total if total else 1.0,
            "remote_lock_requests": float(self.remote_lock_requests),
            "lock_requests": float(total),
            "mean_lock_wait": self.lock_wait_time.mean,
            "page_requests": float(self.page_requests),
            "mean_page_request_delay": self.page_request_delay.mean,
            "pages_supplied_with_grant": float(self.pages_supplied_with_grant),
        }

    def reset_stats(self) -> None:
        self.lock_wait_time.reset()
        self.remote_grant_delay.reset()
        self.page_request_delay.reset()
        self.page_requests = 0
        self.page_requests_failed = 0
        self.local_lock_requests = 0
        self.remote_lock_requests = 0
        self.pages_supplied_with_grant = 0
        self.pages_shipped_with_release = 0
        self.timestamps_drawn = 0
        self.reservation_conflicts = 0
        self.validation_failures = 0
        self.commits_validated = 0
