"""Loose coupling: primary copy locking (PCL).

The database is logically partitioned; each node holds the **global
lock authority (GLA)** for one partition (section 3.2, [Ra86]).  Lock
requests against the local GLA partition are processed without
communication; other requests travel as messages to the authorized
node.  Coherency control is integrated:

* page sequence numbers held at the GLA detect buffer invalidations
  with no extra messages;
* under NOFORCE the GLA node doubles as the **page owner** for its
  partition: a page modified elsewhere is returned to the GLA *with*
  the lock release message (no extra message), and the GLA supplies
  the current page version *with* the lock grant message when the
  requester's copy is stale or missing (long instead of short reply,
  but no extra message round);
* consequently the current version of a page is always available at
  the GLA node or in the permanent database.

The optional **read optimization** ([Ra86, Ra91b], enabled by
``config.pcl_read_optimization`` and used for the paper's trace
experiments) grants nodes *read authorizations*: once a node obtained
an S lock with authorization, later S locks (and their releases) on
that page are processed locally without messages until a write lock
anywhere revokes the authorizations with an explicit revoke/ack
message exchange.

Modelling notes (see DESIGN.md):  authorized local S locks are
registered directly in the GLA's lock table at zero message cost so
that global deadlock detection sees them; revoke/ack message costs are
charged when an X lock is granted over outstanding authorizations.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Generator,
    Iterator,
    List,
    Mapping,
    Optional,
    Tuple,
    TYPE_CHECKING,
)

from repro.cc.base import CCProtocol, LockGrant, PageSource
from repro.cc.messages import (
    GlaTransferPayload,
    LockRequestPayload,
    LockResponsePayload,
    ReleasePayload,
    RevokePayload,
)
from repro.db.pages import PageId
from repro.errors import TransactionAborted
from repro.obs import phases
from repro.node.lock_table import LockEntry, LockMode, LockTable
from repro.sim.engine import Event
from repro.sim.stats import Tally
from repro.workload.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.manager import CrashRecord, FaultManager
    from repro.node.node import Node
    from repro.system.cluster import Cluster

__all__ = ["PrimaryCopyProtocol"]


def _noop() -> None:
    """Grant callback for lock-table reconstruction: the registrations
    are already-granted locks, so nobody waits on the grant."""


class PrimaryCopyProtocol(CCProtocol):
    """Primary copy locking with integrated coherency control."""

    name = "pcl"

    def __init__(self, cluster: "Cluster", gla_map: Callable[[PageId], int]) -> None:
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = cluster.config
        self.detector = cluster.detector
        self.recorder = cluster.recorder
        self.gla_map = gla_map
        self.tables: List[LockTable] = [
            LockTable(f"gla{n}") for n in range(cluster.config.num_nodes)
        ]
        # Hot-path config values, resolved once.
        self._lock_op_instr = self.config.instructions_per_lock_op
        self._noforce = self.config.noforce
        self._read_opt = self.config.pcl_read_optimization
        self.lock_wait_time = Tally("pcl.lock_wait")
        self.remote_grant_delay = Tally("pcl.remote_grant_delay")
        #: txn_id -> home node, recorded at grant time.  Failover uses
        #: it to find every lock a dead node's transactions left behind
        #: -- including locks of *completed* transactions whose release
        #: message was dropped by the crash (txn.held_locks of killed
        #: transactions alone cannot see those).
        self._holder_home: Dict[int, int] = {}
        self.local_lock_requests = 0
        self.remote_lock_requests = 0
        self.auth_read_locks = 0
        self.pages_supplied_with_grant = 0
        self.pages_shipped_with_release = 0
        self.revocations = 0
        for node in cluster.nodes:
            node.register_handler("lock_req", self._handle_lock_request)
            node.register_handler("release", self._handle_release)
            node.register_handler("revoke", self._handle_revoke)
            #: page -> True while this node holds a read authorization.
            node.auth_cache = {}

    # -- core lock acquisition -------------------------------------------

    def acquire(
        self,
        txn: Transaction,
        page: PageId,
        write: bool,
        cached_version: Optional[int],
    ) -> Generator[Event, Any, LockGrant]:
        node_id = txn.node
        home = self.gla_map(page)
        mode = LockMode.EXCLUSIVE if write else LockMode.SHARED
        faults = self.cluster.faults
        while True:
            # The partition's lock authority may be hosted elsewhere
            # during failover; resolve_gla also waits out the window in
            # which the partition is fenced for reassignment.
            if faults is None:
                host = home
            else:
                host = yield from faults.resolve_gla(home)
            if host == node_id:
                grant = yield from self._acquire_local(txn, page, mode, home)
                return grant
            node = self.cluster.nodes[node_id]
            if (
                not write
                and self._read_opt
                and page in node.auth_cache
            ):
                grant = yield from self._acquire_authorized_read(txn, page, home)
                if grant is not None:
                    return grant
            grant = yield from self._acquire_remote(
                txn, page, mode, home, host, cached_version
            )
            if grant is not None:
                return grant
            # The GLA host crashed before answering: re-resolve (waits
            # for the reassignment) and retry against the new host.

    def _acquire_local(
        self, txn: Transaction, page: PageId, mode: LockMode, home: int
    ) -> Generator[Event, Any, LockGrant]:
        """Lock request against a GLA partition hosted on this node.

        Normally ``home == txn.node``; during failover this node may
        also host a crashed node's partition (``home`` names the
        partition, whose table stays indexed by its home node).
        """
        self.local_lock_requests += 1
        txn.local_lock_requests += 1
        node = self.cluster.nodes[txn.node]
        table = self.tables[home]
        yield from node.cpu.consume(self._lock_op_instr)
        yield from self._table_request(txn.txn_id, table, page, mode)
        self._note_holder(txn.txn_id, txn.node)
        entry = table.entry(page)
        if mode is LockMode.EXCLUSIVE:
            with self.recorder.span(txn.txn_id, phases.COMM):
                yield from self._revoke_authorizations(node, page, entry, txn.node)
        txn.held_locks[page] = (mode is LockMode.EXCLUSIVE) or txn.held_locks.get(
            page, False
        )
        return LockGrant(entry.seqno, source=PageSource.STORAGE, local=True)

    def _acquire_authorized_read(
        self, txn: Transaction, page: PageId, home: int
    ) -> Generator[Event, Any, Optional[LockGrant]]:
        """Read lock processed locally under a read authorization.

        Returns None when the local copy is not current (the page must
        then be obtained from the GLA anyway, so the normal remote
        request is used instead).
        """
        node = self.cluster.nodes[txn.node]
        table = self.tables[home]
        already_held = table.holds(txn.txn_id, page) is not None
        yield from node.cpu.consume(self._lock_op_instr)
        yield from self._table_request(txn.txn_id, table, page, LockMode.SHARED)
        self._note_holder(txn.txn_id, txn.node)
        entry = table.entry(page)
        if not node.buffer.has_current_version(page, entry.seqno):
            # Copy missing or stale: fall back to a remote request
            # (which may ship the page with the grant).  Only drop the
            # registration if it was freshly acquired here -- a lock
            # held from an earlier access must stay (strict 2PL).
            if not already_held:
                table.release(txn.txn_id, page)
            return None
        self.auth_read_locks += 1
        self.local_lock_requests += 1
        txn.local_lock_requests += 1
        txn.held_locks[page] = txn.held_locks.get(page, False)
        txn.auth_read_pages.add(page)
        return LockGrant(entry.seqno, source=PageSource.STORAGE, local=True)

    def _acquire_remote(
        self,
        txn: Transaction,
        page: PageId,
        mode: LockMode,
        home: int,
        host: int,
        cached_version: Optional[int],
    ) -> Generator[Event, Any, Optional[LockGrant]]:
        """Lock request to a remote GLA host via message exchange.

        Returns None when ``host`` crashed before answering (the caller
        re-resolves the partition host and retries).
        """
        self.remote_lock_requests += 1
        txn.remote_lock_requests += 1
        node = self.cluster.nodes[txn.node]
        started = self.sim.now
        reply = self.sim.event()
        faults = self.cluster.faults
        if faults is not None:
            faults.watch(host, reply)
        # The whole round trip is message/comm delay from the
        # requester's point of view; the GLA-side lock wait (if any) is
        # re-attributed to LOCK_GLOBAL by the handler's inner span.
        request: LockRequestPayload = {
            "txn_id": txn.txn_id,
            "page": page,
            "mode": mode,
            "home": home,
            "cached_version": cached_version,
            "requester": txn.node,
            "reply": reply,
        }
        with self.recorder.span(txn.txn_id, phases.COMM):
            yield from node.comm.send(host, "lock_req", request)
            payload = yield reply
        if faults is not None:
            faults.unwatch(host, reply)
            if payload.get("crashed"):
                return None
        self.remote_grant_delay.record(self.sim.now - started)
        if payload.get("aborted"):
            raise TransactionAborted(txn.txn_id)
        txn.held_locks[page] = (mode is LockMode.EXCLUSIVE) or txn.held_locks.get(
            page, False
        )
        if mode is LockMode.EXCLUSIVE:
            # An upgrade supersedes any read-authorization coverage:
            # the release must now reach the GLA (it carries the page).
            txn.auth_read_pages.discard(page)
        if payload.get("auth"):
            node.auth_cache[page] = True
        seqno = payload["seqno"]
        if payload.get("supplied"):
            self.pages_supplied_with_grant += 1
            return LockGrant(
                seqno, source=PageSource.SUPPLIED, local=False, page_supplied=True
            )
        return LockGrant(seqno, source=PageSource.STORAGE, local=False)

    def _handle_lock_request(
        self, node: "Node", payload: Mapping[str, Any]
    ) -> Generator[Event, Any, None]:
        """GLA-side processing of a remote lock request."""
        txn_id = payload["txn_id"]
        page = payload["page"]
        mode: LockMode = payload["mode"]
        requester: int = payload["requester"]
        reply: Event = payload["reply"]
        home = payload.get("home", node.node_id)
        table = self.tables[home]
        yield from node.cpu.consume(self._lock_op_instr)
        try:
            yield from self._table_request(
                txn_id, table, page, mode, phase=phases.LOCK_GLOBAL
            )
        except TransactionAborted:
            refusal: LockResponsePayload = {"aborted": True}
            yield from node.comm.send(
                requester, "lock_rsp", refusal, reply_event=reply
            )
            return
        faults = self.cluster.faults
        if faults is not None and faults.is_down(requester):
            # The requester died while the request waited in the table:
            # the grant can never be delivered, and crash recovery may
            # already have run (it cannot see a grant that happens after
            # its table scan), so give the lock straight back.
            table.release(txn_id, page)
            return
        self._note_holder(txn_id, requester)
        entry = table.entry(page)
        if mode is LockMode.EXCLUSIVE:
            yield from self._revoke_authorizations(node, page, entry, requester)
        seqno = entry.seqno
        # The grant carries the page exactly when the permanent
        # database cannot serve it: the GLA holds a dirty current copy
        # (NOFORCE) and the requester's copy is stale or missing.
        # Clean copies imply the permanent database is current, so the
        # requester reads storage as usual.
        supplied = (
            self._noforce
            and payload["cached_version"] != seqno
            and node.buffer.has_current_dirty(page, seqno)
        )
        auth = self._read_opt and mode is LockMode.SHARED
        if auth:
            entry.auth_nodes.add(requester)
        grant: LockResponsePayload = {
            "seqno": seqno,
            "supplied": supplied,
            "auth": auth,
        }
        yield from node.comm.send(
            requester, "lock_rsp", grant, long=supplied, reply_event=reply
        )

    def _note_holder(self, txn_id: int, node_id: int) -> None:
        """Record a lock holder's home node for crash recovery.

        The map is compacted (entries whose transaction no longer
        appears in any table are dropped) when it grows large, so its
        size tracks the number of in-flight registrations rather than
        the total transaction count of the run.
        """
        homes = self._holder_home
        if len(homes) >= 65536:
            held = set()
            for table in self.tables:
                for entry in table._entries.values():
                    held.update(entry.holders)
                    for request in entry.queue:
                        held.add(request.txn)
            self._holder_home = homes = {
                t: n for t, n in homes.items() if t in held
            }
        homes[txn_id] = node_id

    def _table_request(
        self,
        txn_id: int,
        table: LockTable,
        page: PageId,
        mode: LockMode,
        phase: str = phases.LOCK_LOCAL,
    ) -> Iterator[Event]:
        """Request a lock in ``table``, waiting (with deadlock handling).

        ``phase`` classifies a blocked wait for the response-time
        breakdown; the GLA-side handler of a remote request passes
        LOCK_GLOBAL so the wait is charged to the *requesting*
        transaction as a global lock wait (its process is suspended
        inside a COMM span meanwhile, so the retag nests correctly).

        Immediate grants (the common case) return an empty iterator --
        no wait event is allocated and the caller's ``yield from``
        never suspends; only a genuine conflict returns the waiting
        generator.
        """
        wait_event: Optional[Event] = None

        def on_grant() -> None:
            self.detector.clear(txn_id)
            assert wait_event is not None  # created before any queueing
            wait_event.succeed()

        if table.request(txn_id, page, mode, on_grant):
            return iter(())
        wait_event = self.sim.event()
        return self._table_wait(txn_id, table, page, wait_event, phase)

    def _table_wait(
        self,
        txn_id: int,
        table: LockTable,
        page: PageId,
        wait_event: Event,
        phase: str,
    ) -> Generator[Event, Any, None]:
        blocked_at = self.sim.now

        def abort_victim() -> None:
            table.cancel(txn_id, page)
            wait_event.fail(TransactionAborted(txn_id))

        self.detector.register_block(txn_id, table, abort_victim)
        with self.recorder.span(txn_id, phase):
            yield wait_event  # raises TransactionAborted if chosen as victim
        self.lock_wait_time.record(self.sim.now - blocked_at)

    # -- read-authorization revocation ---------------------------------------

    def _revoke_authorizations(
        self, gla_node: "Node", page: PageId, entry: LockEntry, requester: int
    ) -> Generator[Event, Any, None]:
        """Charge revoke/ack exchanges for outstanding authorizations.

        The X lock is already granted in the GLA table (authorized
        local S locks are registered there, so the wait for conflicting
        readers happened in the table); what remains is the message
        cost of invalidating the authorizations.
        """
        targets = sorted(n for n in entry.auth_nodes if n != requester)
        if not targets:
            return
        faults = self.cluster.faults
        acks = []
        for target in targets:
            self.revocations += 1
            ack = self.sim.event()
            if faults is not None:
                # A crashing holder loses its authorization anyway; the
                # sentinel stands in for its ack.
                faults.watch(target, ack)
            revoke: RevokePayload = {
                "page": page,
                "ack": ack,
                "gla": gla_node.node_id,
            }
            yield from gla_node.comm.send(target, "revoke", revoke)
            acks.append((target, ack))
        yield self.sim.all_of([ack for _target, ack in acks])
        if faults is not None:
            for target, ack in acks:
                faults.unwatch(target, ack)
        entry.auth_nodes.difference_update(targets)

    def _handle_revoke(
        self, node: "Node", payload: Mapping[str, Any]
    ) -> Generator[Event, Any, None]:
        """Authorization-holder side: drop the authorization and ack."""
        node.auth_cache.pop(payload["page"], None)
        yield from node.comm.send(
            payload["gla"], "revoke_ack", {}, reply_event=payload["ack"]
        )

    # -- release ------------------------------------------------------------------

    def commit_release(self, txn: Transaction) -> Generator[Event, Any, None]:
        yield from self._release(txn, commit=True)

    def abort_release(self, txn: Transaction) -> Generator[Event, Any, None]:
        yield from self._release(txn, commit=False)

    def _release(self, txn: Transaction, commit: bool) -> Generator[Event, Any, None]:
        # Idempotent and interruption-safe: pages leave held_locks as
        # their release is actually applied (local) or confirmed sent
        # (remote group), never in one upfront sweep.  A crash that
        # interrupts this generator leaves the unreleased remainder in
        # held_locks, so failover snapshots still see those locks and a
        # re-run releases exactly what is left; the GLA side tolerates
        # the duplicate deliveries an interruption after a send can
        # produce (see _apply_release).
        node = self.cluster.nodes[txn.node]
        faults = self.cluster.faults
        held = txn.held_locks
        # Resolve every partition's effective host FIRST (this may wait
        # at failover gates), then apply the local release set without
        # yielding: a lock-table reconstruction snapshot therefore never
        # observes a half-released local set.
        hosts: Dict[int, int] = {}
        if faults is not None:
            # simlint: disable-next=DET001 -- held_locks order is the txn's deterministic access order
            for page in held:
                home = self.gla_map(page)
                if home not in hosts:
                    hosts[home] = yield from faults.resolve_gla(home)
        remote_groups: Dict[Tuple[int, int], List[Tuple[PageId, Optional[int]]]] = {}
        # simlint: disable-next=DET001 -- held_locks order is the txn's deterministic access order
        for page in list(held):
            new_version = txn.modified.get(page) if commit else None
            home = self.gla_map(page)
            host = hosts.get(home, home)
            if host == txn.node:
                self._apply_release(txn.txn_id, page, new_version, home)
                held.pop(page, None)
                txn.auth_read_pages.discard(page)
            elif page in txn.auth_read_pages:
                # Covered by a read authorization: release locally, no
                # message to the GLA.
                table = self.tables[home]
                if table.holds(txn.txn_id, page) is not None:
                    table.release(txn.txn_id, page)
                held.pop(page, None)
                txn.auth_read_pages.discard(page)
            else:
                remote_groups.setdefault((host, home), []).append((page, new_version))
        for (host, home), pages in remote_groups.items():
            modified = [(p, v) for p, v in pages if v is not None]
            long = self._noforce and bool(modified)
            if long:
                self.pages_shipped_with_release += len(modified)
                # The shipped pages are no longer this node's write
                # responsibility -- the GLA becomes the owner.
                for page, version in modified:
                    node.buffer.mark_clean(page, version)
            release: ReleasePayload = {
                "txn_id": txn.txn_id,
                "pages": pages,
                "carry_pages": long,
                "home": home,
            }
            yield from node.comm.send(host, "release", release, long=long)
            # Only now is the group the GLA's responsibility.
            for page, _version in pages:
                held.pop(page, None)
                txn.auth_read_pages.discard(page)

    def _apply_release(
        self, txn_id: int, page: PageId, new_version: Optional[int], home: int
    ) -> None:
        """Release one lock at its GLA and publish the new seqno.

        Tolerates releases for locks no longer held: crash recovery may
        already have reclaimed the lock, and an interrupted
        ``_release`` re-run (or a resent group) can deliver the same
        release twice.  Double-releasing would throw and -- worse --
        could hand back a lock some *other* transaction now holds.
        """
        table = self.tables[home]
        if table.holds(txn_id, page) is None:
            return
        entry = table.entry(page)
        if new_version is not None:
            # max(): never regress a seqno a rebuilt table already
            # initialized from the committed ledger version.
            entry.seqno = max(entry.seqno, new_version)
        table.release(txn_id, page)

    def _handle_release(
        self, node: "Node", payload: Mapping[str, Any]
    ) -> Generator[Event, Any, None]:
        """GLA-side processing of a (possibly page-carrying) release."""
        txn_id = payload["txn_id"]
        home = payload.get("home", node.node_id)
        faults = self.cluster.faults
        for page, new_version in payload["pages"]:
            if new_version is not None and payload["carry_pages"]:
                if (
                    faults is not None
                    and home != node.node_id
                    and faults.gla_host(home) != node.node_id
                ):
                    # The carry raced a GLA failback: this node is no
                    # longer the partition host, so instead of buffering
                    # the page dirty (nobody would write it back), flush
                    # it straight to the permanent database.
                    yield from self.cluster.storage.write(
                        page, new_version, node.cpu
                    )
                else:
                    # NOFORCE: the modified page travelled with the
                    # release and the GLA takes over ownership (buffers
                    # it dirty).
                    yield from node.buffer.insert_received_page(
                        page, new_version, dirty=True
                    )
            self._apply_release(txn_id, page, new_version, home)

    # -- hooks ------------------------------------------------------------------

    def request_page_from_owner(
        self, txn: Transaction, page: PageId, grant: LockGrant
    ) -> Generator[Event, Any, Optional[int]]:  # pragma: no cover
        raise RuntimeError("PCL never fetches pages from an owner node")
        yield  # unreachable; makes this a generator

    def page_written_back(
        self, node_id: int, page: PageId, version: int
    ) -> Generator[Event, Any, None]:
        """No GLA action: the authority keeps coherency responsibility."""
        return
        yield  # pragma: no cover

    # -- fault injection -----------------------------------------------------

    def lock_tables(self) -> Tuple[LockTable, ...]:
        return tuple(self.tables)

    def crash_node(self, faults: "FaultManager", record: "CrashRecord") -> None:
        """Synchronous teardown: the dead node's GLA partition is fenced.

        The dead node's lock table and buffer were volatile, so loose
        coupling loses the partition's entire lock state and every
        dirty page buffered at its GLA -- the availability penalty the
        paper contrasts with GEM-resident lock state (section 5).
        """
        home = record.node
        faults.close_partition(home)
        dead_node = self.cluster.nodes[home]
        dead_node.auth_cache.clear()
        # Requests queued in the dead table were being serviced by
        # handler processes that died with the node; their requesters
        # were answered with crash sentinels and will retry, so drop
        # their stale deadlock-detector registrations.
        for entry in self.tables[home]._entries.values():
            for req in list(entry.queue):
                self.detector.clear(req.txn)
        # The dead node's read authorizations (and any other node's
        # authorizations for the dead partition) are void.
        for node in self.cluster.nodes:
            if node.node_id == home:
                continue
            for page in [
                p for p in node.auth_cache if self.gla_map(p) == home
            ]:
                del node.auth_cache[page]
            for entry in self.tables[node.node_id]._entries.values():
                entry.auth_nodes.discard(home)
        # A page-carrying release that was in flight to the dead GLA is
        # gone, and the sender already marked its copy clean: a stale
        # page of the dead partition with no surviving *dirty* current
        # copy has no write-back path left and must be REDOne.  (A
        # surviving dirty copy belongs to an unreleased X holder, whose
        # release will ship it to the replacement host.)
        ledger = self.cluster.ledger
        for page, committed in ledger.stale_pages():
            if self.gla_map(page) != home or page in record.lost:
                continue
            if any(
                node.buffer.has_current_dirty(page, committed)
                for node in self.cluster.nodes
                if node.node_id != home
            ):
                continue
            record.lost[page] = committed

    def _partition_snapshot(
        self, faults: "FaultManager", home: int
    ) -> List[Tuple[int, PageId, LockMode]]:
        """Lock registrations of surviving transactions for ``home``.

        Deterministic order: by node, transaction, page.  Valid while
        the partition is fenced (no acquire or release can touch it).
        """
        registrations = []
        for node in self.cluster.nodes:
            if node.node_id == home or faults.is_down(node.node_id):
                continue
            for txn_id in sorted(node.tm.active):
                txn = node.tm.active[txn_id][0]
                for page in sorted(txn.held_locks):
                    if self.gla_map(page) == home:
                        registrations.append(
                            (txn_id, page, txn.held_locks[page])
                        )
        return registrations

    def recover(
        self, faults: "FaultManager", record: "CrashRecord"
    ) -> Generator[Event, Any, None]:
        """PCL failover: reassign the GLA and rebuild its lock table.

        The replacement (lowest surviving node) announces the failover,
        the dead node's lock holdings at *surviving* partitions are
        released, every survivor ships its lock state for the dead
        partition in a long message, the replacement pays per-lock
        reconstruction CPU and REDOes the lost pages, and finally the
        rebuilt table is installed and the partition reopened -- all
        explicit message/CPU/IO work that close coupling avoids.
        """
        cluster = self.cluster
        home = record.node
        repl = faults.coordinator()
        repl_node = cluster.nodes[repl]
        cfg = faults.config
        ledger = cluster.ledger
        survivors = [
            n
            for n in cluster.nodes
            if n.node_id != home and not faults.is_down(n.node_id)
        ]
        transfer: GlaTransferPayload = {"home": home}
        # 1. Failover announcement (delivery-confirmed short messages).
        for survivor in survivors:
            if survivor.node_id == repl:
                continue
            notice = self.sim.event()
            yield from repl_node.comm.send(
                survivor.node_id, "gla_failover", transfer, reply_event=notice
            )
            yield notice
        # 2. Release what the dead node's transactions held at surviving
        # partitions (the dead partition's table is rebuilt from
        # scratch, so only surviving tables need explicit cleanup).
        # The tables are authoritative, not txn.held_locks: a grant
        # registered at a surviving GLA just before the crash may never
        # have reached the requester, and a transaction that *completed*
        # on the dead node may have had its release message dropped by
        # the crash.  Both leave table state only recovery can reclaim,
        # so release everything held on behalf of a transaction homed at
        # the dead node (per the grant-time provenance map).
        dead_ids = {txn.txn_id for txn in record.killed}
        for gla_id, gla_table in enumerate(self.tables):
            if gla_id == home:
                continue
            for entry in gla_table._entries.values():
                for txn_id in entry.holders:
                    if self._holder_home.get(txn_id) == home:
                        dead_ids.add(txn_id)
        for txn_id in sorted(dead_ids):
            for gla_id, gla_table in enumerate(self.tables):
                if gla_id == home:
                    continue
                for page in sorted(gla_table.held_pages(txn_id)):
                    yield from cluster.nodes[gla_id].cpu.consume(
                        cfg.recovery_instructions_per_lock
                    )
                    entry = gla_table.entry(page)
                    entry.seqno = max(
                        entry.seqno, ledger.committed_version(page)
                    )
                    gla_table.release(txn_id, page)
            self._holder_home.pop(txn_id, None)
        # 3. State exchange: one long message per other survivor, plus
        # per-registration reconstruction CPU at the replacement.  The
        # partition is fenced, so the registration set is stable.
        registrations = self._partition_snapshot(faults, home)
        for survivor in survivors:
            if survivor.node_id == repl:
                continue
            done = self.sim.event()
            yield from survivor.comm.send(
                repl, "gla_state", transfer, long=True, reply_event=done
            )
            yield done
        if registrations:
            yield from repl_node.cpu.consume(
                len(registrations) * cfg.recovery_instructions_per_lock
            )
        # 4. REDO the dead partition's lost pages at the replacement.
        yield from faults.redo_pages(record, repl)
        # 5. Install the rebuilt table and reopen the partition at the
        # replacement host -- synchronously, so no process can observe
        # a half-built table.  Fresh entries start at the committed
        # version (the old table's sequence numbers died with the node).
        table = LockTable(f"gla{home}", seqno_init=ledger.committed_version)
        for txn_id, page, write in self._partition_snapshot(faults, home):
            mode = LockMode.EXCLUSIVE if write else LockMode.SHARED
            table.request(txn_id, page, mode, _noop)
        self.tables[home] = table
        faults.open_partition(home, repl)

    def reintegrate(
        self, faults: "FaultManager", record: "CrashRecord"
    ) -> Generator[Event, Any, None]:
        """GLA failback: move the partition back to the restarted node.

        The partition is fenced again; the interim host flushes its
        dirty pages of the partition (it stops being the page owner),
        ships the lock state back in a long message, and the home node
        pays per-registration CPU before the partition reopens -- the
        loose-coupling reintegration cost GEM does not have.
        """
        home = record.node
        host = faults.gla_host(home)
        if host == home or faults.is_down(host):
            return
        faults.close_partition(home)
        cluster = self.cluster
        host_node = cluster.nodes[host]
        home_node = cluster.nodes[home]
        # Flush the interim host's COMMITTED dirty pages of the
        # partition so the permanent database is current when ownership
        # returns home.  Uncommitted dirty frames stay: their owning
        # transactions' releases will carry them to the home node.  The
        # partition is fenced, so no new committed dirty page can
        # appear; loop only because a page-carrying release may still
        # arrive mid-flush.
        ledger = cluster.ledger
        while True:
            dirty = host_node.buffer.dirty_frames(
                lambda page: self.gla_map(page) == home
            )
            dirty = [
                (page, version)
                for page, version in dirty
                if ledger.committed_version(page) == version
            ]
            if not dirty:
                break
            # Write back in parallel: the flush is random I/O to
            # independent pages, limited by the storage server, not by
            # a serial scan.
            dones = []
            for page, version in dirty:
                done = self.sim.event()
                self.sim.process(
                    self._failback_flush(page, version, host_node, done),
                    name="failback-flush",
                )
                dones.append(done)
            yield self.sim.all_of(dones)
        done = self.sim.event()
        failback: GlaTransferPayload = {"home": home}
        yield from host_node.comm.send(
            home, "gla_failback", failback, long=True, reply_event=done
        )
        yield done
        table = self.tables[home]
        locks = sum(
            len(e.holders) + len(e.queue) for e in table._entries.values()
        )
        if locks:
            yield from home_node.cpu.consume(
                locks * faults.config.recovery_instructions_per_lock
            )
        faults.open_partition(home, None)

    def _failback_flush(
        self, page: PageId, version: int, node: "Node", done: Event
    ) -> Generator[Event, Any, None]:
        yield from self.cluster.storage.write(page, version, node.cpu)
        node.buffer.mark_clean(page, version)
        done.succeed()

    # -- statistics ----------------------------------------------------------------

    def local_share(self) -> float:
        total = self.local_lock_requests + self.remote_lock_requests
        return self.local_lock_requests / total if total else 1.0

    def reset_stats(self) -> None:
        self.lock_wait_time.reset()
        self.remote_grant_delay.reset()
        self.local_lock_requests = 0
        self.remote_lock_requests = 0
        self.auth_read_locks = 0
        self.pages_supplied_with_grant = 0
        self.pages_shipped_with_release = 0
        self.revocations = 0
        for table in self.tables:
            table.requests = 0
            table.immediate_grants = 0
            table.waits = 0
