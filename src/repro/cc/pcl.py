"""Loose coupling: primary copy locking (PCL).

The database is logically partitioned; each node holds the **global
lock authority (GLA)** for one partition (section 3.2, [Ra86]).  Lock
requests against the local GLA partition are processed without
communication; other requests travel as messages to the authorized
node.  Coherency control is integrated:

* page sequence numbers held at the GLA detect buffer invalidations
  with no extra messages;
* under NOFORCE the GLA node doubles as the **page owner** for its
  partition: a page modified elsewhere is returned to the GLA *with*
  the lock release message (no extra message), and the GLA supplies
  the current page version *with* the lock grant message when the
  requester's copy is stale or missing (long instead of short reply,
  but no extra message round);
* consequently the current version of a page is always available at
  the GLA node or in the permanent database.

The optional **read optimization** ([Ra86, Ra91b], enabled by
``config.pcl_read_optimization`` and used for the paper's trace
experiments) grants nodes *read authorizations*: once a node obtained
an S lock with authorization, later S locks (and their releases) on
that page are processed locally without messages until a write lock
anywhere revokes the authorizations with an explicit revoke/ack
message exchange.

Modelling notes (see DESIGN.md):  authorized local S locks are
registered directly in the GLA's lock table at zero message cost so
that global deadlock detection sees them; revoke/ack message costs are
charged when an X lock is granted over outstanding authorizations.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Tuple, TYPE_CHECKING

from repro.cc.base import CCProtocol, LockGrant, PageSource
from repro.db.pages import PageId
from repro.errors import TransactionAborted
from repro.obs import phases
from repro.node.lock_table import LockMode, LockTable
from repro.sim.engine import Event
from repro.sim.stats import Tally
from repro.workload.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.node.node import Node
    from repro.system.cluster import Cluster

__all__ = ["PrimaryCopyProtocol"]


class PrimaryCopyProtocol(CCProtocol):
    """Primary copy locking with integrated coherency control."""

    name = "pcl"

    def __init__(self, cluster: "Cluster", gla_map: Callable[[PageId], int]):
        self.cluster = cluster
        self.sim = cluster.sim
        self.config = cluster.config
        self.detector = cluster.detector
        self.recorder = cluster.recorder
        self.gla_map = gla_map
        self.tables: List[LockTable] = [
            LockTable(f"gla{n}") for n in range(cluster.config.num_nodes)
        ]
        self.lock_wait_time = Tally("pcl.lock_wait")
        self.remote_grant_delay = Tally("pcl.remote_grant_delay")
        self.local_lock_requests = 0
        self.remote_lock_requests = 0
        self.auth_read_locks = 0
        self.pages_supplied_with_grant = 0
        self.pages_shipped_with_release = 0
        self.revocations = 0
        for node in cluster.nodes:
            node.register_handler("lock_req", self._handle_lock_request)
            node.register_handler("release", self._handle_release)
            node.register_handler("revoke", self._handle_revoke)
            #: page -> True while this node holds a read authorization.
            node.auth_cache = {}

    # -- core lock acquisition -------------------------------------------

    def acquire(
        self,
        txn: Transaction,
        page: PageId,
        write: bool,
        cached_version: Optional[int],
    ) -> Generator[Event, Any, LockGrant]:
        node_id = txn.node
        gla = self.gla_map(page)
        mode = LockMode.EXCLUSIVE if write else LockMode.SHARED
        if gla == node_id:
            grant = yield from self._acquire_local(txn, page, mode)
            return grant
        node = self.cluster.nodes[node_id]
        if (
            not write
            and self.config.pcl_read_optimization
            and page in node.auth_cache
        ):
            grant = yield from self._acquire_authorized_read(txn, page, gla)
            if grant is not None:
                return grant
        grant = yield from self._acquire_remote(txn, page, mode, gla, cached_version)
        return grant

    def _acquire_local(
        self, txn: Transaction, page: PageId, mode: LockMode
    ) -> Generator[Event, Any, LockGrant]:
        """Lock request against the node's own GLA partition."""
        self.local_lock_requests += 1
        txn.local_lock_requests += 1
        node = self.cluster.nodes[txn.node]
        table = self.tables[txn.node]
        yield from node.cpu.consume(self.config.instructions_per_lock_op)
        yield from self._table_request(txn.txn_id, table, page, mode)
        entry = table.entry(page)
        if mode is LockMode.EXCLUSIVE:
            with self.recorder.span(txn.txn_id, phases.COMM):
                yield from self._revoke_authorizations(node, page, entry, txn.node)
        txn.held_locks[page] = (mode is LockMode.EXCLUSIVE) or txn.held_locks.get(
            page, False
        )
        return LockGrant(entry.seqno, source=PageSource.STORAGE, local=True)

    def _acquire_authorized_read(
        self, txn: Transaction, page: PageId, gla: int
    ) -> Generator[Event, Any, Optional[LockGrant]]:
        """Read lock processed locally under a read authorization.

        Returns None when the local copy is not current (the page must
        then be obtained from the GLA anyway, so the normal remote
        request is used instead).
        """
        node = self.cluster.nodes[txn.node]
        table = self.tables[gla]
        already_held = table.holds(txn.txn_id, page) is not None
        yield from node.cpu.consume(self.config.instructions_per_lock_op)
        yield from self._table_request(txn.txn_id, table, page, LockMode.SHARED)
        entry = table.entry(page)
        if not node.buffer.has_current_version(page, entry.seqno):
            # Copy missing or stale: fall back to a remote request
            # (which may ship the page with the grant).  Only drop the
            # registration if it was freshly acquired here -- a lock
            # held from an earlier access must stay (strict 2PL).
            if not already_held:
                table.release(txn.txn_id, page)
            return None
        self.auth_read_locks += 1
        self.local_lock_requests += 1
        txn.local_lock_requests += 1
        txn.held_locks[page] = txn.held_locks.get(page, False)
        txn.auth_read_pages.add(page)
        return LockGrant(entry.seqno, source=PageSource.STORAGE, local=True)

    def _acquire_remote(
        self,
        txn: Transaction,
        page: PageId,
        mode: LockMode,
        gla: int,
        cached_version: Optional[int],
    ) -> Generator[Event, Any, LockGrant]:
        """Lock request to a remote GLA node via message exchange."""
        self.remote_lock_requests += 1
        txn.remote_lock_requests += 1
        node = self.cluster.nodes[txn.node]
        started = self.sim.now
        reply = self.sim.event()
        # The whole round trip is message/comm delay from the
        # requester's point of view; the GLA-side lock wait (if any) is
        # re-attributed to LOCK_GLOBAL by the handler's inner span.
        with self.recorder.span(txn.txn_id, phases.COMM):
            yield from node.comm.send(
                gla,
                "lock_req",
                {
                    "txn_id": txn.txn_id,
                    "page": page,
                    "mode": mode,
                    "cached_version": cached_version,
                    "requester": txn.node,
                    "reply": reply,
                },
            )
            payload = yield reply
        self.remote_grant_delay.record(self.sim.now - started)
        if payload.get("aborted"):
            raise TransactionAborted(txn.txn_id)
        txn.held_locks[page] = (mode is LockMode.EXCLUSIVE) or txn.held_locks.get(
            page, False
        )
        if mode is LockMode.EXCLUSIVE:
            # An upgrade supersedes any read-authorization coverage:
            # the release must now reach the GLA (it carries the page).
            txn.auth_read_pages.discard(page)
        if payload.get("auth"):
            node.auth_cache[page] = True
        seqno = payload["seqno"]
        if payload.get("supplied"):
            self.pages_supplied_with_grant += 1
            return LockGrant(
                seqno, source=PageSource.SUPPLIED, local=False, page_supplied=True
            )
        return LockGrant(seqno, source=PageSource.STORAGE, local=False)

    def _handle_lock_request(self, node: "Node", payload: Dict[str, Any]):
        """GLA-side processing of a remote lock request."""
        txn_id = payload["txn_id"]
        page = payload["page"]
        mode: LockMode = payload["mode"]
        requester: int = payload["requester"]
        reply: Event = payload["reply"]
        table = self.tables[node.node_id]
        yield from node.cpu.consume(self.config.instructions_per_lock_op)
        try:
            yield from self._table_request(
                txn_id, table, page, mode, phase=phases.LOCK_GLOBAL
            )
        except TransactionAborted:
            yield from node.comm.send(
                requester, "lock_rsp", {"aborted": True}, reply_event=reply
            )
            return
        entry = table.entry(page)
        if mode is LockMode.EXCLUSIVE:
            yield from self._revoke_authorizations(node, page, entry, requester)
        seqno = entry.seqno
        # The grant carries the page exactly when the permanent
        # database cannot serve it: the GLA holds a dirty current copy
        # (NOFORCE) and the requester's copy is stale or missing.
        # Clean copies imply the permanent database is current, so the
        # requester reads storage as usual.
        supplied = (
            self.config.noforce
            and payload["cached_version"] != seqno
            and node.buffer.has_current_dirty(page, seqno)
        )
        auth = self.config.pcl_read_optimization and mode is LockMode.SHARED
        if auth:
            entry.auth_nodes.add(requester)
        yield from node.comm.send(
            requester,
            "lock_rsp",
            {"seqno": seqno, "supplied": supplied, "auth": auth},
            long=supplied,
            reply_event=reply,
        )

    def _table_request(
        self,
        txn_id: int,
        table: LockTable,
        page: PageId,
        mode: LockMode,
        phase: str = phases.LOCK_LOCAL,
    ) -> Generator[Event, Any, None]:
        """Request a lock in ``table``, waiting (with deadlock handling).

        ``phase`` classifies a blocked wait for the response-time
        breakdown; the GLA-side handler of a remote request passes
        LOCK_GLOBAL so the wait is charged to the *requesting*
        transaction as a global lock wait (its process is suspended
        inside a COMM span meanwhile, so the retag nests correctly).
        """
        wait_event = self.sim.event()

        def on_grant() -> None:
            self.detector.clear(txn_id)
            wait_event.succeed()

        if table.request(txn_id, page, mode, on_grant):
            return
        blocked_at = self.sim.now

        def abort_victim() -> None:
            table.cancel(txn_id, page)
            wait_event.fail(TransactionAborted(txn_id))

        self.detector.register_block(txn_id, table, abort_victim)
        with self.recorder.span(txn_id, phase):
            yield wait_event  # raises TransactionAborted if chosen as victim
        self.lock_wait_time.record(self.sim.now - blocked_at)

    # -- read-authorization revocation ---------------------------------------

    def _revoke_authorizations(
        self, gla_node: "Node", page: PageId, entry, requester: int
    ) -> Generator[Event, Any, None]:
        """Charge revoke/ack exchanges for outstanding authorizations.

        The X lock is already granted in the GLA table (authorized
        local S locks are registered there, so the wait for conflicting
        readers happened in the table); what remains is the message
        cost of invalidating the authorizations.
        """
        targets = [n for n in entry.auth_nodes if n != requester]
        if not targets:
            return
        acks = []
        for target in targets:
            self.revocations += 1
            ack = self.sim.event()
            yield from gla_node.comm.send(
                target, "revoke", {"page": page, "ack": ack, "gla": gla_node.node_id}
            )
            acks.append(ack)
        yield self.sim.all_of(acks)
        entry.auth_nodes.difference_update(targets)

    def _handle_revoke(self, node: "Node", payload: Dict[str, Any]):
        """Authorization-holder side: drop the authorization and ack."""
        node.auth_cache.pop(payload["page"], None)
        yield from node.comm.send(
            payload["gla"], "revoke_ack", {}, reply_event=payload["ack"]
        )

    # -- release ------------------------------------------------------------------

    def commit_release(self, txn: Transaction) -> Generator[Event, Any, None]:
        yield from self._release(txn, commit=True)

    def abort_release(self, txn: Transaction) -> Generator[Event, Any, None]:
        yield from self._release(txn, commit=False)

    def _release(self, txn: Transaction, commit: bool) -> Generator[Event, Any, None]:
        node = self.cluster.nodes[txn.node]
        remote_groups: Dict[int, List[Tuple[PageId, Optional[int]]]] = {}
        for page in list(txn.held_locks):
            new_version = txn.modified.get(page) if commit else None
            gla = self.gla_map(page)
            if gla == txn.node:
                self._apply_release(node, txn.txn_id, page, new_version)
            elif page in txn.auth_read_pages:
                # Covered by a read authorization: release locally, no
                # message to the GLA.
                self.tables[gla].release(txn.txn_id, page)
            else:
                remote_groups.setdefault(gla, []).append((page, new_version))
        txn.held_locks.clear()
        txn.auth_read_pages.clear()
        for gla, pages in remote_groups.items():
            modified = [(p, v) for p, v in pages if v is not None]
            long = self.config.noforce and bool(modified)
            if long:
                self.pages_shipped_with_release += len(modified)
                # The shipped pages are no longer this node's write
                # responsibility -- the GLA becomes the owner.
                for page, version in modified:
                    node.buffer.mark_clean(page, version)
            yield from node.comm.send(
                gla,
                "release",
                {"txn_id": txn.txn_id, "pages": pages, "carry_pages": long},
                long=long,
            )

    def _apply_release(
        self, gla_node: "Node", txn_id: int, page: PageId, new_version: Optional[int]
    ) -> None:
        """Release one lock at its GLA and publish the new seqno."""
        table = self.tables[gla_node.node_id]
        entry = table.entry(page)
        if new_version is not None:
            entry.seqno = new_version
        table.release(txn_id, page)

    def _handle_release(self, node: "Node", payload: Dict[str, Any]):
        """GLA-side processing of a (possibly page-carrying) release."""
        txn_id = payload["txn_id"]
        for page, new_version in payload["pages"]:
            if new_version is not None and payload["carry_pages"]:
                # NOFORCE: the modified page travelled with the release
                # and the GLA takes over ownership (buffers it dirty).
                yield from node.buffer.insert_received_page(
                    page, new_version, dirty=True
                )
            self._apply_release(node, txn_id, page, new_version)

    # -- hooks ------------------------------------------------------------------

    def request_page_from_owner(self, txn, page, grant):  # pragma: no cover
        raise RuntimeError("PCL never fetches pages from an owner node")
        yield  # unreachable; makes this a generator

    def page_written_back(
        self, node_id: int, page: PageId, version: int
    ) -> Generator[Event, Any, None]:
        """No GLA action: the authority keeps coherency responsibility."""
        return
        yield  # pragma: no cover

    # -- statistics ----------------------------------------------------------------

    def local_share(self) -> float:
        total = self.local_lock_requests + self.remote_lock_requests
        return self.local_lock_requests / total if total else 1.0

    def reset_stats(self) -> None:
        self.lock_wait_time.reset()
        self.remote_grant_delay.reset()
        self.local_lock_requests = 0
        self.remote_lock_requests = 0
        self.auth_read_locks = 0
        self.pages_supplied_with_grant = 0
        self.pages_shipped_with_release = 0
        self.revocations = 0
        for table in self.tables:
            table.requests = 0
            table.immediate_grants = 0
            table.waits = 0
