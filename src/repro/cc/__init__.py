"""Concurrency and coherency control protocols.

Two complete protocols are implemented, matching section 3.2:

* :class:`~repro.cc.gem_locking.GemLockingProtocol` -- close coupling:
  all lock requests/releases are processed against a global lock table
  in GEM via synchronous entry accesses; coherency control uses page
  sequence numbers and page-owner tracking stored in the same table.
* :class:`~repro.cc.pcl.PrimaryCopyProtocol` -- loose coupling: the
  database is partitioned into global lock authorities (GLA), remote
  lock requests travel as messages, and update propagation under
  NOFORCE piggybacks page transfers on lock grant/release messages.
  An optional read optimization processes read locks locally.

Both share the :class:`~repro.node.lock_table.LockTable` state machine
and the global :class:`~repro.cc.deadlock.DeadlockDetector`.
"""

from repro.cc.base import CCProtocol, LockGrant, PageSource
from repro.cc.deadlock import DeadlockDetector

__all__ = ["CCProtocol", "DeadlockDetector", "LockGrant", "PageSource"]
