"""Typed wire formats of the inter-node protocol messages.

Every payload travelling through :class:`repro.node.comm.Message` is a
plain dict (messages must stay cheap and the simulator never
serializes them), but each message kind has a fixed shape.  The
:class:`~typing.TypedDict` declarations below are that shape: they are
used at the construction sites so that a field rename or type change
in one protocol surfaces as a type error instead of a ``KeyError`` in
a handler at simulation time.

Handlers receive ``Mapping[str, Any]`` (a handler registered for one
kind only ever sees that kind's payload; the mapping type keeps the
:class:`MessageHandler` protocol uniform across kinds).
"""

from __future__ import annotations

from typing import (
    Any,
    Dict,
    Generator,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Protocol,
    Tuple,
    TYPE_CHECKING,
    TypedDict,
)

from repro.db.pages import PageId
from repro.node.lock_table import LockMode
from repro.sim.engine import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.node.node import Node

__all__ = [
    "MessageHandler",
    "WireFormat",
    "WIRE_FORMATS",
    "LockRequestPayload",
    "LockResponsePayload",
    "ReleasePayload",
    "RevokePayload",
    "AckPayload",
    "PageRequestPayload",
    "PageResponsePayload",
    "GltRevokePayload",
    "GlaTransferPayload",
    "TimestampRequestPayload",
    "TimestampResponsePayload",
    "MvccReadPayload",
    "MvccReadResponsePayload",
    "MvccReservePayload",
    "MvccValidatePayload",
    "MvccInstallPayload",
    "MvccAbortPayload",
    "DgccJoinPayload",
    "DgccDonePayload",
    "DgccSchedPayload",
]


class MessageHandler(Protocol):
    """A registered consumer of one message kind (runs as a process)."""

    def __call__(
        self, node: "Node", payload: Mapping[str, Any]
    ) -> Generator[Event, Any, None]: ...


# -- primary copy locking (PCL) ----------------------------------------


class LockRequestPayload(TypedDict):
    """``lock_req``: remote lock acquisition at the page's GLA."""

    txn_id: int
    page: PageId
    mode: LockMode
    home: int
    #: Version of the requester's buffered copy (None: not cached);
    #: lets the GLA decide whether to ship the page with the grant.
    cached_version: Optional[int]
    requester: int
    reply: Event


class LockResponsePayload(TypedDict, total=False):
    """``lock_rsp``: grant (seqno/supplied/auth) or abort notice."""

    aborted: bool
    seqno: int
    #: The current page version travels with this (long) message.
    supplied: bool
    #: A local read authorization was granted alongside the S lock.
    auth: bool


class ReleasePayload(TypedDict):
    """``release``: locks of one transaction returned to the GLA."""

    txn_id: int
    #: ``(page, new_version)`` pairs; the version is None unless the
    #: release publishes a committed update (NOFORCE page carry).
    pages: List[Tuple[PageId, Optional[int]]]
    #: True when modified pages ride along (makes the message long).
    carry_pages: bool
    home: int


class RevokePayload(TypedDict):
    """``revoke``: GLA tells a node to drop a read authorization."""

    page: PageId
    ack: Event
    gla: int


class AckPayload(TypedDict):
    """``revoke_ack`` / ``glt_revoke_ack``: empty acknowledgement."""


# -- GEM locking --------------------------------------------------------


class PageRequestPayload(TypedDict):
    """``page_req``: fetch a dirty page from its owner's buffer."""

    page: PageId
    reply: Event
    requester: int


class PageResponsePayload(TypedDict):
    """``page_rsp``: the owner's buffered version (None: lapsed)."""

    version: Optional[int]


class GltRevokePayload(TypedDict):
    """``glt_revoke``: revoke a node's GLT lock authorization."""

    page: PageId
    ack: Event
    requester: int


# -- multi-version CC (MVCC, loose coupling) ---------------------------


class TimestampRequestPayload(TypedDict):
    """``mv_ts``: draw a begin/commit timestamp from the authority."""

    txn_id: int
    #: Commit timestamps are published centrally at allocation time so
    #: concurrent validators order themselves against this transaction
    #: before the reply even arrives back; begin timestamps are not.
    commit: bool
    requester: int
    reply: Event


class TimestampResponsePayload(TypedDict):
    """``mv_ts_rsp``: the drawn timestamp."""

    ts: int


class MvccReadPayload(TypedDict):
    """``mv_read``: version-directory lookup at the page's home GLA."""

    page: PageId
    home: int
    requester: int
    reply: Event


class MvccReadResponsePayload(TypedDict, total=False):
    """``mv_read_rsp``: snapshot seqno; the page itself rides along
    (long message) when the GLA buffers the current dirty copy."""

    seqno: int
    supplied: bool


class MvccReservePayload(TypedDict):
    """``mv_reserve``: first-writer-wins write reservation at the home
    GLA; answered with a :class:`LockResponsePayload`."""

    txn_id: int
    page: PageId
    home: int
    #: Version of the requester's buffered copy (None: not cached).
    cached_version: Optional[int]
    requester: int
    reply: Event


class MvccValidatePayload(TypedDict):
    """``mv_validate``: commit validation of the read-set slice homed
    at one GLA (answered with an empty short reply)."""

    txn_id: int
    #: ``(page, version-read)`` pairs homed at ``home``.
    pages: List[Tuple[PageId, int]]
    home: int
    requester: int
    reply: Event


class MvccInstallPayload(TypedDict):
    """``mv_install``: committed versions installed at their home GLA
    (the modified pages ride along under NOFORCE)."""

    txn_id: int
    pages: List[Tuple[PageId, int]]
    #: True when modified pages ride along (makes the message long).
    carry_pages: bool
    home: int
    requester: int
    #: Succeeds back at the committer once the install is applied
    #: (keeps commit completion ordered after directory publication).
    ack: Event


class MvccAbortPayload(TypedDict):
    """``mv_abort``: clear an aborting transaction's write reservations
    homed at one GLA."""

    txn_id: int
    pages: List[PageId]
    home: int


# -- dependency-graph CC (DGCC) ----------------------------------------


class DgccJoinPayload(TypedDict):
    """``dgcc_join``: ship a transaction's access set to the batch
    scheduler (long message -- it carries the full read/write set)."""

    txn_id: int
    #: ``(page, is-write)`` pairs (the strongest mode per page).
    accesses: List[Tuple[PageId, bool]]
    requester: int


class DgccDonePayload(TypedDict):
    """``dgcc_done``: batch-member completion report to the scheduler."""

    txn_id: int
    committed: bool


class DgccSchedPayload(TypedDict):
    """``dgcc_sched``: schedule publication broadcast to batch members
    (delivery-confirmed via the reply event; the batch number lets a
    member sanity-check it is acting on the current schedule)."""

    batch: int


# -- fault handling ----------------------------------------------------


class GlaTransferPayload(TypedDict):
    """``gla_failover`` / ``gla_state`` / ``gla_failback``: GLA
    partition hand-over during failover and failback."""

    home: int


# -- the wire-format declaration ----------------------------------------


class WireFormat(NamedTuple):
    """One declared message kind: payload shape + expected receivers.

    ``handled_by`` names the protocol classes that must register a
    handler for the kind (empty: the message is delivered into a
    ``reply_event`` and never reaches the dispatcher).  ``simlint``'s
    MSG rules read this mapping from the AST and cross-check every
    ``send`` payload and ``register_handler`` call against it; keep it
    exhaustive -- an undeclared kind is a lint error at the send site.
    """

    payload: type
    handled_by: Tuple[str, ...]


WIRE_FORMATS: Dict[str, WireFormat] = {
    # primary copy locking
    "lock_req": WireFormat(LockRequestPayload, ("PrimaryCopyProtocol",)),
    "lock_rsp": WireFormat(LockResponsePayload, ()),
    "release": WireFormat(ReleasePayload, ("PrimaryCopyProtocol",)),
    "revoke": WireFormat(RevokePayload, ("PrimaryCopyProtocol",)),
    "revoke_ack": WireFormat(AckPayload, ()),
    # GEM locking (page_req is shared by every protocol that can own
    # a dirty page under the GEM/RDMA regimes)
    "page_req": WireFormat(
        PageRequestPayload,
        ("GemLockingProtocol", "MvccProtocol", "DgccProtocol"),
    ),
    "page_rsp": WireFormat(PageResponsePayload, ()),
    "glt_revoke": WireFormat(GltRevokePayload, ("GemLockingProtocol",)),
    "glt_revoke_ack": WireFormat(AckPayload, ()),
    # MVCC
    "mv_ts": WireFormat(TimestampRequestPayload, ("MvccProtocol",)),
    "mv_ts_rsp": WireFormat(TimestampResponsePayload, ()),
    "mv_read": WireFormat(MvccReadPayload, ("MvccProtocol",)),
    "mv_read_rsp": WireFormat(MvccReadResponsePayload, ()),
    "mv_reserve": WireFormat(MvccReservePayload, ("MvccProtocol",)),
    "mv_rsp": WireFormat(LockResponsePayload, ()),
    "mv_validate": WireFormat(MvccValidatePayload, ("MvccProtocol",)),
    "mv_validate_rsp": WireFormat(AckPayload, ()),
    "mv_install": WireFormat(MvccInstallPayload, ("MvccProtocol",)),
    "mv_install_ack": WireFormat(AckPayload, ()),
    "mv_abort": WireFormat(MvccAbortPayload, ("MvccProtocol",)),
    # DGCC
    "dgcc_join": WireFormat(DgccJoinPayload, ("DgccProtocol",)),
    "dgcc_done": WireFormat(DgccDonePayload, ("DgccProtocol",)),
    "dgcc_sched": WireFormat(DgccSchedPayload, ()),
    # fault handling (failover orchestration; delivery-confirmed)
    "gla_failover": WireFormat(GlaTransferPayload, ()),
    "gla_state": WireFormat(GlaTransferPayload, ()),
    "gla_failback": WireFormat(GlaTransferPayload, ()),
}
