"""Protocol interface shared by GEM locking and primary copy locking.

The buffer manager drives coherency control through the
:class:`LockGrant` a protocol returns from :meth:`CCProtocol.acquire`:
it names the current page sequence number and where the current page
version can be obtained if the local copy is missing or stale
(:class:`PageSource`).
"""

from __future__ import annotations

import enum
from typing import Any, Dict, Generator, Iterator, Optional, Sequence, TYPE_CHECKING

from repro.db.pages import PageId
from repro.sim.engine import Event
from repro.workload.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.faults.manager import CrashRecord, FaultManager
    from repro.node.lock_table import LockTable

__all__ = ["PageSource", "LockGrant", "CCProtocol"]


class PageSource(str, enum.Enum):
    """Where the current version of a page can be obtained."""

    #: Read the permanent database (disk / disk cache / GEM file).
    STORAGE = "storage"
    #: Request the page from the owning node's buffer (GEM + NOFORCE).
    OWNER = "owner"
    #: The page arrived together with the lock grant (PCL + NOFORCE).
    SUPPLIED = "supplied"


class LockGrant:
    """Result of a lock acquisition."""

    __slots__ = ("seqno", "source", "owner_node", "local", "page_supplied")

    def __init__(
        self,
        seqno: int,
        source: PageSource = PageSource.STORAGE,
        owner_node: Optional[int] = None,
        local: bool = True,
        page_supplied: bool = False,
    ) -> None:
        #: Current (committed) page sequence number.
        self.seqno = seqno
        #: Where to obtain the page on a buffer miss or invalidation.
        self.source = source
        #: Owning node for :attr:`PageSource.OWNER`.
        self.owner_node = owner_node
        #: True if the lock was processed without inter-node messages.
        self.local = local
        #: True if the current page version travelled with the grant.
        self.page_supplied = page_supplied

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LockGrant(seqno={self.seqno}, source={self.source.value}, "
            f"owner={self.owner_node}, local={self.local})"
        )


class CCProtocol:
    """Abstract concurrency/coherency control protocol."""

    name = "abstract"

    #: Multi-version protocols keep superseded committed versions
    #: readable: the buffer manager serves a read whose grant names an
    #: older version from the (modelled) version chain instead of
    #: raising a coherency error, and skips the strict storage-version
    #: check on misses.
    multiversion = False

    def acquire(
        self, txn: Transaction, page: PageId, write: bool, cached_version: Optional[int]
    ) -> Generator[Event, Any, LockGrant]:
        """Acquire a page lock for ``txn`` (S for reads, X for writes).

        ``cached_version`` is the version of the local buffer copy, or
        None when the page is not cached; PCL ships the current page
        with the grant when the copy is stale.  May raise
        :class:`~repro.errors.TransactionAborted`.
        """
        raise NotImplementedError

    def request_page_from_owner(
        self, txn: Transaction, page: PageId, grant: LockGrant
    ) -> Generator[Event, Any, Optional[int]]:
        """Fetch the page from ``grant.owner_node``'s buffer.

        Returns the received version, or None if ownership lapsed and
        the permanent database must be read instead.
        """
        raise NotImplementedError

    def commit_release(self, txn: Transaction) -> Generator[Event, Any, None]:
        """Commit phase 2: publish new sequence numbers, release locks.

        The caller has already installed the committed versions in the
        ledger and (for FORCE) completed all force-writes.
        """
        raise NotImplementedError

    def prepare_commit(self, txn: Transaction) -> Iterator[Event]:
        """Commit phase 0: validate before any commit work is done.

        Runs inside the COMMIT span before the log write.  Optimistic
        protocols validate their read set here and raise
        :class:`~repro.errors.TransactionAborted` on failure, which
        flows into the normal rollback/restart path.  The default is a
        zero-event no-op so locking protocols are unaffected.
        """
        return iter(())

    def abort_release(self, txn: Transaction) -> Generator[Event, Any, None]:
        """Release everything after an abort (no publications).

        Must be idempotent and interruption-safe: a crash can cut the
        release short mid-generator and the fault path (or a racing
        second abort) may run it again -- already-released entries are
        skipped, never double-released.
        """
        raise NotImplementedError

    def page_written_back(
        self, node_id: int, page: PageId, version: int
    ) -> Generator[Event, Any, None]:
        """A node wrote a committed dirty page to permanent storage.

        GEM locking clears the page-owner entry so that future readers
        go to storage; PCL needs no action (the GLA stays responsible).
        """
        raise NotImplementedError

    # -- fault injection hooks -----------------------------------------
    #
    # Called by repro.faults.FaultManager.  The base implementations do
    # nothing, so protocols without special failure handling keep
    # working (the generic teardown in the manager is still applied).

    def lock_tables(self) -> Sequence["LockTable"]:
        """All lock tables the protocol maintains (crash cleanup scans
        them for queued requests of transactions killed by a crash)."""
        return ()

    # -- introspection / result collection -----------------------------

    def num_blocked(self) -> int:
        """Transactions currently waiting inside the protocol (lock
        queues, validation waits, epoch barriers)."""
        return sum(table.num_blocked() for table in self.lock_tables())

    def lock_stats(self) -> Dict[str, float]:
        """CC-path statistics for result collection.

        Protocols without the legacy GEM/PCL stat shapes report through
        this generic view.  Required keys: ``local_share``,
        ``remote_lock_requests``, ``lock_requests``, ``mean_lock_wait``,
        ``page_requests``, ``mean_page_request_delay`` and
        ``pages_supplied_with_grant``.
        """
        raise NotImplementedError

    def crash_node(self, faults: "FaultManager", record: "CrashRecord") -> None:
        """Synchronous protocol bookkeeping at the instant of a crash.

        Runs inside the crash event, before any other process can
        observe the failure.  Use it to fence off state that must not
        be served during recovery and to extend ``record.lost`` with
        pages whose only current copy died with the node.
        """

    def recover(
        self, faults: "FaultManager", record: "CrashRecord"
    ) -> Generator[Event, Any, None]:
        """Replay the regime's failover protocol (takes simulated time).

        When this generator finishes, surviving nodes must be able to
        process the full workload again.
        """
        return
        yield  # pragma: no cover - makes this a generator

    def reintegrate(
        self, faults: "FaultManager", record: "CrashRecord"
    ) -> Generator[Event, Any, None]:
        """Bring the restarted node back into the protocol.

        Runs after the node has been marked up again and has paid its
        restart CPU cost.
        """
        return
        yield  # pragma: no cover - makes this a generator
