"""Interconnection network model.

The paper models the network as a simple delay characterized by a fixed
transmission bandwidth (section 3.3).  We model it as a single shared
FCFS server whose service time is ``message_bytes / bandwidth``, so
that heavy message traffic (e.g. PCL with random routing at ten nodes)
also exhibits transmission queuing.  The dominant cost of messages --
the CPU overhead of the communication protocol at sender and receiver
-- is charged by :class:`~repro.node.comm.CommSubsystem`.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.engine import Event, Simulator
from repro.sim.resources import Resource

__all__ = ["Network"]


class Network:
    """Shared transmission medium with fixed bandwidth."""

    def __init__(self, sim: Simulator, bandwidth: float = 10e6):
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        self.sim = sim
        self.bandwidth = bandwidth
        self.server = Resource(sim, capacity=1, name="network")
        self.bytes_transmitted = 0
        self.messages = 0

    def transmit(self, nbytes: int) -> Generator[Event, Any, None]:
        """Occupy the medium for the transmission of ``nbytes``."""
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        self.messages += 1
        self.bytes_transmitted += nbytes
        yield from self.server.acquire(nbytes / self.bandwidth)

    def utilization(self) -> float:
        return self.server.utilization()

    def busy_time(self, now=None) -> float:
        """Accumulated busy medium-seconds since the last reset."""
        return self.server.busy_time(now)

    def reset_stats(self) -> None:
        self.server.reset_stats()
        self.bytes_transmitted = 0
        self.messages = 0
