"""Global Extended Memory device model.

GEM is a non-volatile, shared semiconductor store with a page- and
entry-oriented access interface (section 2).  Accesses are synchronous:
the accessing node's CPU stays busy for the complete access, including
any queuing delay at the GEM server.  The *caller* is therefore
responsible for holding a CPU unit around :meth:`access_page` /
:meth:`access_entry`; this module only models the GEM server itself.
"""

from __future__ import annotations

from typing import Iterator

from repro.sim.engine import Event, Simulator
from repro.sim.resources import Resource

__all__ = ["GemDevice"]


class GemDevice:
    """The shared GEM store: a multi-server queued resource.

    Parameters mirror Table 4.1: one server, 50 microseconds per page
    access, 2 microseconds per entry access.  Service times are
    deterministic (semiconductor memory has no mechanical variance).
    """

    def __init__(
        self,
        sim: Simulator,
        servers: int = 1,
        page_access_time: float = 50e-6,
        entry_access_time: float = 2e-6,
    ):
        if page_access_time < 0 or entry_access_time < 0:
            raise ValueError("access times must be non-negative")
        self.sim = sim
        self.page_access_time = page_access_time
        self.entry_access_time = entry_access_time
        self.server = Resource(sim, capacity=servers, name="gem")
        self.page_accesses = 0
        self.entry_accesses = 0

    def access_page(self) -> Iterator[Event]:
        """One synchronous page read or write (caller holds its CPU).

        Returns the server's acquire generator directly (callers
        delegate with ``yield from``); the wrapper frame would be
        resumed on every event otherwise.
        """
        self.page_accesses += 1
        return self.server.acquire(self.page_access_time)

    def access_entry(self) -> Iterator[Event]:
        """One synchronous entry read or Compare&Swap write."""
        self.entry_accesses += 1
        return self.server.acquire(self.entry_access_time)

    def access_entries(self, count: int) -> Iterator[Event]:
        """``count`` back-to-back entry accesses (held as one service)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return iter(())
        self.entry_accesses += count
        return self.server.acquire(count * self.entry_access_time)

    def utilization(self) -> float:
        return self.server.utilization()

    def busy_time(self, now=None) -> float:
        """Accumulated busy server-seconds since the last reset."""
        return self.server.busy_time(now)

    def reset_stats(self) -> None:
        self.server.reset_stats()
        self.page_accesses = 0
        self.entry_accesses = 0
