"""LRU disk cache shared by the disks of one array.

Management follows the realization of commercial (IBM) disk caches the
paper cites [Gr89]:

* LRU page replacement.
* A **volatile** cache avoids the disk access for read hits; writes go
  through to disk (refreshing a cached copy so the cache never serves
  stale data).
* A **non-volatile** cache additionally satisfies *all* writes in the
  cache and updates the disk copy asynchronously (destage).

Because the simulation carries versions in the global ledger rather
than page contents, the cache itself only tracks presence, recency and
dirtiness.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.db.pages import PageId

__all__ = ["DiskCache"]


class DiskCache:
    """An LRU set of cached pages with dirty tracking.

    ``capacity`` of 0 disables the cache (every lookup misses).
    """

    def __init__(self, capacity: int, nonvolatile: bool):
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = capacity
        self.nonvolatile = nonvolatile
        self._entries: "OrderedDict[PageId, bool]" = OrderedDict()  # page -> dirty
        self.read_hits = 0
        self.read_misses = 0
        self.write_hits = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, page: PageId) -> bool:
        return page in self._entries

    def is_dirty(self, page: PageId) -> bool:
        return self._entries.get(page, False)

    def lookup_for_read(self, page: PageId) -> bool:
        """Return True on a read hit (and touch the entry)."""
        if self.capacity and page in self._entries:
            self._entries.move_to_end(page)
            self.read_hits += 1
            return True
        self.read_misses += 1
        return False

    def insert(self, page: PageId, dirty: bool = False) -> Optional[PageId]:
        """Insert (or refresh) ``page``; return an evicted page or None.

        Evicting a dirty page is safe for durability because dirty
        pages are enqueued for destage at write time; the queued
        destage still performs its disk write after eviction.
        """
        if not self.capacity:
            return None
        if page in self._entries:
            # Refresh recency; dirty status is sticky until destaged.
            self._entries[page] = self._entries[page] or dirty
            self._entries.move_to_end(page)
            return None
        evicted: Optional[PageId] = None
        if len(self._entries) >= self.capacity:
            evicted, _dirty = self._entries.popitem(last=False)
        self._entries[page] = dirty
        return evicted

    def note_write(self, page: PageId) -> bool:
        """Handle a write I/O arriving at the cache.

        Returns True if the write is absorbed by the cache (non-volatile
        cache), False if it must go to disk (volatile cache or no cache).
        A volatile cache refreshes a cached copy so it never serves a
        stale version after the disk write completes.
        """
        if not self.capacity:
            return False
        if self.nonvolatile:
            self.write_hits += 1
            self.insert(page, dirty=True)
            return True
        if page in self._entries:
            self._entries.move_to_end(page)
        return False

    def mark_clean(self, page: PageId) -> None:
        """Destage completed: drop the dirty flag if still cached."""
        if page in self._entries:
            self._entries[page] = False

    def dirty_pages(self) -> List[PageId]:
        return [page for page, dirty in self._entries.items() if dirty]

    def hit_ratio(self) -> float:
        total = self.read_hits + self.read_misses
        return self.read_hits / total if total else 0.0

    def reset_stats(self) -> None:
        self.read_hits = 0
        self.read_misses = 0
        self.write_hits = 0
