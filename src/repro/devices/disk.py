"""Disk array model with optional disk cache.

A disk access consists of three components (section 3.3): transmission
delay between main memory and the disk controller, controller service,
and the disk delay proper.  Controller and disk times are sampled
exponentially around their Table 4.1 means; the page transfer time is
deterministic.  Pages are declustered over the array's disks by a hash
of the page id; each disk is a FCFS server, controllers are a pooled
server sized at one controller per four disks.

With a cache (:class:`~repro.devices.disk_cache.DiskCache`):

* read hit: controller + transfer only (about 1.4 ms);
* non-volatile cache write: controller + transfer, durable immediately,
  destaged to disk asynchronously by a background worker per array.
"""

from __future__ import annotations

from typing import Any, Generator, Optional, Tuple

from repro.db.pages import PageId, VersionLedger
from repro.devices.disk_cache import DiskCache
from repro.sim.engine import Event, Simulator
from repro.sim.resources import Resource, Store, hold_seq, hold_seq_cancel
from repro.sim.rng import Stream

#: Extra legs prepended to an I/O's ``hold_seq`` chain (the issuing
#: node's CPU setup slice, see ``StorageDirectory``).  Each leg is
#: ``(resource, time, stream)``; see :func:`repro.sim.resources.hold_seq`.
Legs = Tuple[Tuple[Optional[Resource], float, Any], ...]

__all__ = ["DiskArray"]


class DiskArray:
    """A set of disks holding one database file (or a log)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        num_disks: int,
        ledger: VersionLedger,
        stream: Stream,
        disk_time: float = 0.015,
        controller_time: float = 0.001,
        transfer_time: float = 0.0004,
        cache: Optional[DiskCache] = None,
        spread_accesses: bool = False,
    ):
        if num_disks < 1:
            raise ValueError("num_disks must be >= 1")
        self.sim = sim
        self.name = name
        self.ledger = ledger
        self.stream = stream
        self.disk_time = disk_time
        self.controller_time = controller_time
        self.transfer_time = transfer_time
        #: Sequential files (HISTORY): accesses are spread round-robin
        #: over the drives instead of by page hash -- repeated writes
        #: of the current append page would otherwise saturate one
        #: drive, which neither the paper's multi-server disk model nor
        #: a real striped layout exhibits.
        self.spread_accesses = spread_accesses
        self._rr = 0
        self.disks = [
            Resource(sim, capacity=1, name=f"{name}.disk{i}") for i in range(num_disks)
        ]
        self.controllers = Resource(
            sim, capacity=max(1, num_disks // 4), name=f"{name}.ctrl"
        )
        self.cache = cache
        self.reads = 0
        self.writes = 0
        self.disk_reads = 0
        self.disk_writes = 0
        self._destage_queue: Optional[Store] = None
        if cache is not None and cache.nonvolatile:
            self._destage_queue = Store(sim, name=f"{name}.destage")
            sim.process(self._destage_worker(), name=f"{name}.destage")

    # -- helpers ---------------------------------------------------------

    def _disk_for(self, page: PageId) -> Resource:
        if self.spread_accesses:
            self._rr = (self._rr + 1) % len(self.disks)
            return self.disks[self._rr]
        return self.disks[hash(page) % len(self.disks)]

    def _disk_service(self, page: PageId) -> Generator[Event, Any, None]:
        yield from self._disk_for(page).acquire(self.stream.exponential(self.disk_time))

    # -- public I/O operations ---------------------------------------------

    def read(self, page: PageId, lead: Legs = ()) -> Generator[Event, Any, int]:
        """Read ``page``; returns the version found on permanent storage.

        The whole access -- optional ``lead`` legs (the issuing node's
        CPU setup slice), controller service, bus transfer, disk
        service on a miss -- runs as ONE :func:`hold_seq` chain: the
        caller suspends once per I/O instead of once per leg, with the
        exponential service times drawn lazily at each leg's start,
        exactly where the step-per-leg formulation sampled them.
        """
        self.reads += 1
        cache = self.cache
        hit = cache is not None and cache.lookup_for_read(page)
        stream = self.stream
        legs: Legs = (
            *lead,
            (self.controllers, self.controller_time, stream),
            (None, self.transfer_time, None),
        )
        if not hit:
            legs = (*legs, (self._disk_for(page), self.disk_time, stream))
        done = hold_seq(self.sim, legs)
        try:
            yield done
        except BaseException:
            hold_seq_cancel(done)
            raise
        if not hit:
            self.disk_reads += 1
            if cache is not None:
                cache.insert(page, dirty=False)
        return self.ledger.storage_version(page)

    def write(
        self, page: PageId, version: Optional[int], lead: Legs = ()
    ) -> Generator[Event, Any, None]:
        """Write ``version`` of ``page`` to permanent storage.

        Returns once the write is *durable*: after the disk write, or
        after the cache write for a non-volatile cache (destage then
        happens in the background).  ``version=None`` performs the
        timing without ledger bookkeeping (log writes).  One
        :func:`hold_seq` chain, as in :meth:`read`.
        """
        self.writes += 1
        cache = self.cache
        absorbed = cache is not None and cache.note_write(page)
        stream = self.stream
        legs: Legs = (
            *lead,
            (self.controllers, self.controller_time, stream),
            (None, self.transfer_time, None),
        )
        if not absorbed:
            legs = (*legs, (self._disk_for(page), self.disk_time, stream))
        done = hold_seq(self.sim, legs)
        try:
            yield done
        except BaseException:
            hold_seq_cancel(done)
            raise
        if absorbed:
            if version is not None:
                self.ledger.write_storage(page, version)
            assert self._destage_queue is not None
            self._destage_queue.put(page)
            return
        self.disk_writes += 1
        if version is not None:
            self.ledger.write_storage(page, version)

    def _destage_worker(self):
        """Background process writing cache-absorbed pages to disk."""
        assert self._destage_queue is not None
        while True:
            page = yield self._destage_queue.get()
            yield from self._disk_service(page)
            self.disk_writes += 1
            if self.cache is not None:
                self.cache.mark_clean(page)

    # -- statistics ------------------------------------------------------

    def max_disk_utilization(self) -> float:
        return max(disk.utilization() for disk in self.disks)

    def mean_disk_utilization(self) -> float:
        return sum(disk.utilization() for disk in self.disks) / len(self.disks)

    def busy_time(self, now=None) -> float:
        """Accumulated busy disk-seconds over the whole array."""
        return sum(disk.busy_time(now) for disk in self.disks)

    def reset_stats(self) -> None:
        for disk in self.disks:
            disk.reset_stats()
        self.controllers.reset_stats()
        self.reads = 0
        self.writes = 0
        self.disk_reads = 0
        self.disk_writes = 0
        if self.cache is not None:
            self.cache.reset_stats()
