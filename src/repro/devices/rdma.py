"""RDMA fabric model for the disaggregated-memory coupling regime.

The third coupling regime replaces GEM's shared semiconductor store
with a *remote memory pool* reached over an RDMA fabric by one-sided
verbs (Wang et al., "The Case for Distributed Shared-Memory Databases
with RDMA-Enabled Memory Disaggregation").  The pool is passive: there
is no server CPU on the far side, only NIC/fabric occupancy.  Lock and
directory state is co-located with the data in the pool, so a lock
acquisition is a remote Compare&Swap instead of a GEM entry
instruction, and a page fetch is a one-sided read instead of a
message exchange with the owning node.

Accesses are synchronous like GEM accesses: the issuing node's CPU
stays busy for the complete verb, including queuing at the fabric.
The *caller* holds a CPU unit around every ``cas``/``read_page``/
``write_page``; this module only models fabric occupancy.

The module-level ``DEFAULT_*`` constants are the cost model
(micro-benchmark figures typical of one-sided RDMA on a modern
fabric); :class:`repro.system.config.SystemConfig` uses them as the
defaults of its ``rdma_*`` fields.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.sim.engine import Event, Simulator
from repro.sim.resources import Resource

__all__ = [
    "DEFAULT_RDMA_CHANNELS",
    "DEFAULT_RDMA_CAS_TIME",
    "DEFAULT_RDMA_READ_TIME",
    "DEFAULT_RDMA_PAGE_READ_TIME",
    "DEFAULT_RDMA_PAGE_WRITE_TIME",
    "DEFAULT_INSTRUCTIONS_PER_RDMA_OP",
    "DEFAULT_RDMA_LOCK_LEASE_SECONDS",
    "DEFAULT_RDMA_REREGISTRATION_SECONDS",
    "RdmaFabric",
]

#: Parallel one-sided channels into the pool (QP/NIC parallelism).
DEFAULT_RDMA_CHANNELS: int = 2
#: One-sided Compare&Swap round trip (lock word co-located with data).
DEFAULT_RDMA_CAS_TIME: float = 3e-6
#: One-sided small read (lock/directory entry re-read after a wait).
DEFAULT_RDMA_READ_TIME: float = 2e-6
#: One-sided 4 KB page read from the pool.
DEFAULT_RDMA_PAGE_READ_TIME: float = 8e-6
#: One-sided 4 KB page write (commit install) into the pool.
DEFAULT_RDMA_PAGE_WRITE_TIME: float = 10e-6
#: CPU instructions to post a verb and poll its completion.
DEFAULT_INSTRUCTIONS_PER_RDMA_OP: float = 400.0
#: Lease on pool-resident lock words: locks of a crashed compute node
#: become reclaimable only after its lease expired (there is no
#: central manager that could revoke them synchronously).
DEFAULT_RDMA_LOCK_LEASE_SECONDS: float = 1.0
#: Memory-region/queue-pair re-registration time a restarted compute
#: node pays before it can issue one-sided verbs again.
DEFAULT_RDMA_REREGISTRATION_SECONDS: float = 0.08


class RdmaFabric:
    """The fabric between compute nodes and the memory pool.

    A multi-channel queued resource with deterministic service times
    (the pool side is passive memory; there is no seek/rotation
    variance).  Mirrors :class:`repro.devices.gem.GemDevice` so the
    protocols can swap the cost model without changing structure.
    """

    def __init__(
        self,
        sim: Simulator,
        channels: int = DEFAULT_RDMA_CHANNELS,
        cas_time: float = DEFAULT_RDMA_CAS_TIME,
        read_time: float = DEFAULT_RDMA_READ_TIME,
        page_read_time: float = DEFAULT_RDMA_PAGE_READ_TIME,
        page_write_time: float = DEFAULT_RDMA_PAGE_WRITE_TIME,
    ) -> None:
        if min(cas_time, read_time, page_read_time, page_write_time) < 0:
            raise ValueError("verb times must be non-negative")
        if channels < 1:
            raise ValueError("channels must be >= 1")
        self.sim = sim
        self.cas_time = cas_time
        self.read_time = read_time
        self.page_read_time = page_read_time
        self.page_write_time = page_write_time
        self.channel = Resource(sim, capacity=channels, name="rdma")
        self.cas_ops = 0
        self.entry_reads = 0
        self.page_reads = 0
        self.page_writes = 0

    def cas(self, count: int = 1) -> Iterator[Event]:
        """``count`` back-to-back remote CAS verbs (caller holds its CPU).

        Returns the channel's acquire generator directly, like
        :meth:`GemDevice.access_entries`, so callers delegate with
        ``yield from`` without an extra wrapper frame.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return iter(())
        self.cas_ops += count
        return self.channel.acquire(count * self.cas_time)

    def read_entry(self, count: int = 1) -> Iterator[Event]:
        """``count`` one-sided small reads (lock word / directory entry)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return iter(())
        self.entry_reads += count
        return self.channel.acquire(count * self.read_time)

    def read_page(self) -> Iterator[Event]:
        """One one-sided page read from the pool."""
        self.page_reads += 1
        return self.channel.acquire(self.page_read_time)

    def write_pages(self, count: int = 1) -> Iterator[Event]:
        """``count`` one-sided page writes into the pool (commit install)."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return iter(())
        self.page_writes += count
        return self.channel.acquire(count * self.page_write_time)

    def utilization(self) -> float:
        return self.channel.utilization()

    def busy_time(self, now: Optional[float] = None) -> float:
        """Accumulated busy channel-seconds since the last reset."""
        return self.channel.busy_time(now)

    def reset_stats(self) -> None:
        self.channel.reset_stats()
        self.cas_ops = 0
        self.entry_reads = 0
        self.page_reads = 0
        self.page_writes = 0
