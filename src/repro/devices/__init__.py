"""External device models (section 3.3 of the paper).

All storage units are modelled as queued servers:

* :class:`~repro.devices.gem.GemDevice` -- the Global Extended Memory:
  a shared server with distinct service times for page and entry
  accesses.  GEM accesses are *synchronous*: the accessing CPU is held
  for the full access including any queuing at the GEM server.
* :class:`~repro.devices.disk.DiskArray` -- a declustered set of disks
  with controllers, optionally fronted by a volatile or non-volatile
  LRU disk cache with asynchronous destage.
* :class:`~repro.devices.network.Network` -- the interconnection
  network, a shared server with fixed transmission bandwidth.
* :class:`~repro.devices.storage.StorageDirectory` -- maps partitions
  to their devices and provides the read/write entry points used by
  the buffer managers.
"""

from repro.devices.disk import DiskArray
from repro.devices.gem import GemDevice
from repro.devices.network import Network
from repro.devices.storage import StorageDirectory

__all__ = ["DiskArray", "GemDevice", "Network", "StorageDirectory"]
