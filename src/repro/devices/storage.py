"""Storage directory: partition-to-device mapping and I/O entry points.

The directory owns the translation of a logical page I/O into device
operations plus the CPU overhead they cost at the issuing node:

* disk-based devices: 3000 instructions per page I/O, then the device
  operation proceeds without holding a CPU;
* GEM-resident files: 300 instructions to initiate, then the page
  access is *synchronous* -- the CPU stays busy for the whole access,
  including queuing at the GEM server (section 2).

Log files are written through :meth:`StorageDirectory.write_log` to a
per-node log disk with the reduced sequential-access disk time.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Union

from repro.db.pages import PageId, VersionLedger
from repro.devices.disk import DiskArray
from repro.devices.gem import GemDevice
from repro.node.cpu import CpuPool
from repro.sim.engine import Event, Simulator
from repro.sim.resources import held_chain, held_chain_cancel

__all__ = ["StorageDirectory"]

Backend = Union[DiskArray, GemDevice]


class StorageDirectory:
    """Maps partition indexes to their storage backends."""

    def __init__(
        self,
        sim: Simulator,
        ledger: VersionLedger,
        instructions_per_io: float,
        instructions_per_gem_io: float,
        log_gem: Optional[GemDevice] = None,
    ):
        self.sim = sim
        self.ledger = ledger
        self.instructions_per_io = instructions_per_io
        self.instructions_per_gem_io = instructions_per_gem_io
        self._backends: Dict[int, Backend] = {}
        self._log_disks: List[DiskArray] = []
        self._log_seq = 0
        #: When set, log files are GEM-resident (section 2 usage form).
        self._log_gem = log_gem
        #: Partitions whose writes are absorbed by a GEM write buffer
        #: and destaged to their disks asynchronously (section 2's
        #: third usage form) -> the GEM device absorbing them.
        self._write_buffers: Dict[int, GemDevice] = {}
        #: Fault manager hook (set by the cluster when fault injection
        #: is enabled): reads of pages whose only current copy died
        #: with a crashed node must wait for REDO recovery.
        self.faults = None

    # -- configuration ----------------------------------------------------

    def assign(
        self,
        partition_index: int,
        backend: Backend,
        gem_write_buffer: Optional[GemDevice] = None,
    ) -> None:
        self._backends[partition_index] = backend
        if gem_write_buffer is not None:
            if isinstance(backend, GemDevice):
                raise ValueError("a GEM-resident file needs no write buffer")
            self._write_buffers[partition_index] = gem_write_buffer

    def assign_log_disks(self, log_disks: List[DiskArray]) -> None:
        self._log_disks = log_disks

    def backend(self, partition_index: int) -> Backend:
        return self._backends[partition_index]

    def is_gem_resident(self, partition_index: int) -> bool:
        return isinstance(self._backends[partition_index], GemDevice)

    # -- page I/O -----------------------------------------------------------

    def read(self, page: PageId, cpu: CpuPool) -> Generator[Event, Any, int]:
        """Read ``page`` from its permanent storage; returns the version."""
        if self.faults is not None:
            # The permanent copy may be behind a crashed node's lost
            # buffer update: block until REDO recovery restores it.
            yield from self.faults.wait_redo(page)
        backend = self._backends[page[0]]
        if isinstance(backend, GemDevice):
            # One chained entry (held_chain) covers the CPU grant, the
            # setup instructions and the synchronous GEM page access:
            # the generator suspends once per I/O instead of per leg.
            gem = backend
            gem.page_accesses += 1
            gio = self.instructions_per_gem_io
            cpu.instructions_executed += gio
            done = held_chain(
                cpu.resource, gem.server, gio / cpu.speed, gem.page_access_time
            )
            try:
                yield done
            except BaseException:
                held_chain_cancel(done)
                raise
            return self.ledger.storage_version(page)
        # Disk-resident file: the CPU setup slice rides as the lead leg
        # of the disk I/O's hold_seq chain -- one suspension covers
        # CPU, controller, transfer and disk service.
        instr = self.instructions_per_io
        lead: Any = ()
        if instr:
            cpu.instructions_executed += instr
            lead = ((cpu.resource, instr / cpu.speed, None),)
        version = yield from backend.read(page, lead=lead)
        return version

    def write(
        self, page: PageId, version: Optional[int], cpu: CpuPool
    ) -> Generator[Event, Any, None]:
        """Write ``version`` of ``page``; returns when durable.

        ``version=None`` performs the timing without ledger bookkeeping
        (pages of latch-protected partitions carry no version).
        """
        backend = self._backends[page[0]]
        if isinstance(backend, GemDevice):
            # One chained entry (held_chain) covers the CPU grant, the
            # setup instructions and the synchronous GEM page access:
            # the generator suspends once per I/O instead of per leg.
            gem = backend
            gem.page_accesses += 1
            gio = self.instructions_per_gem_io
            cpu.instructions_executed += gio
            done = held_chain(
                cpu.resource, gem.server, gio / cpu.speed, gem.page_access_time
            )
            try:
                yield done
            except BaseException:
                held_chain_cancel(done)
                raise
            if version is not None:
                self.ledger.write_storage(page, version)
            return
        write_buffer = self._write_buffers.get(page[0])
        if write_buffer is not None:
            # GEM write buffer: the write is durable after a synchronous
            # GEM page access; the disk copy is updated asynchronously.
            # One chained entry (held_chain) covers the CPU grant, the
            # setup instructions and the synchronous GEM page access:
            # the generator suspends once per I/O instead of per leg.
            gem = write_buffer
            gem.page_accesses += 1
            gio = self.instructions_per_gem_io
            cpu.instructions_executed += gio
            done = held_chain(
                cpu.resource, gem.server, gio / cpu.speed, gem.page_access_time
            )
            try:
                yield done
            except BaseException:
                held_chain_cancel(done)
                raise
            if version is not None:
                self.ledger.write_storage(page, version)
            self.sim.process(self._destage(backend, page), name="gem-wbuf-destage")
            return
        instr = self.instructions_per_io
        lead: Any = ()
        if instr:
            cpu.instructions_executed += instr
            lead = ((cpu.resource, instr / cpu.speed, None),)
        yield from backend.write(page, version, lead=lead)

    def _destage(self, backend: DiskArray, page: PageId):
        """Background disk update behind the GEM write buffer."""
        yield from backend.write(page, None)

    def read_log(self, node_id: int, cpu: CpuPool) -> Generator[Event, Any, None]:
        """Read one log page of ``node_id`` during crash recovery.

        Log devices survive node crashes (dedicated log disk, or the
        non-volatile GEM), so REDO always reads from the *crashed*
        node's log -- charged to the recovering node's CPU.
        """
        if self._log_gem is not None:
            # One chained entry (held_chain) covers the CPU grant, the
            # setup instructions and the synchronous GEM page access:
            # the generator suspends once per I/O instead of per leg.
            gem = self._log_gem
            gem.page_accesses += 1
            gio = self.instructions_per_gem_io
            cpu.instructions_executed += gio
            done = held_chain(
                cpu.resource, gem.server, gio / cpu.speed, gem.page_access_time
            )
            try:
                yield done
            except BaseException:
                held_chain_cancel(done)
                raise
            return
        log_disk = self._log_disks[node_id]
        instr = self.instructions_per_io
        lead: Any = ()
        if instr:
            cpu.instructions_executed += instr
            lead = ((cpu.resource, instr / cpu.speed, None),)
        yield from log_disk.read((-1 - node_id, 0), lead=lead)

    def write_log(self, node_id: int, cpu: CpuPool) -> Generator[Event, Any, None]:
        """Write one log page at commit (phase 1).

        Goes to the node's log disk, or -- with a GEM-resident log --
        as a synchronous GEM page write (non-volatile, so immediately
        durable and more than two orders of magnitude faster).
        """
        if self._log_gem is not None:
            # One chained entry (held_chain) covers the CPU grant, the
            # setup instructions and the synchronous GEM page access:
            # the generator suspends once per I/O instead of per leg.
            gem = self._log_gem
            gem.page_accesses += 1
            gio = self.instructions_per_gem_io
            cpu.instructions_executed += gio
            done = held_chain(
                cpu.resource, gem.server, gio / cpu.speed, gem.page_access_time
            )
            try:
                yield done
            except BaseException:
                held_chain_cancel(done)
                raise
            return
        log_disk = self._log_disks[node_id]
        instr = self.instructions_per_io
        lead: Any = ()
        if instr:
            cpu.instructions_executed += instr
            lead = ((cpu.resource, instr / cpu.speed, None),)
        self._log_seq += 1
        yield from log_disk.write((-1 - node_id, self._log_seq), None, lead=lead)
