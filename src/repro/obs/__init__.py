"""Structured tracing and metrics (response-time decomposition).

The observability layer decomposes every transaction's response time
into named phases (see :mod:`repro.obs.phases`): input-queue wait, CPU
service and queuing, lock waits (local vs. global), buffer-miss I/O,
GEM entry/page access, message delay, page-transfer wait, commit
processing and abort/restart overhead.

Model components report phases through *span* hooks on a recorder:

* :data:`NULL_RECORDER` (the default) makes every hook a no-op so the
  simulation pays nothing when tracing is off;
* :class:`PhaseRecorder` (``config.collect_breakdown``) attributes
  simulated time to the innermost open span of each transaction and
  aggregates per-phase means that sum *exactly* to the measured mean
  response time;
* with ``config.trace_spans`` every span is additionally retained and
  can be exported as Chrome-trace-format JSON
  (:func:`repro.obs.chrome.export_chrome_trace`, viewable in
  Perfetto / ``about://tracing``).
"""

from repro.obs.breakdown import ResponseTimeBreakdown, format_breakdown
from repro.obs.chrome import chrome_trace_events, export_chrome_trace, run_traced
from repro.obs.recorder import NULL_RECORDER, NullRecorder, PhaseRecorder

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "PhaseRecorder",
    "ResponseTimeBreakdown",
    "chrome_trace_events",
    "export_chrome_trace",
    "format_breakdown",
    "run_traced",
]
