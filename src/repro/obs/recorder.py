"""Span recorders: the hook surface of the observability layer.

Model components call three hooks — ``txn_begin``, ``span`` and
``txn_end`` — on whatever recorder the cluster carries.  The default
:data:`NULL_RECORDER` turns every hook into a constant-time no-op, so
the instrumented hot paths cost nothing measurable when tracing is off.

:class:`PhaseRecorder` keeps, per in-flight transaction, a stack of
open spans.  Time is attributed to the *innermost* open span: pushing a
span closes the covering span's current segment, popping resumes it.
Whatever the spans do not cover lands in the explicit ``other`` bucket
when the transaction ends, so the per-phase components always partition
the transaction's measured response time exactly.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from repro.obs import phases

__all__ = ["NULL_RECORDER", "NullRecorder", "PhaseRecorder", "SpanEvent", "TxnEvent"]


class _NullSpan:
    """Context manager that does nothing; shared singleton."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """Recorder whose every hook is a no-op (tracing disabled)."""

    __slots__ = ()

    enabled = False

    def txn_begin(self, txn_id, node_id, now):
        pass

    def txn_end(self, txn_id, now, committed=True):
        pass

    def span(self, txn_id, phase):
        return _NULL_SPAN

    def interval(self, node_id, phase, start, end):
        pass

    def reset(self):
        pass


#: Shared process-wide null recorder.
NULL_RECORDER = NullRecorder()


class SpanEvent(NamedTuple):
    """One closed span (kept only when ``keep_spans`` is set)."""

    txn_id: int
    node_id: int
    phase: str
    start: float
    end: float
    depth: int


class TxnEvent(NamedTuple):
    """One finished transaction (kept only when ``keep_spans`` is set)."""

    txn_id: int
    node_id: int
    start: float
    end: float
    committed: bool


class _TxnRecord:
    __slots__ = ("txn_id", "node_id", "begin", "stack", "totals")

    def __init__(self, txn_id: int, node_id: int, begin: float):
        self.txn_id = txn_id
        self.node_id = node_id
        self.begin = begin
        # Stack entries are mutable [phase, segment_start, span_start].
        self.stack: List[list] = []
        self.totals: Dict[str, float] = {}


class _Span:
    """Context manager pushing/popping one phase on a transaction."""

    __slots__ = ("_recorder", "_txn_id", "_phase")

    def __init__(self, recorder: "PhaseRecorder", txn_id, phase: str):
        self._recorder = recorder
        self._txn_id = txn_id
        self._phase = phase

    def __enter__(self):
        self._recorder._push(self._txn_id, self._phase)
        return self

    def __exit__(self, exc_type, exc, tb):
        self._recorder._pop(self._txn_id, self._phase)
        # Return to the recorder's free list: a span is dead once
        # exited, and the hot paths open several spans per event.
        self._recorder._span_pool.append(self)
        return False


class PhaseRecorder:
    """Attribute simulated time to per-transaction phase spans.

    The recorder is observation-only: it reads the simulation clock but
    never schedules events, so enabling it cannot perturb the simulated
    metrics.  With ``keep_spans`` every closed span and transaction is
    additionally retained for trace export.
    """

    enabled = True

    def __init__(self, sim, keep_spans: bool = False):
        self.sim = sim
        self.keep_spans = keep_spans
        self._active: Dict[int, _TxnRecord] = {}
        # Exited _Span objects for reuse; bounded by the maximum number
        # of simultaneously open spans (a handful per active txn).
        self._span_pool: List[_Span] = []
        self.spans: List[SpanEvent] = []
        self.transactions: List[TxnEvent] = []
        # Aggregates over finished transactions since the last reset.
        self.txn_count = 0
        self.rt_seconds = 0.0
        self.phase_seconds: Dict[str, float] = {p: 0.0 for p in phases.PHASES}

    # -- transaction lifecycle -------------------------------------------

    def txn_begin(self, txn_id: int, node_id: int, now: float) -> None:
        self._active[txn_id] = _TxnRecord(txn_id, node_id, now)

    def txn_end(self, txn_id: int, now: float, committed: bool = True) -> None:
        record = self._active.pop(txn_id, None)
        if record is None:
            return
        totals = record.totals
        # Close any spans still open (abort paths unwinding through the
        # context managers close them; this is a safety net).
        while record.stack:
            phase, segment_start, span_start = record.stack.pop()
            totals[phase] = totals.get(phase, 0.0) + (now - segment_start)
            if self.keep_spans:
                self.spans.append(SpanEvent(
                    txn_id, record.node_id, phase, span_start, now,
                    len(record.stack),
                ))
        response_time = now - record.begin
        attributed = 0.0
        phase_seconds = self.phase_seconds
        for phase, seconds in totals.items():
            phase_seconds[phase] = phase_seconds.get(phase, 0.0) + seconds
            attributed += seconds
        phase_seconds[phases.OTHER] += response_time - attributed
        self.txn_count += 1
        self.rt_seconds += response_time
        if self.keep_spans:
            self.transactions.append(TxnEvent(
                txn_id, record.node_id, record.begin, now, committed
            ))

    # -- spans -----------------------------------------------------------

    def span(self, txn_id: Optional[int], phase: str) -> _Span:
        pool = self._span_pool
        if pool:
            span = pool.pop()
            span._txn_id = txn_id
            span._phase = phase
            return span
        return _Span(self, txn_id, phase)

    def interval(self, node_id: int, phase: str, start: float, end: float) -> None:
        """Record a node-scoped interval (e.g. a recovery phase).

        Kept only in the raw span list for trace export, keyed by a
        negative pseudo transaction id so it cannot collide with real
        transactions; it does not enter the response-time breakdown.
        """
        if self.keep_spans:
            self.spans.append(SpanEvent(-(node_id + 1), node_id, phase, start, end, 0))

    def _push(self, txn_id, phase: str) -> None:
        record = self._active.get(txn_id)
        if record is None:
            return
        now = self.sim.now
        stack = record.stack
        if stack:
            top = stack[-1]
            record.totals[top[0]] = (
                record.totals.get(top[0], 0.0) + (now - top[1])
            )
            top[1] = now
        stack.append([phase, now, now])

    def _pop(self, txn_id, phase: str) -> None:
        record = self._active.get(txn_id)
        if record is None or not record.stack:
            return
        top = record.stack[-1]
        if top[0] != phase:
            # Mismatched pop (transaction record replaced mid-span or a
            # hook bug); attribute nothing rather than corrupt the stack.
            return
        record.stack.pop()
        now = self.sim.now
        record.totals[phase] = record.totals.get(phase, 0.0) + (now - top[1])
        if record.stack:
            record.stack[-1][1] = now
        if self.keep_spans:
            self.spans.append(SpanEvent(
                txn_id, record.node_id, phase, top[2], now, len(record.stack)
            ))

    # -- aggregation -----------------------------------------------------

    def reset(self) -> None:
        """Drop aggregates at the warmup boundary.

        In-flight transactions keep their accumulated spans: they will
        finish during the measurement window and enter the response-time
        tally with their full arrival-to-commit time, so the breakdown
        must account for their pre-reset phases too.  Raw spans are kept
        as well -- a trace covers the whole run.
        """
        self.txn_count = 0
        self.rt_seconds = 0.0
        self.phase_seconds = {p: 0.0 for p in phases.PHASES}

    def breakdown(self) -> Dict[str, float]:
        """Mean seconds per phase per finished transaction.

        Keys are the canonical phases plus any regime-specific phases
        actually observed (e.g. ``rdma``): a run that recorded time in
        such a phase must report it, or the components would no longer
        sum to the mean response time.  Runs without extra phases keep
        the exact pre-existing key set.
        """
        order = phases.phase_order(self.phase_seconds)
        if self.txn_count == 0:
            return {p: 0.0 for p in order}
        count = self.txn_count
        return {p: self.phase_seconds.get(p, 0.0) / count for p in order}
