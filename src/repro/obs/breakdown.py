"""Per-run response-time decomposition."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

from repro.obs import phases

__all__ = ["ResponseTimeBreakdown", "format_breakdown"]


@dataclass(frozen=True)
class ResponseTimeBreakdown:
    """Mean seconds spent per phase per committed transaction.

    The components partition the measured mean response time: their sum
    equals the run's mean RT (the residual is explicit in ``other``).
    """

    components: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.components.values())

    def get(self, phase: str) -> float:
        return self.components.get(phase, 0.0)

    def share(self, phase: str) -> float:
        """Fraction of the total response time spent in ``phase``."""
        total = self.total
        return self.components.get(phase, 0.0) / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return dict(self.components)

    def table(self) -> str:
        """Two-column phase/ms table, phases in canonical order."""
        lines = [f"{'phase':<14} {'ms':>9} {'share':>7}"]
        for phase in phases.phase_order(self.components):
            seconds = self.components.get(phase, 0.0)
            lines.append(
                f"{phase:<14} {seconds * 1e3:>9.3f} {self.share(phase):>6.1%}"
            )
        lines.append(f"{'total':<14} {self.total * 1e3:>9.3f}")
        return "\n".join(lines)


def format_breakdown(components: Optional[Mapping[str, float]]) -> str:
    """One-line ``phase=ms`` rendering of a breakdown dict (or '-')."""
    if not components:
        return "-"
    parts = []
    for phase in phases.phase_order(components):
        seconds = components.get(phase, 0.0)
        if seconds > 0.0:
            parts.append(f"{phase}={seconds * 1e3:.2f}ms")
    return " ".join(parts) if parts else "-"
