"""Named response-time phases.

Every phase is a plain string constant; :data:`PHASES` fixes the
canonical reporting order.  Attribution is *innermost wins*: when spans
nest (a page-transfer wait inside a buffer-miss fetch), the time is
charged to the innermost open span, so the per-phase components of a
transaction partition its response time without double counting.
"""

from __future__ import annotations

from typing import Iterable, Tuple

__all__ = [
    "BACKOFF",
    "COMM",
    "COMMIT",
    "CPU",
    "GEM",
    "INPUT_QUEUE",
    "IO",
    "LOCK_GLOBAL",
    "LOCK_LOCAL",
    "OTHER",
    "PAGE_TRANSFER",
    "PHASES",
    "RDMA",
    "phase_order",
]

#: Waiting in the node's input queue for a free MPL slot.
INPUT_QUEUE = "input_queue"
#: CPU service and CPU queuing of the transaction path (BOT/accesses).
CPU = "cpu"
#: Lock wait resolved at the local node (own GLA partition).
LOCK_LOCAL = "lock_local"
#: Lock wait at the global authority (GEM GLT or a remote GLA table).
LOCK_GLOBAL = "lock_global"
#: Buffer-miss I/O against permanent storage (incl. eviction writes
#: performed on the transaction's critical path).
IO = "io"
#: Synchronous GEM entry accesses of the GEM locking protocol.
GEM = "gem"
#: Synchronous one-sided RDMA verbs (remote CAS, pool reads/writes) of
#: the disaggregated-memory regime.  Deliberately *not* part of
#: :data:`PHASES`: the canonical tuple is frozen by golden snapshots,
#: so regime-specific phases join the reporting order dynamically via
#: :func:`phase_order` only in runs that actually recorded them.
RDMA = "rdma"
#: Message exchanges (send overhead, transmission, remote processing).
COMM = "comm"
#: Waiting for a page transfer from the owning node's buffer.
PAGE_TRANSFER = "page_transfer"
#: Commit processing: EOT CPU, log write, force writes, lock release.
COMMIT = "commit"
#: Abort handling: rollback, release and restart back-off delay.
BACKOFF = "backoff"
#: Residual response time not covered by any span (kept explicit so
#: the components always sum to the measured response time).
OTHER = "other"

#: Recovery intervals recorded by the fault manager (node-scoped, not
#: per-transaction; deliberately *not* part of :data:`PHASES`, which
#: drives the response-time breakdown tables).
RECOVERY_FAILOVER = "recovery_failover"
RECOVERY_REINTEGRATION = "recovery_reintegration"
RECOVERY_PHASES = (RECOVERY_FAILOVER, RECOVERY_REINTEGRATION)

#: Canonical reporting order of all phases.
PHASES = (
    INPUT_QUEUE,
    CPU,
    LOCK_LOCAL,
    LOCK_GLOBAL,
    IO,
    GEM,
    COMM,
    PAGE_TRANSFER,
    COMMIT,
    BACKOFF,
    OTHER,
)

_CANONICAL = frozenset(PHASES)


def phase_order(present: Iterable[str]) -> Tuple[str, ...]:
    """Reporting order for a run's observed phases.

    Returns :data:`PHASES` itself when ``present`` holds no phases
    beyond the canonical tuple (so GEM/PCL output is byte-identical to
    the pre-rdma format), otherwise the canonical order with the extra
    phases spliced in, sorted, right after :data:`GEM` -- where the
    regime-specific coupling cost belongs in the tables.
    """
    extras = sorted(set(present) - _CANONICAL)
    if not extras:
        return PHASES
    cut = PHASES.index(GEM) + 1
    return PHASES[:cut] + tuple(extras) + PHASES[cut:]
