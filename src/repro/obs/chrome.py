"""Chrome-trace-format export (``about://tracing`` / Perfetto).

Transactions and phase spans become "X" (complete) events with one
process per node and one thread per transaction; per-device utilization
samples from a :class:`~repro.system.monitor.TimeSeriesMonitor` become
"C" (counter) events.  Timestamps are microseconds of simulated time.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

__all__ = ["chrome_trace_events", "export_chrome_trace"]

_US = 1e6  # simulated seconds -> trace microseconds


def chrome_trace_events(recorder, monitor=None) -> List[Dict[str, Any]]:
    """Build the ``traceEvents`` list from a keep-spans recorder."""
    events: List[Dict[str, Any]] = []
    nodes = set()
    for txn in recorder.transactions:
        nodes.add(txn.node_id)
        events.append({
            "name": "txn",
            "cat": "transaction",
            "ph": "X",
            "ts": txn.start * _US,
            "dur": (txn.end - txn.start) * _US,
            "pid": txn.node_id,
            "tid": txn.txn_id,
            "args": {"txn_id": txn.txn_id, "committed": txn.committed},
        })
    for span in recorder.spans:
        nodes.add(span.node_id)
        events.append({
            "name": span.phase,
            "cat": "phase",
            "ph": "X",
            "ts": span.start * _US,
            "dur": (span.end - span.start) * _US,
            "pid": span.node_id,
            "tid": span.txn_id,
            "args": {"depth": span.depth},
        })
    for node_id in sorted(nodes):
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": node_id,
            "args": {"name": f"node {node_id}"},
        })
    if monitor is not None:
        for row in monitor.samples:
            timestamp = row["time"] * _US
            for key, value in row.items():
                if key.startswith("util."):
                    events.append({
                        "name": key[len("util."):],
                        "cat": "utilization",
                        "ph": "C",
                        "ts": timestamp,
                        "pid": 0,
                        "args": {"utilization": value},
                    })
    return events


def export_chrome_trace(recorder, path: str, monitor=None) -> None:
    """Write a Chrome-trace JSON object file to ``path``."""
    document = {
        "traceEvents": chrome_trace_events(recorder, monitor),
        "displayTimeUnit": "ms",
    }
    with open(path, "w") as fh:
        json.dump(document, fh, allow_nan=False)


def run_traced(config, trace_path: str, monitor_interval: Optional[float] = None):
    """Simulate ``config`` with full span tracing and export the trace.

    Returns ``(result, monitor)``; the Chrome-trace JSON is written to
    ``trace_path``.  The monitor samples per-device utilization over the
    whole run (including warmup, which the trace also covers).
    """
    from repro.system.cluster import Cluster
    from repro.system.monitor import TimeSeriesMonitor

    traced = config.replace(trace_spans=True, collect_breakdown=True)
    cluster = Cluster(traced)
    if monitor_interval is None:
        monitor_interval = max(traced.measure_time / 50.0, 0.01)
    monitor = TimeSeriesMonitor(cluster, interval=monitor_interval, devices=True)
    cluster.sim.run(until=traced.warmup_time)
    cluster.reset_stats()
    monitor.notify_reset()
    cluster.sim.run(until=traced.warmup_time + traced.measure_time)
    result = cluster.collect_results(traced.measure_time)
    export_chrome_trace(cluster.recorder, trace_path, monitor)
    return result, monitor
