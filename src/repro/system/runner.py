"""Run controller: warm-up, measurement and result collection.

Steady-state methodology: the system runs for ``config.warmup_time``
simulated seconds, all statistics are discarded, and measurement
proceeds for ``config.measure_time`` seconds.  Transactions in flight
at the warm-up boundary contribute their completion to the measured
interval, which is standard for open-model simulations.
"""

from __future__ import annotations

import time
from typing import List, Optional, TYPE_CHECKING

from repro.errors import UtilizationTargetError
from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.results import RunResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.parallel import SweepRunner

__all__ = [
    "run_simulation",
    "find_throughput_at_utilization",
    "UtilizationTargetError",
]


def run_simulation(config: SystemConfig) -> RunResult:
    """Build a cluster from ``config`` and run one warm-up+measure cycle."""
    # simlint: disable-next=DET002 -- measures host wall-clock cost of the run itself
    started = time.perf_counter()
    cluster = Cluster(config)
    cluster.sim.run(until=config.warmup_time)
    cluster.reset_stats()
    cluster.sim.run(until=config.warmup_time + config.measure_time)
    cluster.sanitize_finish()
    result = cluster.collect_results(config.measure_time)
    # simlint: disable-next=DET002 -- measures host wall-clock cost of the run itself
    result.wall_clock_seconds = time.perf_counter() - started
    return result


def find_throughput_at_utilization(
    config: SystemConfig,
    target_utilization: float = 0.80,
    tolerance: float = 0.02,
    max_iterations: int = 12,
    rate_bounds: Optional[tuple] = None,
    runner: Optional["SweepRunner"] = None,
    bracket_probes: int = 3,
) -> RunResult:
    """Binary-search the per-node arrival rate for a CPU utilization target.

    Reproduces the paper's Fig 4.6 methodology: "transaction rates per
    node for a CPU utilization of 80 %".  The *maximum* node CPU
    utilization is driven to the target so that unbalanced loosely
    coupled configurations saturate at the hottest node.

    With a :class:`~repro.system.parallel.SweepRunner`, the search
    opens with ``bracket_probes`` rate probes on a fixed grid inside
    ``rate_bounds``; the probes are independent, so they fan out over
    the runner's worker pool, and the bisection then starts from the
    tightest bracket they establish.  The probe schedule depends only
    on the arguments -- never on ``runner.jobs`` -- so parallel and
    serial searches simulate the same points and return identical
    results.

    Raises :class:`~repro.errors.UtilizationTargetError` when the
    search collapses onto a boundary of ``rate_bounds`` with every
    probe on the same side of the target: the target utilization is
    unreachable inside the bounds (previously the closest boundary
    miss was silently returned).
    """
    if not 0 < target_utilization < 1:
        raise ValueError("target_utilization must be in (0, 1)")
    orig_low, orig_high = rate_bounds or (10.0, 400.0)
    low, high = orig_low, orig_high
    best: Optional[RunResult] = None
    ever_above = ever_below = False
    iterations_left = max_iterations

    def consider(result: RunResult) -> None:
        nonlocal best, ever_above, ever_below
        utilization = result.cpu_utilization_max
        if utilization > target_utilization:
            ever_above = True
        else:
            ever_below = True
        if best is None or abs(utilization - target_utilization) < abs(
            best.cpu_utilization_max - target_utilization
        ):
            best = result

    if runner is not None and bracket_probes > 0 and max_iterations > 1:
        # Phase 1: parallel bracketing probes on a fixed interior grid.
        num_probes = min(bracket_probes, max_iterations - 1)
        rates = [
            low + (high - low) * (k + 1) / (num_probes + 1)
            for k in range(num_probes)
        ]
        probes: List[RunResult] = runner.map_raw(
            [config.replace(arrival_rate_per_node=r) for r in rates],
            label="bracket",
        )
        iterations_left -= num_probes
        for rate, result in zip(rates, probes):
            consider(result)
            # Utilization grows with the arrival rate: every probe
            # below the target raises the bracket floor, every probe
            # above it lowers the ceiling.
            if result.cpu_utilization_max > target_utilization:
                high = min(high, rate)
            else:
                low = max(low, rate)
        if best is not None and abs(
            best.cpu_utilization_max - target_utilization
        ) <= tolerance:
            return best

    simulate = (lambda c: runner.map_raw([c])[0]) if runner else run_simulation
    for _ in range(iterations_left):
        rate = (low + high) / 2.0
        result = simulate(config.replace(arrival_rate_per_node=rate))
        consider(result)
        utilization = result.cpu_utilization_max
        if abs(utilization - target_utilization) <= tolerance:
            break
        if utilization > target_utilization:
            high = rate
        else:
            low = rate
    assert best is not None
    miss = abs(best.cpu_utilization_max - target_utilization)
    bracket_collapsed = (high - low) <= 0.01 * (orig_high - orig_low)
    one_sided = ever_above != ever_below
    if miss > tolerance and bracket_collapsed and one_sided:
        side = "below" if ever_below else "above"
        raise UtilizationTargetError(
            f"target utilization {target_utilization:.0%} unreachable within "
            f"rate bounds ({orig_low:g}, {orig_high:g}) TPS: every probe was "
            f"{side} the target (closest: {best.cpu_utilization_max:.1%} at "
            f"{best.arrival_rate_per_node:g} TPS)",
            best=best,
        )
    return best
