"""Run controller: warm-up, measurement and result collection.

Steady-state methodology: the system runs for ``config.warmup_time``
simulated seconds, all statistics are discarded, and measurement
proceeds for ``config.measure_time`` seconds.  Transactions in flight
at the warm-up boundary contribute their completion to the measured
interval, which is standard for open-model simulations.
"""

from __future__ import annotations

from typing import Optional

from repro.system.cluster import Cluster
from repro.system.config import SystemConfig
from repro.system.results import RunResult

__all__ = ["run_simulation", "find_throughput_at_utilization"]


def run_simulation(config: SystemConfig) -> RunResult:
    """Build a cluster from ``config`` and run one warm-up+measure cycle."""
    cluster = Cluster(config)
    cluster.sim.run(until=config.warmup_time)
    cluster.reset_stats()
    cluster.sim.run(until=config.warmup_time + config.measure_time)
    return cluster.collect_results(config.measure_time)


def find_throughput_at_utilization(
    config: SystemConfig,
    target_utilization: float = 0.80,
    tolerance: float = 0.02,
    max_iterations: int = 12,
    rate_bounds: Optional[tuple] = None,
) -> RunResult:
    """Binary-search the per-node arrival rate for a CPU utilization target.

    Reproduces the paper's Fig 4.6 methodology: "transaction rates per
    node for a CPU utilization of 80 %".  The *maximum* node CPU
    utilization is driven to the target so that unbalanced loosely
    coupled configurations saturate at the hottest node.
    """
    if not 0 < target_utilization < 1:
        raise ValueError("target_utilization must be in (0, 1)")
    low, high = rate_bounds or (10.0, 400.0)
    best: Optional[RunResult] = None
    for _ in range(max_iterations):
        rate = (low + high) / 2.0
        result = run_simulation(config.replace(arrival_rate_per_node=rate))
        utilization = result.cpu_utilization_max
        if best is None or abs(utilization - target_utilization) < abs(
            best.cpu_utilization_max - target_utilization
        ):
            best = result
        if abs(utilization - target_utilization) <= tolerance:
            break
        if utilization > target_utilization:
            high = rate
        else:
            low = rate
    assert best is not None
    return best
