"""Simulation configuration with the paper's Table 4.1 defaults.

All times are in seconds, CPU capacities in MIPS (million instructions
per second), sizes in pages or bytes as noted.  The defaults reproduce
the debit-credit parameter settings of Table 4.1; every experiment in
section 4 is expressed as a small set of overrides on this structure.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Any, Optional

from repro.db.schema import StorageKind
from repro.devices.rdma import (
    DEFAULT_INSTRUCTIONS_PER_RDMA_OP,
    DEFAULT_RDMA_CAS_TIME,
    DEFAULT_RDMA_CHANNELS,
    DEFAULT_RDMA_LOCK_LEASE_SECONDS,
    DEFAULT_RDMA_PAGE_READ_TIME,
    DEFAULT_RDMA_PAGE_WRITE_TIME,
    DEFAULT_RDMA_READ_TIME,
    DEFAULT_RDMA_REREGISTRATION_SECONDS,
)
from repro.faults.config import FaultConfig

__all__ = [
    "Coupling",
    "RoutingStrategy",
    "UpdateStrategy",
    "DebitCreditConfig",
    "TraceWorkloadConfig",
    "SystemConfig",
]


class Coupling(str, enum.Enum):
    """Concurrency/coherency control scheme (section 3.2)."""

    #: Close coupling: global lock table in GEM.
    GEM = "gem"
    #: Loose coupling: primary copy locking over messages.
    PCL = "pcl"
    #: Memory disaggregation: lock state and NOFORCE page copies live
    #: in a passive remote memory pool reached by one-sided RDMA verbs.
    RDMA = "rdma"


class RoutingStrategy(str, enum.Enum):
    """Workload allocation (section 3.1)."""

    RANDOM = "random"
    AFFINITY = "affinity"


class UpdateStrategy(str, enum.Enum):
    """Update propagation between main memory and external storage."""

    FORCE = "force"
    NOFORCE = "noforce"


@dataclasses.dataclass
class DebitCreditConfig:
    """Debit-credit (TPC-A/B style) workload shape.

    The database scales with throughput as the TPC benchmarks require:
    all ``*_per_node`` record counts are multiplied by the number of
    nodes (each node contributes 100 TPS worth of database).
    """

    #: BRANCH records per node's 100-TPS database slice.
    branches_per_node: int = 100
    #: TELLER records per branch (10 x branches = 1000 tellers).
    tellers_per_branch: int = 10
    #: ACCOUNT records per branch (100.000 x 100 branches = 10 million).
    accounts_per_branch: int = 100_000
    #: Records per ACCOUNT page.
    account_blocking_factor: int = 10
    #: Records per HISTORY page.
    history_blocking_factor: int = 20
    #: Cluster TELLER records with their BRANCH record (section 3.1);
    #: reduces page accesses per transaction to three and locks to two.
    cluster_branch_teller: bool = True
    #: Probability that the ACCOUNT access goes to the selected branch.
    account_local_probability: float = 0.85
    #: Disks for the BRANCH/TELLER file, per node of scale.
    branch_teller_disks_per_node: int = 6
    #: Disks for the ACCOUNT file, per node of scale.
    account_disks_per_node: int = 8
    #: Disks for the HISTORY file, per node of scale.
    history_disks_per_node: int = 4
    #: Storage allocation of the hot BRANCH/TELLER file (experiments
    #: 4.4: DISK, GEM, or disk with volatile/non-volatile cache).
    branch_teller_storage: StorageKind = StorageKind.DISK
    #: Disk-cache capacity for BRANCH/TELLER when cached storage kinds
    #: are selected; 0 means "size to hold the whole file".
    branch_teller_cache_pages: int = 0
    #: Storage allocation of ACCOUNT and HISTORY (always disks in the
    #: paper's experiments; configurable for extensions).
    account_storage: StorageKind = StorageKind.DISK
    history_storage: StorageKind = StorageKind.DISK
    account_cache_pages: int = 0
    history_cache_pages: int = 0


@dataclasses.dataclass
class TraceWorkloadConfig:
    """Shape of the synthetic "real-life" trace (section 4.6 substitute).

    Defaults match every aggregate the paper reports about its trace;
    ``scale`` shrinks transaction count and page universe together for
    fast test/bench runs while preserving shape.
    """

    #: Number of transactions in the trace.
    num_transactions: int = 17_500
    #: Number of transaction types.
    num_types: int = 12
    #: Target mean page references per transaction (~1M refs total).
    mean_references: float = 57.0
    #: Reference count of the single largest (ad-hoc query) type.
    max_references: int = 11_000
    #: Number of database files.
    num_files: int = 13
    #: Distinct pages referenced across the trace.
    distinct_pages: int = 66_000
    #: Fraction of transactions that perform at least one update.
    update_txn_fraction: float = 0.20
    #: Fraction of page references that are writes.
    write_reference_fraction: float = 0.016
    #: Zipf skew of page popularity inside each file ("highly
    #: non-uniform" access distribution).
    zipf_theta: float = 1.1
    #: Disk budget: disks per file per node, distributed over the files
    #: proportionally to their reference share ("sufficient disks to
    #: avoid I/O bottlenecks", section 4.2).
    disks_per_file_per_node: int = 3
    #: Proportional shrink factor for fast runs (1.0 = full trace).
    scale: float = 1.0

    def scaled(self) -> "TraceWorkloadConfig":
        """Return a copy with counts multiplied by ``scale``."""
        if self.scale == 1.0:
            return self
        return dataclasses.replace(
            self,
            num_transactions=max(200, int(self.num_transactions * self.scale)),
            distinct_pages=max(2000, int(self.distinct_pages * self.scale)),
            max_references=max(100, int(self.max_references * self.scale)),
            scale=1.0,
        )


@dataclasses.dataclass
class SystemConfig:
    """Full parameter set of the simulation system (Table 4.1 defaults)."""

    # -- topology -----------------------------------------------------
    num_nodes: int = 1
    coupling: Coupling = Coupling.GEM
    routing: RoutingStrategy = RoutingStrategy.AFFINITY
    update_strategy: UpdateStrategy = UpdateStrategy.NOFORCE

    # -- workload -----------------------------------------------------
    #: Transactions per second offered per node (open arrivals).
    arrival_rate_per_node: float = 100.0
    #: Workload kind: "debit_credit", "trace" or "synthetic".
    workload: str = "debit_credit"
    debit_credit: DebitCreditConfig = dataclasses.field(default_factory=DebitCreditConfig)
    trace: TraceWorkloadConfig = dataclasses.field(default_factory=TraceWorkloadConfig)
    #: Workload spec for ``workload="synthetic"`` (a
    #: :class:`repro.workload.synthetic.SyntheticWorkloadSpec`).
    synthetic: Optional[object] = None

    # -- processing nodes ----------------------------------------------
    #: Maximum concurrently active transactions per node.
    mpl_per_node: int = 50
    cpus_per_node: int = 4
    mips_per_cpu: float = 10.0
    #: Main-memory database buffer per node, in pages.
    buffer_pages_per_node: int = 200

    # -- CPU path length (exponentially distributed, section 3.2) ------
    #: Instructions at begin-of-transaction.
    instructions_bot: float = 45_000.0
    #: Instructions per record access (4 accesses in debit-credit:
    #: 45k + 4*40k + 45k = 250k total, Table 4.1's path length).
    instructions_per_access: float = 40_000.0
    #: Instructions at end-of-transaction (commit processing).
    instructions_eot: float = 45_000.0
    #: Trace transactions have ~57 accesses on average; the paper keeps
    #: overall CPU characteristics (about 45 % utilization at 50 TPS per
    #: node, i.e. ~350k instructions/transaction), which implies a much
    #: smaller per-access path than debit-credit's record accesses.
    trace_instructions_bot: float = 30_000.0
    trace_instructions_per_access: float = 5_000.0
    trace_instructions_eot: float = 30_000.0

    # -- communication ---------------------------------------------------
    #: Instructions per send or receive of a short (100 B) message.
    instructions_msg_short: float = 5_000.0
    #: Instructions per send or receive of a long (4 KB) message.
    instructions_msg_long: float = 8_000.0
    short_message_bytes: int = 100
    long_message_bytes: int = 4_096
    #: Interconnection network bandwidth (bytes/second).
    network_bandwidth: float = 10e6

    # -- I/O -----------------------------------------------------------
    #: CPU overhead per page I/O to disk-based devices.
    instructions_per_io: float = 3_000.0
    #: CPU overhead to initiate a (synchronous) GEM page access.
    instructions_per_gem_io: float = 300.0
    #: Average disk time for database disks.
    disk_time_db: float = 0.015
    #: Average disk time for (sequential) log disks.
    disk_time_log: float = 0.005
    #: Average disk controller service time.
    controller_time: float = 0.001
    #: Average page transfer time between main memory and controller.
    transfer_time: float = 0.0004
    #: Log disks per node (log writes of co-located nodes never mix).
    log_disks_per_node: int = 1
    #: Keep the log files resident in GEM instead of on log disks --
    #: one of the GEM usage forms of section 2 ("keeping database or
    #: log files resident in semiconductor memory ... all disk accesses
    #: are avoided for the respective files").
    log_in_gem: bool = False

    # -- GEM -------------------------------------------------------------
    gem_servers: int = 1
    gem_page_access_time: float = 50e-6
    gem_entry_access_time: float = 2e-6
    #: Extra CPU instructions per GEM entry operation (lock table
    #: manipulation in main memory around the Compare&Swap).
    instructions_per_gem_entry_op: float = 100.0

    # -- RDMA memory pool (coupling="rdma") ---------------------------------
    #: Parallel one-sided channels into the pool (QP/NIC parallelism).
    rdma_channels: int = DEFAULT_RDMA_CHANNELS
    #: One-sided Compare&Swap round trip (lock word in the pool).
    rdma_cas_time: float = DEFAULT_RDMA_CAS_TIME
    #: One-sided small read (lock word / directory entry re-read).
    rdma_read_time: float = DEFAULT_RDMA_READ_TIME
    #: One-sided page read from the pool.
    rdma_page_read_time: float = DEFAULT_RDMA_PAGE_READ_TIME
    #: One-sided page write (commit install) into the pool.
    rdma_page_write_time: float = DEFAULT_RDMA_PAGE_WRITE_TIME
    #: CPU instructions to post a verb and poll its completion.
    instructions_per_rdma_op: float = DEFAULT_INSTRUCTIONS_PER_RDMA_OP
    #: Lease on pool-resident lock words: a crashed node's locks are
    #: reclaimable only after its lease expired (no central manager to
    #: revoke them synchronously).
    rdma_lock_lease_seconds: float = DEFAULT_RDMA_LOCK_LEASE_SECONDS
    #: Memory-region/queue-pair re-registration time a restarted node
    #: pays before it can issue one-sided verbs again.
    rdma_reregistration_seconds: float = DEFAULT_RDMA_REREGISTRATION_SECONDS

    # -- concurrency control -----------------------------------------------
    #: Concurrency-control protocol: "2pl" (the paper's locking scheme,
    #: GEM GLT or primary-copy depending on ``coupling``), "mvcc"
    #: (Hekaton-style multi-version optimistic CC) or "dgcc"
    #: (dependency-graph batched execution).  MVCC and DGCC run under
    #: both coupling regimes with regime-specific cost models.
    protocol: str = "2pl"
    #: DGCC epoch length in simulated seconds: arrivals batch for one
    #: epoch, then execute as conflict-free dependency-graph layers.
    dgcc_epoch_seconds: float = 0.005

    # -- protocol options --------------------------------------------------
    #: Read optimization for PCL (local read locks without GLA); the
    #: paper enables this for the trace experiments.
    pcl_read_optimization: bool = False
    #: Exchange NOFORCE page transfers through GEM instead of the
    #: network (extension discussed in the paper's conclusions).
    page_transfer_via_gem: bool = False
    #: GEM locking refinement (section 2): authorize a node's local
    #: lock manager to process lock requests on pages of sole interest
    #: without any GEM access; other nodes' requests revoke the
    #: authorization with a message exchange.  The paper evaluates the
    #: simple scheme (every request against the GLT); this is the
    #: sketched refinement as an ablation.
    gem_lock_authorizations: bool = False
    #: CPU instructions for processing a lock request/release in a
    #: local lock manager (0 = included in the path length, as the
    #: paper's 250k path length already covers normal CC processing).
    instructions_per_lock_op: float = 0.0

    # -- fault injection ---------------------------------------------------
    #: Crash/restart schedule and recovery cost model; None disables
    #: fault handling entirely (zero overhead, bit-identical results).
    faults: Optional[FaultConfig] = None

    # -- run control -------------------------------------------------------
    random_seed: int = 42
    #: Simulated warm-up period discarded from statistics.
    warmup_time: float = 3.0
    #: Simulated measurement period.
    measure_time: float = 12.0
    #: Collect the per-phase response-time breakdown (repro.obs).  The
    #: recorder is observation-only, so simulated metrics are identical
    #: with or without it.
    collect_breakdown: bool = False
    #: Additionally retain every span for Chrome-trace export (implies
    #: breakdown collection; memory grows with run length).
    trace_spans: bool = False
    #: Run under the simsan runtime sanitizer (repro.sanitize): the
    #: event loop checks clock monotonicity per event, recorder spans
    #: are balance-checked, and lock tables / resources / the RDMA pool
    #: are verified at the horizon.  Observation-only -- simulated
    #: results are bit-identical with it on -- but slower; also
    #: enabled by ``REPRO_SIMSAN=1`` in the environment.
    sanitize: bool = False

    def __post_init__(self) -> None:
        self.coupling = Coupling(self.coupling)
        self.routing = RoutingStrategy(self.routing)
        self.update_strategy = UpdateStrategy(self.update_strategy)
        if self.num_nodes < 1:
            raise ValueError("num_nodes must be >= 1")
        if self.arrival_rate_per_node <= 0:
            raise ValueError("arrival_rate_per_node must be positive")
        if self.workload not in ("debit_credit", "trace", "synthetic"):
            raise ValueError(f"unknown workload {self.workload!r}")
        if self.workload == "synthetic" and self.synthetic is None:
            raise ValueError("workload='synthetic' requires a synthetic spec")
        if self.protocol not in ("2pl", "mvcc", "dgcc"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.rdma_channels < 1:
            raise ValueError("rdma_channels must be >= 1")
        if self.rdma_lock_lease_seconds < 0:
            raise ValueError("rdma_lock_lease_seconds must be non-negative")
        if self.dgcc_epoch_seconds <= 0:
            raise ValueError("dgcc_epoch_seconds must be positive")
        if self.mpl_per_node < 1:
            raise ValueError("mpl_per_node must be >= 1")
        if self.buffer_pages_per_node < 10:
            raise ValueError("buffer_pages_per_node must be >= 10")
        if isinstance(self.faults, dict):
            self.faults = FaultConfig(**self.faults)
        if self.faults is not None:
            for crash in self.faults.crashes:
                if crash.node >= self.num_nodes:
                    raise ValueError(
                        f"crash node {crash.node} >= num_nodes {self.num_nodes}"
                    )

    @property
    def force(self) -> bool:
        return self.update_strategy is UpdateStrategy.FORCE

    @property
    def noforce(self) -> bool:
        return self.update_strategy is UpdateStrategy.NOFORCE

    @property
    def cpu_speed(self) -> float:
        """Instructions per second of one CPU."""
        return self.mips_per_cpu * 1e6

    @property
    def total_arrival_rate(self) -> float:
        return self.arrival_rate_per_node * self.num_nodes

    def replace(self, **overrides: Any) -> "SystemConfig":
        """Return a copy with the given fields overridden."""
        return dataclasses.replace(self, **overrides)

    def path_length(self, num_accesses: int) -> float:
        """Mean total instruction path for a transaction of given size."""
        return (
            self.instructions_bot
            + num_accesses * self.instructions_per_access
            + self.instructions_eot
        )
