"""Cluster assembly: wires the full simulation system together.

Construction order matters: shared devices (network, GEM, ledger)
first, then the database and its storage allocation, the processing
nodes, the concurrency/coherency protocol (which registers its message
handlers at the nodes), the transaction managers and finally the
workload SOURCE with its router.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.cc.deadlock import DeadlockDetector
from repro.cc.dgcc import DgccProtocol
from repro.cc.gem_locking import GemLockingProtocol
from repro.cc.mvcc import MvccProtocol
from repro.cc.pcl import PrimaryCopyProtocol
from repro.db.debitcredit import DebitCreditLayout
from repro.db.pages import PageId, VersionLedger
from repro.db.schema import Database, Partition, StorageKind
from repro.devices.disk import DiskArray
from repro.devices.disk_cache import DiskCache
from repro.devices.gem import GemDevice
from repro.devices.network import Network
from repro.devices.rdma import RdmaFabric
from repro.devices.storage import StorageDirectory
from repro.faults.manager import FaultManager
from repro.node.node import Node
from repro.node.rdma import RdmaLockingProtocol
from repro.node.transaction_manager import TransactionManager
from repro.obs.recorder import NULL_RECORDER, PhaseRecorder
from repro.sanitize import (
    SanitizedRecorder,
    SanitizedSimulator,
    SimSanitizer,
    sanitize_enabled,
)
from repro.routing.affinity import AffinityRouter
from repro.routing.failover import FailoverRouter
from repro.routing.random_router import RandomRouter
from repro.sim.engine import Simulator
from repro.sim.rng import StreamRegistry
from repro.system.config import Coupling, RoutingStrategy, SystemConfig
from repro.system.results import RunResult
from repro.workload.arrivals import Source
from repro.workload.transaction import Transaction
from repro.workload.debitcredit import DebitCreditGenerator

__all__ = ["Cluster"]


class Cluster:
    """A complete closely or loosely coupled database sharing system."""

    def __init__(self, config: SystemConfig) -> None:
        self.config = config
        #: The simsan runtime sanitizer, when enabled (observation-only;
        #: see repro.sanitize).  None keeps the fast event loop.
        self.sanitizer: Optional[SimSanitizer] = None
        if sanitize_enabled(config.sanitize):
            self.sanitizer = SimSanitizer()
            self.sim: Simulator = SanitizedSimulator(self.sanitizer.report)
        else:
            self.sim = Simulator()
        self.streams = StreamRegistry(config.random_seed)
        self.ledger = VersionLedger()
        self.detector = DeadlockDetector()
        #: FaultManager when fault injection is enabled, else None.
        #: Every fault hook in the hot path is gated on this being
        #: non-None, so a run without faults is bit-identical to one
        #: built before the fault subsystem existed.
        self.faults: Optional[FaultManager] = None
        if config.trace_spans:
            self.recorder = PhaseRecorder(self.sim, keep_spans=True)
        elif config.collect_breakdown:
            self.recorder = PhaseRecorder(self.sim)
        else:
            self.recorder = NULL_RECORDER
        if self.sanitizer is not None:
            self.recorder = SanitizedRecorder(
                self.recorder, self.sanitizer.report
            )
        self.network = Network(self.sim, config.network_bandwidth)
        self.gem = GemDevice(
            self.sim,
            servers=config.gem_servers,
            page_access_time=config.gem_page_access_time,
            entry_access_time=config.gem_entry_access_time,
        )
        #: RDMA fabric into the disaggregated memory pool, constructed
        #: only under ``coupling="rdma"`` (GEM/PCL runs stay
        #: bit-identical to builds without the third regime).
        self.rdma: Optional[RdmaFabric] = None
        if config.coupling is Coupling.RDMA:
            self.rdma = RdmaFabric(
                self.sim,
                channels=config.rdma_channels,
                cas_time=config.rdma_cas_time,
                read_time=config.rdma_read_time,
                page_read_time=config.rdma_page_read_time,
                page_write_time=config.rdma_page_write_time,
            )
        # -- workload-specific structure --------------------------------
        self.layout: Optional[DebitCreditLayout] = None
        self.trace_world = None  # set for trace workloads
        self.database: Database
        self._gla_map: Callable[[PageId], int]
        self.instruction_profile: tuple
        generator_factory = self._build_workload()
        # -- storage ------------------------------------------------------
        self.storage = StorageDirectory(
            self.sim,
            self.ledger,
            config.instructions_per_io,
            config.instructions_per_gem_io,
            log_gem=self.gem if config.log_in_gem else None,
        )
        self.disk_arrays: Dict[str, DiskArray] = {}
        for partition in self.database:
            self._allocate_partition(partition)
        self.log_disks: List[DiskArray] = [
            DiskArray(
                self.sim,
                f"log{n}",
                num_disks=config.log_disks_per_node,
                ledger=self.ledger,
                stream=self.streams.stream(f"logdisk-{n}"),
                disk_time=config.disk_time_log,
                controller_time=config.controller_time,
                transfer_time=config.transfer_time,
            )
            for n in range(config.num_nodes)
        ]
        self.storage.assign_log_disks(self.log_disks)
        # -- nodes ---------------------------------------------------------
        self.nodes: List[Node] = [
            Node(self.sim, node_id, self) for node_id in range(config.num_nodes)
        ]
        # -- protocol -------------------------------------------------------
        # The 2PL row of the protocol matrix keeps the paper's two
        # regime-specific implementations; MVCC and DGCC are single
        # implementations parameterized by the coupling's cost model.
        if config.protocol == "mvcc":
            self.protocol = MvccProtocol(self, self._gla_map)
        elif config.protocol == "dgcc":
            self.protocol = DgccProtocol(self, self._gla_map)
        elif config.coupling is Coupling.GEM:
            self.protocol = GemLockingProtocol(self)
        elif config.coupling is Coupling.RDMA:
            self.protocol = RdmaLockingProtocol(self)
        else:
            self.protocol = PrimaryCopyProtocol(self, self._gla_map)
        for node in self.nodes:
            node.protocol = self.protocol
            node.tm = TransactionManager(node)
        # -- workload source ---------------------------------------------------
        self.generator = generator_factory()
        self.router = self._build_router()
        self.source = Source(
            self.sim,
            self.generator,
            self.router,
            lambda node_id, txn: self.nodes[node_id].tm.submit(txn),
            config.total_arrival_rate,
            self.streams.stream("arrivals"),
        )
        # -- fault injection ---------------------------------------------------
        if config.faults is not None and config.faults.enabled:
            self.faults = FaultManager(self, config.faults)
            self.storage.faults = self.faults
            self.router = FailoverRouter(self.router, self)
            self.source.router = self.router
            self.faults.start()

    # -- construction helpers ----------------------------------------------

    def _build_workload(self) -> Callable:
        config = self.config
        if config.workload == "debit_credit":
            self.layout = DebitCreditLayout(config.debit_credit, config.num_nodes)
            self.database = self.layout.database
            self._gla_map = self.layout.gla_of_page
            self.instruction_profile = (
                config.instructions_bot,
                config.instructions_per_access,
                config.instructions_eot,
            )
            return lambda: DebitCreditGenerator(
                self.layout, self.streams.stream("debitcredit")
            )
        if config.workload == "trace":
            from repro.workload.traceworld import TraceWorld

            self.trace_world = TraceWorld(config, self.streams)
            self.database = self.trace_world.database
            self._gla_map = self.trace_world.gla_of_page
            self.instruction_profile = (
                config.trace_instructions_bot,
                config.trace_instructions_per_access,
                config.trace_instructions_eot,
            )
            return lambda: self.trace_world.make_generator()
        if config.workload == "synthetic":
            from repro.workload.synthetic import SyntheticGenerator

            spec = config.synthetic
            self.database = spec.build_database()
            num_nodes = config.num_nodes
            # Synthetic workloads default to a hashed GLA assignment;
            # affinity-coordinated assignments can be modelled by
            # giving the classes explicit affinity nodes and matching
            # partition layouts.
            self._gla_map = lambda page: hash(page) % num_nodes
            self.instruction_profile = (
                config.instructions_bot,
                config.instructions_per_access,
                config.instructions_eot,
            )
            return lambda: SyntheticGenerator(
                spec, self.database, self.streams.stream("synthetic")
            )
        raise ValueError(f"unknown workload {config.workload!r}")

    def _build_router(self) -> Union[AffinityRouter, RandomRouter]:
        config = self.config
        if config.routing is RoutingStrategy.RANDOM:
            return RandomRouter(config.num_nodes)
        if config.workload == "debit_credit":
            return AffinityRouter.for_debit_credit(self.layout, config.num_nodes)
        if config.workload == "synthetic":
            spec = config.synthetic
            num_nodes = config.num_nodes

            def home_of(txn: Transaction) -> int:
                affinity = spec.classes[txn.type_id].affinity_node
                if affinity is None:
                    return txn.type_id % num_nodes
                return affinity % num_nodes

            return AffinityRouter(home_of, num_nodes)
        return AffinityRouter.from_routing_table(
            self.trace_world.routing_table, config.num_nodes
        )

    def _allocate_partition(self, partition: Partition) -> None:
        config = self.config
        if partition.storage is StorageKind.GEM:
            self.storage.assign(partition.index, self.gem)
            return
        cache = None
        if partition.storage in (
            StorageKind.DISK_VOLATILE_CACHE,
            StorageKind.DISK_NONVOLATILE_CACHE,
        ):
            capacity = partition.cache_pages or partition.num_pages or 1000
            cache = DiskCache(
                capacity,
                nonvolatile=partition.storage is StorageKind.DISK_NONVOLATILE_CACHE,
            )
        array = DiskArray(
            self.sim,
            partition.name,
            num_disks=partition.disks,
            ledger=self.ledger,
            stream=self.streams.stream(f"disk-{partition.name}"),
            disk_time=config.disk_time_db,
            controller_time=config.controller_time,
            transfer_time=config.transfer_time,
            cache=cache,
            spread_accesses=partition.num_pages is None,
        )
        self.disk_arrays[partition.name] = array
        write_buffer = (
            self.gem
            if partition.storage is StorageKind.DISK_GEM_WRITE_BUFFER
            else None
        )
        self.storage.assign(partition.index, array, gem_write_buffer=write_buffer)

    # -- run control -------------------------------------------------------------

    def reset_stats(self) -> None:
        """Discard warm-up statistics on every component."""
        for node in self.nodes:
            node.reset_stats()
        for array in self.disk_arrays.values():
            array.reset_stats()
        for array in self.log_disks:
            array.reset_stats()
        self.gem.reset_stats()
        if self.rdma is not None:
            self.rdma.reset_stats()
        self.network.reset_stats()
        self.protocol.reset_stats()
        self.detector.deadlocks_detected = 0
        self.detector.victims.clear()
        self.source.generated = 0
        self.recorder.reset()

    # -- introspection ------------------------------------------------------------

    def device_channels(
        self,
    ) -> List[Tuple[str, Callable[[Optional[float]], float], int]]:
        """Monitorable devices as ``(name, busy_time_fn, capacity)``.

        ``busy_time_fn(now)`` returns accumulated busy server-seconds;
        windowed utilization is its delta over an interval divided by
        ``capacity * interval`` (used by the TimeSeriesMonitor).
        """
        channels = [
            (f"cpu{node.node_id}", node.cpu.busy_time, self.config.cpus_per_node)
            for node in self.nodes
        ]
        channels.append(("gem", self.gem.busy_time, self.config.gem_servers))
        if self.rdma is not None:
            channels.append(
                ("rdma", self.rdma.busy_time, self.config.rdma_channels)
            )
        channels.append(("network", self.network.busy_time, 1))
        for name in sorted(self.disk_arrays):
            array = self.disk_arrays[name]
            channels.append((f"disk.{name}", array.busy_time, len(array.disks)))
        for index, array in enumerate(self.log_disks):
            channels.append((f"log{index}", array.busy_time, len(array.disks)))
        return channels

    def blocked_transactions(self) -> int:
        """Transactions currently waiting inside the protocol
        (lock queues, validation waits, epoch barriers), cluster-wide."""
        return self.protocol.num_blocked()

    def sanitize_finish(self) -> None:
        """Run the sanitizer's horizon checks (no-op when disabled).

        Raises :class:`repro.sanitize.SanitizerError` with the full
        structured report when any invariant was violated.
        """
        if self.sanitizer is not None:
            self.sanitizer.finish(self)

    # -- results -----------------------------------------------------------------

    def collect_results(self, measure_time: float) -> RunResult:
        config = self.config
        completed = sum(node.completions.count for node in self.nodes)
        rt_sum = sum(
            node.response_time.mean * node.response_time.count for node in self.nodes
        )
        mean_rt = rt_sum / completed if completed else 0.0
        # Per-access normalized response time (the paper's Fig 4.7 metric).
        per_access_n = sum(
            node.response_time_per_access.count for node in self.nodes
        )
        per_access_sum = sum(
            node.response_time_per_access.mean * node.response_time_per_access.count
            for node in self.nodes
        )
        mean_rt_per_access = per_access_sum / per_access_n if per_access_n else 0.0
        total_accesses = sum(
            sum(s.accesses for s in node.buffer.partition_stats.values())
            for node in self.nodes
        )
        mean_accesses = total_accesses / completed if completed else 0.0
        # -- buffer statistics aggregated per partition -------------------
        hit_ratios: Dict[str, float] = {}
        invalidations: Dict[str, float] = {}
        for partition in self.database:
            accesses = hits = invals = 0
            for node in self.nodes:
                stats = node.buffer.partition_stats.get(partition.index)
                if stats is None:
                    continue
                accesses += stats.accesses
                hits += stats.hits
                invals += stats.invalidations
            hit_ratios[partition.name] = hits / accesses if accesses else 0.0
            invalidations[partition.name] = invals / completed if completed else 0.0
        # -- locks ----------------------------------------------------------
        protocol = self.protocol
        if isinstance(protocol, PrimaryCopyProtocol):
            local_share = protocol.local_share()
            remote_locks = protocol.remote_lock_requests
            total_locks = protocol.local_lock_requests + remote_locks
            lock_wait = protocol.lock_wait_time.mean
            page_req = 0
            page_req_delay = 0.0
            supplied = protocol.pages_supplied_with_grant
        elif isinstance(protocol, GemLockingProtocol):
            local_share = 1.0
            remote_locks = 0
            total_locks = protocol.glt.requests
            lock_wait = protocol.lock_wait_time.mean
            page_req = protocol.page_requests
            page_req_delay = protocol.page_request_delay.mean
            supplied = 0
        else:
            stats = protocol.lock_stats()
            local_share = stats["local_share"]
            remote_locks = int(stats["remote_lock_requests"])
            total_locks = int(stats["lock_requests"])
            lock_wait = stats["mean_lock_wait"]
            page_req = int(stats["page_requests"])
            page_req_delay = stats["mean_page_request_delay"]
            supplied = int(stats["pages_supplied_with_grant"])
        per_txn = (1.0 / completed) if completed else 0.0
        return RunResult(
            num_nodes=config.num_nodes,
            coupling=config.coupling.value,
            routing=config.routing.value,
            update_strategy=config.update_strategy.value,
            workload=config.workload,
            buffer_pages_per_node=config.buffer_pages_per_node,
            arrival_rate_per_node=config.arrival_rate_per_node,
            measure_time=measure_time,
            completed=completed,
            mean_response_time=mean_rt,
            mean_response_time_artificial=mean_rt_per_access * mean_accesses,
            throughput_total=completed / measure_time if measure_time else 0.0,
            mean_accesses_per_txn=mean_accesses,
            cpu_utilization_per_node=[n.cpu_utilization() for n in self.nodes],
            gem_utilization=self.gem.utilization(),
            network_utilization=self.network.utilization(),
            log_disk_utilization_max=max(
                (a.max_disk_utilization() for a in self.log_disks), default=0.0
            ),
            disk_utilization_max=max(
                (a.max_disk_utilization() for a in self.disk_arrays.values()),
                default=0.0,
            ),
            hit_ratios=hit_ratios,
            invalidations_per_txn=invalidations,
            local_lock_share=local_share,
            lock_requests_per_txn=total_locks * per_txn,
            remote_lock_requests_per_txn=remote_locks * per_txn,
            mean_lock_wait_time=lock_wait,
            deadlocks=self.detector.deadlocks_detected,
            aborts=sum(node.aborts.count for node in self.nodes),
            page_requests_per_txn=page_req * per_txn,
            mean_page_request_delay=page_req_delay,
            pages_supplied_with_grant_per_txn=supplied * per_txn,
            messages_short_per_txn=sum(n.comm.sent_short for n in self.nodes) * per_txn,
            messages_long_per_txn=sum(n.comm.sent_long for n in self.nodes) * per_txn,
            events_processed=self.sim.events_processed,
            generated=self.source.generated,
            breakdown=(
                self.recorder.breakdown() if self.recorder.enabled else None
            ),
            # Availability metrics cover the WHOLE run, warm-up
            # included: a crash/recovery cycle may straddle the
            # measurement boundary, so they are deliberately not reset
            # by reset_stats().
            crashes=self.faults.crashes if self.faults else 0,
            aborted_by_crash=self.faults.aborted_by_crash if self.faults else 0,
            arrivals_redirected=(
                self.faults.redirected_arrivals if self.faults else 0
            ),
            mean_failover_seconds=(
                self.faults.mean_failover_time() if self.faults else 0.0
            ),
            mean_reintegration_seconds=(
                self.faults.mean_reintegration_time() if self.faults else 0.0
            ),
            total_down_seconds=(
                self.faults.total_down_time() if self.faults else 0.0
            ),
        )
