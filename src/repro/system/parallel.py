"""Parallel multi-seed experiment execution.

The experiment drivers used to run every ``(config, seed)`` point
serially in one process.  This module supplies the scaffolding that
all sweeps now run on:

* :class:`SweepRunner` -- fans batches of configurations out over a
  ``concurrent.futures.ProcessPoolExecutor`` (``jobs`` worker
  processes) and replicates each point over ``seeds`` independent
  random seeds.
* :class:`ReplicatedResult` -- the aggregate of one point's
  replicates: delegates attribute access to the first replicate (so
  single-seed behaviour is unchanged) and exposes mean / stddev /
  95 % confidence intervals via :meth:`ReplicatedResult.stat`.
* :class:`ResultCache` -- a content-addressed JSON store keyed on a
  stable hash of the configuration, the seed and the code version, so
  re-running a sweep only simulates changed points.

Determinism: per-replicate seeds are a pure SHA-256 function of
``(config.random_seed, replicate_index)`` and results are collected by
submission index, never by completion order -- a sweep produces
bit-identical results whether it runs serially, with ``jobs=8``, or
partially from cache.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import json
import math
import os
import sys
import time
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.sim.rng import replicate_seed
from repro.system.config import SystemConfig
from repro.system.results import RunResult
from repro.system.runner import run_simulation

__all__ = [
    "CODE_VERSION",
    "ReplicateStats",
    "ReplicatedResult",
    "ResultCache",
    "SweepRunner",
    "config_cache_key",
]

#: Version tag of the simulation semantics.  Bump whenever a change
#: alters what a given ``(config, seed)`` simulates, so stale cache
#: entries are never reused across semantic changes.
CODE_VERSION = "2026.08-4"

#: Default location of the result cache, relative to the working
#: directory (see results/README.md for the layout).
DEFAULT_CACHE_DIR = os.path.join("results", ".simcache")

#: Two-sided 95 % Student-t critical values by degrees of freedom
#: (replicates - 1); the normal quantile 1.96 is used beyond 30.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
    19: 2.093, 20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064,
    25: 2.060, 26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}


def t_critical_95(n: int) -> float:
    """Two-sided 95 % t quantile for ``n`` samples (``n - 1`` df)."""
    if n < 2:
        return float("nan")
    return _T95.get(n - 1, 1.96)


@dataclasses.dataclass(frozen=True)
class ReplicateStats:
    """Mean / spread of one metric over a point's replicates."""

    mean: float
    stddev: float
    #: Half-width of the 95 % confidence interval of the mean (0.0 for
    #: a single replicate -- no interval exists).
    ci95: float
    n: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "ReplicateStats":
        n = len(samples)
        if n == 0:
            raise ValueError("no samples")
        mean = sum(samples) / n
        if n == 1:
            return cls(mean=mean, stddev=0.0, ci95=0.0, n=1)
        var = sum((x - mean) ** 2 for x in samples) / (n - 1)
        stddev = math.sqrt(var)
        ci95 = t_critical_95(n) * stddev / math.sqrt(n)
        return cls(mean=mean, stddev=stddev, ci95=ci95, n=n)

    def __str__(self) -> str:
        if self.n == 1:
            return f"{self.mean:.4g}"
        return f"{self.mean:.4g}±{self.ci95:.2g}"


class ReplicatedResult:
    """Results of one configuration point over one or more seeds.

    Attribute access falls through to the first replicate, so code
    written against :class:`RunResult` (metric lambdas, ``summary()``
    consumers) works unchanged; with a single seed this makes the
    aggregate behaviourally identical to the plain result.
    """

    def __init__(self, results: Sequence[RunResult], seeds: Sequence[int]) -> None:
        if not results:
            raise ValueError("at least one replicate required")
        if len(results) != len(seeds):
            raise ValueError("results and seeds must align")
        self.results: List[RunResult] = list(results)
        self.seeds: List[int] = list(seeds)

    @property
    def primary(self) -> RunResult:
        """The replicate with the base seed (replicate index 0)."""
        return self.results[0]

    @property
    def n_replicates(self) -> int:
        return len(self.results)

    def __getattr__(self, name: str) -> Any:
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(object.__getattribute__(self, "results")[0], name)

    def stat(self, metric: Callable[[RunResult], float]) -> ReplicateStats:
        """Aggregate ``metric`` over all replicates."""
        return ReplicateStats.from_samples([metric(r) for r in self.results])

    # -- the paper's headline metrics, replicated -----------------------

    @property
    def throughput_stats(self) -> ReplicateStats:
        return self.stat(lambda r: r.throughput_total)

    @property
    def response_time_stats(self) -> ReplicateStats:
        """Mean response time in milliseconds."""
        return self.stat(lambda r: r.response_time_ms)

    @property
    def utilization_stats(self) -> ReplicateStats:
        return self.stat(lambda r: r.cpu_utilization_max)

    @property
    def wall_clock_total(self) -> float:
        return sum(r.wall_clock_seconds for r in self.results)

    @property
    def events_total(self) -> int:
        return sum(r.events_processed for r in self.results)

    def summary(self) -> str:
        if self.n_replicates == 1:
            return self.primary.summary()
        rt = self.response_time_stats
        x = self.throughput_stats
        cpu = self.utilization_stats
        return (
            f"{self.primary.label()} [{self.n_replicates} seeds]: "
            f"RT={rt.mean:.1f}±{rt.ci95:.1f} ms, "
            f"X={x.mean:.0f}±{x.ci95:.0f} TPS, "
            f"CPUmax={cpu.mean:.0%}±{cpu.ci95:.0%}"
        )


def config_cache_key(config: SystemConfig, code_version: str = CODE_VERSION) -> str:
    """Content hash of a configuration (seed included) + code version.

    The configuration tree is pure dataclasses and str-enums, so its
    canonical sorted-key JSON is stable across processes and Python
    versions (``default=str`` covers the enums).
    """
    payload = {
        "code_version": code_version,
        "config": dataclasses.asdict(config),
    }
    canonical = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """Content-addressed store of :class:`RunResult` JSON records.

    Layout (see results/README.md): ``<directory>/<key[:2]>/<key>.json``
    where ``key = sha256(code_version + canonical config JSON)``.  The
    seed participates in the key through ``config.random_seed``.
    """

    def __init__(self, directory: str = DEFAULT_CACHE_DIR,
                 code_version: str = CODE_VERSION) -> None:
        self.directory = directory
        self.code_version = code_version
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> str:
        return os.path.join(self.directory, key[:2], f"{key}.json")

    def get(self, config: SystemConfig) -> Optional[RunResult]:
        key = config_cache_key(config, self.code_version)
        path = self._path(key)
        try:
            with open(path) as fh:
                record = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if record.get("code_version") != self.code_version:
            self.misses += 1
            return None
        self.hits += 1
        return RunResult.from_dict(record["result"])

    def put(self, config: SystemConfig, result: RunResult) -> None:
        key = config_cache_key(config, self.code_version)
        path = self._path(key)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        record = {
            "key": key,
            "code_version": self.code_version,
            "seed": config.random_seed,
            "label": result.label(),
            "result": result.as_dict(),
        }
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w") as fh:
            json.dump(record, fh, default=str)
        os.replace(tmp, path)  # atomic: concurrent writers can't corrupt

    def stats(self) -> str:
        return f"cache: {self.hits} hits, {self.misses} misses ({self.directory})"


def _simulate(config: SystemConfig) -> RunResult:
    """Worker entry point (module-level so it pickles)."""
    return run_simulation(config)


class SweepRunner:
    """Executes batches of configurations, replicated and in parallel.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs in-process -- no pool,
        no pickling, bit-identical results to the pre-parallel code.
    seeds:
        Replicates per configuration point.  Replicate ``k`` runs with
        ``replicate_seed(config.random_seed, k)``; seed 0 is the
        config's own seed.
    cache:
        Optional :class:`ResultCache`; cached points are not simulated.
    progress:
        Write ``[done/total]`` + ETA lines to stderr while a batch runs.

    Usable as a context manager; the worker pool is created lazily on
    the first parallel batch and reused across batches.
    """

    def __init__(self, jobs: int = 1, seeds: int = 1,
                 cache: Optional[ResultCache] = None,
                 progress: bool = False) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if seeds < 1:
            raise ValueError("seeds must be >= 1")
        self.jobs = jobs
        self.seeds = seeds
        self.cache = cache
        self.progress = progress
        self.simulations_run = 0
        self.simulations_cached = 0
        self._pool: Optional[concurrent.futures.ProcessPoolExecutor] = None

    # -- lifecycle -------------------------------------------------------

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self.jobs
            )
        return self._pool

    # -- execution -------------------------------------------------------

    def map_raw(self, configs: Sequence[SystemConfig],
                label: str = "") -> List[RunResult]:
        """Run each configuration exactly as given (no replication).

        Results are returned in input order regardless of completion
        order.  Cached points are served without simulating; fresh
        results are written back to the cache.
        """
        results: List[Optional[RunResult]] = [None] * len(configs)
        pending: List[Tuple[int, SystemConfig]] = []
        for index, config in enumerate(configs):
            cached = self.cache.get(config) if self.cache else None
            if cached is not None:
                results[index] = cached
                self.simulations_cached += 1
            else:
                pending.append((index, config))

        started = time.time()  # simlint: disable=DET002 -- host wall-clock ETA display, not simulated time
        done = 0

        def note_done() -> None:
            nonlocal done
            done += 1
            self.simulations_run += 1
            if self.progress:
                # simlint: disable-next=DET002 -- host wall-clock ETA display, not simulated time
                elapsed = time.time() - started
                eta = elapsed / done * (len(pending) - done)
                sys.stderr.write(
                    f"\r  [{label or 'sweep'} {done}/{len(pending)}"
                    f" sims, {len(configs) - len(pending)} cached]"
                    f" ETA {eta:.0f}s "
                )
                sys.stderr.flush()

        if pending:
            if self.jobs == 1:
                for index, config in pending:
                    results[index] = _simulate(config)
                    note_done()
            else:
                pool = self._ensure_pool()
                futures = {
                    pool.submit(_simulate, config): index
                    for index, config in pending
                }
                for future in concurrent.futures.as_completed(futures):
                    results[futures[future]] = future.result()
                    note_done()
            if self.cache:
                for index, config in pending:
                    self.cache.put(config, results[index])
            if self.progress:
                sys.stderr.write("\n")
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    def run_many(self, configs: Sequence[SystemConfig],
                 label: str = "") -> List[ReplicatedResult]:
        """Run every configuration with ``seeds`` replicates each.

        The whole ``len(configs) * seeds`` job grid is submitted as one
        batch, so replicates of different points fill the pool evenly.
        """
        jobs: List[SystemConfig] = []
        seed_grid: List[List[int]] = []
        for config in configs:
            seeds = [replicate_seed(config.random_seed, k)
                     for k in range(self.seeds)]
            seed_grid.append(seeds)
            jobs.extend(config.replace(random_seed=s) for s in seeds)
        flat = self.map_raw(jobs, label=label)
        out: List[ReplicatedResult] = []
        offset = 0
        for seeds in seed_grid:
            out.append(ReplicatedResult(flat[offset:offset + len(seeds)], seeds))
            offset += len(seeds)
        return out

    def run(self, config: SystemConfig, label: str = "") -> ReplicatedResult:
        """Run one configuration point (replicated)."""
        return self.run_many([config], label=label)[0]
