"""Result records of a simulation run.

A :class:`RunResult` captures the metrics the paper reports: mean
response time (the primary metric of the open model), throughput, CPU
and device utilizations, buffer hit ratios and invalidations, lock
behaviour (local shares, waits, deadlocks) and message counts.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.breakdown import ResponseTimeBreakdown

__all__ = ["RunResult"]


@dataclasses.dataclass
class RunResult:
    """Aggregated metrics of one measurement interval."""

    # -- configuration echo --------------------------------------------
    num_nodes: int
    coupling: str
    routing: str
    update_strategy: str
    workload: str
    buffer_pages_per_node: int
    arrival_rate_per_node: float

    # -- primary metrics --------------------------------------------------
    measure_time: float
    completed: int
    #: Mean transaction response time in seconds.
    mean_response_time: float
    #: Mean response time of an "artificial transaction performing the
    #: average number of database accesses" (the paper's trace metric).
    mean_response_time_artificial: float
    throughput_total: float
    mean_accesses_per_txn: float

    # -- utilizations ---------------------------------------------------------
    cpu_utilization_per_node: List[float]
    gem_utilization: float
    network_utilization: float
    log_disk_utilization_max: float
    disk_utilization_max: float

    # -- buffer behaviour --------------------------------------------------------
    #: Partition name -> aggregate hit ratio over all nodes.
    hit_ratios: Dict[str, float]
    #: Partition name -> buffer invalidations per completed transaction.
    invalidations_per_txn: Dict[str, float]

    # -- concurrency control ---------------------------------------------------
    #: Fraction of lock requests processed without messages (PCL; 1.0
    #: for GEM locking, whose cost is message-free by construction).
    local_lock_share: float
    lock_requests_per_txn: float
    remote_lock_requests_per_txn: float
    mean_lock_wait_time: float
    deadlocks: int
    aborts: int

    # -- coherency control -------------------------------------------------------
    page_requests_per_txn: float
    mean_page_request_delay: float
    pages_supplied_with_grant_per_txn: float

    # -- communication ---------------------------------------------------------------
    messages_short_per_txn: float
    messages_long_per_txn: float

    # -- bookkeeping ---------------------------------------------------------------
    events_processed: int = 0
    generated: int = 0
    #: Wall-clock seconds the simulation took (host-dependent; excluded
    #: from determinism comparisons and cache keys).
    wall_clock_seconds: float = 0.0

    # -- response-time decomposition ------------------------------------------
    #: Mean seconds per phase per committed transaction (repro.obs
    #: phase names); None when breakdown collection was off.  The
    #: components sum to ``mean_response_time`` (residual in "other").
    breakdown: Optional[Dict[str, float]] = None

    # -- availability (fault injection; all zero when faults are off) ---------
    #: Crash/recovery cycles injected over the whole run (warm-up
    #: included -- a recovery may straddle the measurement boundary).
    crashes: int = 0
    #: In-flight transactions killed by node crashes.
    aborted_by_crash: int = 0
    #: Arrivals redirected away from crashed nodes by the router.
    arrivals_redirected: int = 0
    #: Mean seconds from crash until the survivors regained full
    #: service (dead locks released, GLA reassigned, REDO complete).
    mean_failover_seconds: float = 0.0
    #: Mean seconds from node restart until full reintegration (GEM:
    #: restart CPU only; PCL: plus the GLA failback transfer).
    mean_reintegration_seconds: float = 0.0
    #: Total node-down seconds over the run.
    total_down_seconds: float = 0.0

    @property
    def throughput_per_node(self) -> float:
        return self.throughput_total / self.num_nodes if self.num_nodes else 0.0

    @property
    def cpu_utilization_avg(self) -> float:
        utils = self.cpu_utilization_per_node
        return sum(utils) / len(utils) if utils else 0.0

    @property
    def cpu_utilization_max(self) -> float:
        return max(self.cpu_utilization_per_node, default=0.0)

    @property
    def response_time_ms(self) -> float:
        return self.mean_response_time * 1000.0

    @property
    def messages_per_txn(self) -> float:
        return self.messages_short_per_txn + self.messages_long_per_txn

    @property
    def response_breakdown(self) -> Optional["ResponseTimeBreakdown"]:
        """The breakdown as a ResponseTimeBreakdown, or None."""
        if self.breakdown is None:
            return None
        from repro.obs.breakdown import ResponseTimeBreakdown

        return ResponseTimeBreakdown(dict(self.breakdown))

    def label(self) -> str:
        return (
            f"N={self.num_nodes} {self.coupling}/{self.routing}/"
            f"{self.update_strategy} buf={self.buffer_pages_per_node}"
        )

    def summary(self) -> str:
        return (
            f"{self.label()}: RT={self.response_time_ms:.1f} ms, "
            f"X={self.throughput_total:.0f} TPS, "
            f"CPU={self.cpu_utilization_avg:.0%} (max {self.cpu_utilization_max:.0%}), "
            f"local locks={self.local_lock_share:.0%}, "
            f"msgs/txn={self.messages_per_txn:.1f}"
        )

    def as_dict(self) -> Dict:
        data = dataclasses.asdict(self)
        data["throughput_per_node"] = self.throughput_per_node
        data["cpu_utilization_avg"] = self.cpu_utilization_avg
        data["cpu_utilization_max"] = self.cpu_utilization_max
        data["response_time_ms"] = self.response_time_ms
        data["messages_per_txn"] = self.messages_per_txn
        return data

    def deterministic_dict(self) -> Dict:
        """Simulation-determined fields only (no wall clock, no derived
        properties).  Two runs of the same config+seed must produce
        identical ``deterministic_dict()`` regardless of host, worker
        process or scheduling order."""
        data = dataclasses.asdict(self)
        data.pop("wall_clock_seconds", None)
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "RunResult":
        """Rebuild a result from :meth:`as_dict` output (cache loads).

        Ignores derived keys (``response_time_ms`` etc.) and unknown
        keys, so cache entries survive additive schema changes."""
        field_names = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in data.items() if k in field_names})
