"""System assembly: configuration, cluster construction, run control.

* :class:`~repro.system.config.SystemConfig` -- every knob of the
  simulation model, defaulted to the paper's Table 4.1 settings.
* :class:`~repro.system.cluster.Cluster` -- wires workload source,
  processing nodes, protocols and devices together.
* :func:`~repro.system.runner.run_simulation` -- warm-up + measurement
  run controller returning a :class:`~repro.system.results.RunResult`.
"""

from repro.system.config import (
    Coupling,
    DebitCreditConfig,
    RoutingStrategy,
    SystemConfig,
    UpdateStrategy,
)
from repro.system.parallel import (
    ReplicatedResult,
    ReplicateStats,
    ResultCache,
    SweepRunner,
)
from repro.system.results import RunResult
from repro.system.runner import run_simulation

__all__ = [
    "Coupling",
    "DebitCreditConfig",
    "ReplicatedResult",
    "ReplicateStats",
    "ResultCache",
    "RoutingStrategy",
    "RunResult",
    "SweepRunner",
    "SystemConfig",
    "UpdateStrategy",
    "run_simulation",
]
