"""Time-series monitoring of a running cluster.

Samples system state at a fixed simulated-time interval: instantaneous
throughput, response times of the window, per-node CPU utilization,
queue depths and device utilizations.  Useful for inspecting transient
behaviour (warm-up, saturation onset) that end-of-run averages hide.

Usage::

    cluster = Cluster(config)
    monitor = TimeSeriesMonitor(cluster, interval=0.5)
    cluster.sim.run(until=20.0)
    for row in monitor.samples:
        print(row["time"], row["throughput"], row["cpu_max"])
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Event
    from repro.system.cluster import Cluster

__all__ = ["TimeSeriesMonitor"]


class TimeSeriesMonitor:
    """Periodic sampler attached to a cluster."""

    def __init__(
        self, cluster: "Cluster", interval: float = 1.0, devices: bool = False
    ) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self.cluster = cluster
        self.interval = interval
        self.samples: List[Dict[str, Any]] = []
        self._last_completed = 0
        self._last_rt_sum = 0.0
        self._last_cpu_busy = [0.0] * len(cluster.nodes)
        #: With ``devices=True`` every sample additionally carries
        #: windowed per-device utilizations (``util.<name>`` columns,
        #: busy-time delta of the window over capacity x interval) and
        #: the number of lock-blocked transactions.
        self._channels = cluster.device_channels() if devices else []
        now = cluster.sim.now
        self._last_busy = {
            name: busy_fn(now) for name, busy_fn, _cap in self._channels
        }
        cluster.sim.process(self._run(), name="monitor")

    def _run(self) -> Generator["Event", Any, None]:
        sim = self.cluster.sim
        while True:
            yield sim.timeout(self.interval)
            self.samples.append(self._sample())

    def notify_reset(self) -> None:
        """Re-baseline the window counters after ``cluster.reset_stats()``.

        Call this when resetting mid-run (e.g. at the warm-up
        boundary); otherwise the next window would subtract the
        pre-reset totals from the zeroed counters and report negative
        throughput.  :meth:`_sample` also detects the counter
        regression on its own, so an un-notified reset degrades to one
        empty window rather than corrupt arithmetic.
        """
        self._last_completed = 0
        self._last_rt_sum = 0.0
        now = self.cluster.sim.now
        for name, busy_fn, _cap in self._channels:
            self._last_busy[name] = busy_fn(now)

    def _sample(self) -> Dict[str, Any]:
        cluster = self.cluster
        now = cluster.sim.now
        completed = sum(n.completions.count for n in cluster.nodes)
        rt_sum = sum(
            n.response_time.mean * n.response_time.count for n in cluster.nodes
        )
        if completed < self._last_completed:  # stats were reset mid-window
            self._last_completed = 0
            self._last_rt_sum = 0.0
        window_completed = completed - self._last_completed
        window_rt = rt_sum - self._last_rt_sum
        self._last_completed = completed
        self._last_rt_sum = rt_sum
        cpu_utils = [n.cpu.utilization() for n in cluster.nodes]
        row = {
            "time": now,
            "completed_total": completed,
            "throughput": window_completed / self.interval,
            "mean_response_time": (
                window_rt / window_completed if window_completed else 0.0
            ),
            "in_flight": sum(
                n.mpl.busy + n.mpl.queue_length for n in cluster.nodes
            ),
            "cpu_avg": sum(cpu_utils) / len(cpu_utils),
            "cpu_max": max(cpu_utils),
            "gem_utilization": cluster.gem.utilization(),
            "network_utilization": cluster.network.utilization(),
        }
        if self._channels:
            for name, busy_fn, capacity in self._channels:
                busy = busy_fn(now)
                # A reset without notify_reset makes the delta negative
                # (totals restarted); clamp instead of reporting garbage.
                delta = max(0.0, busy - self._last_busy[name])
                self._last_busy[name] = busy
                row[f"util.{name}"] = delta / (capacity * self.interval)
            row["blocked_txns"] = cluster.blocked_transactions()
        return row

    # -- export ----------------------------------------------------------

    def column(self, key: str) -> List[Any]:
        return [row[key] for row in self.samples]

    def to_csv(self) -> str:
        if not self.samples:
            return ""
        keys = list(self.samples[0])
        lines = [",".join(keys)]
        for row in self.samples:
            lines.append(",".join(f"{row[k]:.6g}" for k in keys))
        return "\n".join(lines)
