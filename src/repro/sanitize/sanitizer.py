"""The simsan runtime checks.

Four invariant families, mirroring the static RES/SIM rule catalog at
runtime (the linter proves the *code shape* is safe; the sanitizer
checks the *executed run* actually was):

* **monotonic sim time** -- the clock never moves backwards between
  processed events (:class:`SanitizedSimulator` runs the event loop
  step-by-step instead of the inlined fast loop, checking after every
  event).
* **balanced recorder spans** -- every span pushed on a transaction is
  popped in LIFO order before the transaction ends
  (:class:`SanitizedRecorder` shadows the span stack of whatever real
  recorder is installed, including the null one).
* **no leaked lock grants at the horizon** -- nobody holds and waits
  for the same page, and the blocked-transaction index agrees with the
  wait queues (the scale-smoke invariants, promoted into the library).
* **resource accounting** -- every resource keeps ``0 <= busy <=
  capacity`` and stays work-conserving (a non-empty wait queue with an
  idle unit is a lost grant); after a run to event-list exhaustion all
  units are back.  Under ``coupling="rdma"`` the pool residency map
  must never run *ahead* of the version ledger (a pool-resident
  version that was never committed is a torn install).

Violations are collected into a structured :class:`SanitizerReport`;
:meth:`SimSanitizer.finish` raises :class:`SanitizerError` carrying the
report so CI fails loudly with every violation listed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.sim.engine import Simulator

__all__ = [
    "SanitizedRecorder",
    "SanitizedSimulator",
    "SanitizerError",
    "SanitizerReport",
    "SimSanitizer",
    "Violation",
    "sanitize_enabled",
]

#: Environment variable that force-enables the sanitizer.
ENV_FLAG = "REPRO_SIMSAN"


def sanitize_enabled(config_flag: bool) -> bool:
    """Sanitizer on? ``SystemConfig.sanitize`` or ``REPRO_SIMSAN=1``."""
    return bool(config_flag) or os.environ.get(ENV_FLAG, "") == "1"


@dataclass(frozen=True)
class Violation:
    """One invariant violation: which check, where, and the evidence."""

    check: str
    where: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.where}: {self.detail}"


@dataclass
class SanitizerReport:
    """Structured result of a sanitized run."""

    violations: List[Violation] = field(default_factory=list)
    events_checked: int = 0
    spans_checked: int = 0
    resources_checked: int = 0
    lock_tables_checked: int = 0
    pool_pages_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def record(self, check: str, where: str, detail: str) -> None:
        self.violations.append(Violation(check, where, detail))

    def summary(self) -> str:
        head = (
            f"simsan: {len(self.violations)} violation(s); "
            f"{self.events_checked} events, {self.spans_checked} spans, "
            f"{self.resources_checked} resources, "
            f"{self.lock_tables_checked} lock tables, "
            f"{self.pool_pages_checked} pool pages checked"
        )
        lines = [head] + [f"  {v}" for v in self.violations]
        return "\n".join(lines)


class SanitizerError(AssertionError):
    """A sanitized run violated a simulator invariant."""

    def __init__(self, report: SanitizerReport) -> None:
        super().__init__(report.summary())
        self.report = report


class SanitizedSimulator(Simulator):
    """A :class:`Simulator` that checks the clock between events.

    ``run`` processes events through :meth:`Simulator.step` one at a
    time instead of the inlined fast loop.  The observable execution
    order is identical -- ``step`` pops the same global minimum the
    fast loop does -- so model results cannot differ; only wall-clock
    cost does (measured in docs/LINTING.md).
    """

    def __init__(self, report: SanitizerReport) -> None:
        super().__init__()
        self.report = report

    def run(self, until: Optional[float] = None) -> None:
        if until is not None and until < self.now:
            # Match the base class misuse error exactly.
            super().run(until)
            return
        report = self.report
        while True:
            next_time = self.peek()
            if next_time == float("inf"):
                break
            if until is not None and next_time > until:
                break
            before = self.now
            self.step()
            report.events_checked += 1
            if self.now < before:
                report.record(
                    "monotonic-time",
                    "simulator",
                    f"clock moved backwards: {before!r} -> {self.now!r}",
                )
        if until is not None:
            self.now = until


class _ShadowSpan:
    """Context manager pairing the shadow push/pop with the real span."""

    __slots__ = ("_recorder", "_inner", "_txn_id", "_phase")

    def __init__(
        self, recorder: "SanitizedRecorder", inner: Any, txn_id: Any, phase: str
    ) -> None:
        self._recorder = recorder
        self._inner = inner
        self._txn_id = txn_id
        self._phase = phase

    def __enter__(self) -> "_ShadowSpan":
        self._recorder._shadow_push(self._txn_id, self._phase)
        self._inner.__enter__()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self._inner.__exit__(exc_type, exc, tb)
        self._recorder._shadow_pop(self._txn_id, self._phase)
        return False


class SanitizedRecorder:
    """Wrap any recorder with an independent span-balance shadow stack.

    Forwards every hook to the wrapped recorder (which may be the
    null recorder), while keeping its own per-transaction stack of
    open phase names.  A pop that does not match the top of the stack,
    or a transaction that ends with spans still open, is a violation:
    both corrupt the response-time breakdown silently when they happen
    in an unsanitized run.
    """

    def __init__(self, inner: Any, report: SanitizerReport) -> None:
        self._inner = inner
        self._report = report
        self._stacks: Dict[Any, List[str]] = {}

    @property
    def enabled(self) -> bool:
        return self._inner.enabled

    # -- forwarded hooks with shadow tracking ---------------------------

    def txn_begin(self, txn_id: Any, node_id: int, now: float) -> None:
        self._stacks[txn_id] = []
        self._inner.txn_begin(txn_id, node_id, now)

    def txn_end(self, txn_id: Any, now: float, committed: bool = True) -> None:
        stack = self._stacks.pop(txn_id, None)
        if stack:
            self._report.record(
                "span-balance",
                f"txn {txn_id}",
                f"transaction ended with open span(s): {stack}",
            )
        self._inner.txn_end(txn_id, now, committed)

    def span(self, txn_id: Any, phase: str) -> _ShadowSpan:
        # simlint: disable-next=SIM002 -- the inner span is wrapped in a context manager, not entered
        return _ShadowSpan(self, self._inner.span(txn_id, phase), txn_id, phase)

    def interval(self, node_id: int, phase: str, start: float, end: float) -> None:
        if end < start:
            self._report.record(
                "span-balance",
                f"node {node_id}",
                f"interval {phase!r} ends before it starts "
                f"({start!r} -> {end!r})",
            )
        self._inner.interval(node_id, phase, start, end)

    def reset(self) -> None:
        self._inner.reset()

    def breakdown(self) -> Dict[str, float]:
        return self._inner.breakdown()

    # -- shadow stack ----------------------------------------------------

    def _shadow_push(self, txn_id: Any, phase: str) -> None:
        stack = self._stacks.get(txn_id)
        if stack is None:
            # Span on a transaction the recorder never saw begin (node
            # intervals use txn_id None): tracked under its own key so
            # balance is still checked.
            stack = self._stacks.setdefault(txn_id, [])
        stack.append(phase)
        self._report.spans_checked += 1

    def _shadow_pop(self, txn_id: Any, phase: str) -> None:
        stack = self._stacks.get(txn_id)
        if not stack:
            self._report.record(
                "span-balance",
                f"txn {txn_id}",
                f"span {phase!r} popped with no span open",
            )
            return
        top = stack.pop()
        if top != phase:
            self._report.record(
                "span-balance",
                f"txn {txn_id}",
                f"span {phase!r} popped while {top!r} is innermost",
            )


class SimSanitizer:
    """Owns the report and runs the horizon checks over a cluster."""

    def __init__(self) -> None:
        self.report = SanitizerReport()

    # -- horizon checks --------------------------------------------------

    def check_horizon(self, cluster: Any) -> None:
        """Run end-of-run invariant checks (no model mutation)."""
        drained = cluster.sim.peek() == float("inf")
        for name, resource in self._resources(cluster):
            self._check_resource(name, resource, drained)
        for name, table in self._lock_tables(cluster):
            self._check_lock_table(name, table)
        self._check_pool(cluster)

    def finish(self, cluster: Any) -> SanitizerReport:
        """Horizon checks, then raise if anything was violated."""
        self.check_horizon(cluster)
        if not self.report.ok:
            raise SanitizerError(self.report)
        return self.report

    # -- resource accounting --------------------------------------------

    @staticmethod
    def _resources(cluster: Any) -> List[Tuple[str, Any]]:
        out: List[Tuple[str, Any]] = []
        for node in cluster.nodes:
            out.append((f"node{node.node_id}.cpu", node.cpu.resource))
            out.append((f"node{node.node_id}.mpl", node.mpl))
        out.append(("gem", cluster.gem.server))
        out.append(("network", cluster.network.server))
        if cluster.rdma is not None:
            out.append(("rdma", cluster.rdma.channel))
        for name in sorted(cluster.disk_arrays):
            array = cluster.disk_arrays[name]
            out.append((f"disk.{name}.controllers", array.controllers))
            for index, disk in enumerate(array.disks):
                out.append((f"disk.{name}.{index}", disk))
        return out

    def _check_resource(self, name: str, resource: Any, drained: bool) -> None:
        report = self.report
        report.resources_checked += 1
        busy = resource.busy
        capacity = resource.capacity
        queued = resource.queue_length
        if not 0 <= busy <= capacity:
            report.record(
                "resource-accounting",
                name,
                f"busy count {busy} outside [0, {capacity}]",
            )
        if queued and busy < capacity:
            report.record(
                "resource-accounting",
                name,
                f"{queued} waiter(s) queued with only {busy}/{capacity} "
                "unit(s) busy (lost grant)",
            )
        if drained and (busy or queued):
            report.record(
                "resource-accounting",
                name,
                f"event list exhausted with {busy} unit(s) still busy "
                f"and {queued} waiter(s) queued (leaked unit)",
            )

    # -- lock tables ------------------------------------------------------

    @staticmethod
    def _lock_tables(cluster: Any) -> List[Tuple[str, Any]]:
        protocol = cluster.protocol
        if hasattr(protocol, "glt"):
            return [("glt", protocol.glt)]
        if hasattr(protocol, "tables"):
            return [
                (f"table[{index}]", table)
                for index, table in enumerate(protocol.tables)
            ]
        return []

    def _check_lock_table(self, name: str, table: Any) -> None:
        report = self.report
        report.lock_tables_checked += 1
        for page, entry in table._entries.items():
            holders = set(entry.holders)
            queued = {waiter.txn for waiter in entry.queue}
            overlap = holders & queued
            if overlap:
                report.record(
                    "lock-grants",
                    f"{name} page {page}",
                    f"txn(s) {sorted(overlap)} both hold and wait for "
                    "the same page",
                )
        for txn, page in table._blocked.items():
            entry = table.peek(page)
            if entry is None or not any(
                waiter.txn == txn for waiter in entry.queue
            ):
                report.record(
                    "lock-grants",
                    f"{name} page {page}",
                    f"blocked index says txn {txn} waits here but it is "
                    "not in the wait queue",
                )

    # -- RDMA pool vs ledger ----------------------------------------------

    def _check_pool(self, cluster: Any) -> None:
        helper = getattr(cluster.protocol, "rdma", None)
        if helper is None:
            helper = getattr(cluster.protocol, "_rdma", None)
        if helper is None or not hasattr(helper, "pool"):
            return
        report = self.report
        ledger = cluster.ledger
        for page, version in helper.pool.items():
            report.pool_pages_checked += 1
            committed = ledger.committed_version(page)
            if version > committed:
                report.record(
                    "pool-ledger",
                    f"pool page {page}",
                    f"pool holds version {version} but only {committed} "
                    "is committed (torn install)",
                )
