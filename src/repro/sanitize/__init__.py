"""simsan: opt-in runtime sanitizer for the simulation kernel.

Enabled with ``SystemConfig(sanitize=True)`` or ``REPRO_SIMSAN=1`` in
the environment.  Observation-only: the sanitizer never schedules
events, draws from streams or mutates model state, so a sanitized run
produces bit-identical results to an unsanitized one -- it just also
*checks* them.  See docs/LINTING.md for the check catalog and the
measured overhead.
"""

from repro.sanitize.sanitizer import (
    SanitizedRecorder,
    SanitizedSimulator,
    SanitizerError,
    SanitizerReport,
    SimSanitizer,
    Violation,
    sanitize_enabled,
)

__all__ = [
    "SanitizedRecorder",
    "SanitizedSimulator",
    "SanitizerError",
    "SanitizerReport",
    "SimSanitizer",
    "Violation",
    "sanitize_enabled",
]
