"""Event loop, events and processes for the simulation kernel.

The design follows the classic process-oriented simulation style: model
logic is written as Python generator functions that ``yield`` events.
The :class:`Simulator` owns a binary heap of ``(time, priority,
sequence, event)`` tuples so that execution order is fully
deterministic for a given model and seed.

The hot paths -- triggering an event, resuming a process, the run loop
-- are deliberately flat: scheduling is inlined into
:meth:`Event.succeed` and :class:`Timeout`, the generator ``send`` /
``throw`` methods are bound once per process, and the run loop touches
the heap through pre-bound module functions.

Same-timestamp scheduling bypasses the heap entirely.  Every zero-delay
schedule lands at the current clock value, so the engine keeps two FIFO
side lanes next to the heap -- ``_urgent`` for priority-:data:`URGENT`
entries (process bootstraps, interrupt relays) and ``_ready`` for
zero-delay :data:`NORMAL` entries (resource grants, mailbox deliveries).
Lane entries carry the same ``(time, priority, seq, event)`` tuples as
the heap, and the run loop picks the tuple-minimum of the lane heads
and the heap top, so the observable execution order is *identical* to
pushing everything through one heap: the global monotone ``seq``
remains the only same-time tie-break.  What changes is the cost -- one
heap pop brings the clock to ``t`` and the whole same-timestamp cohort
then drains from the lanes at deque speed.

:class:`_Callback` is the other structural event-count saver: a
pre-armed, ``__slots__``-based record whose dispatch function is
installed as its first callback at construction.  Resource slices
(grant -> hold -> release) schedule one ``_Callback`` at the slice end
instead of a grant event plus a timeout, halving both the heap traffic
and the generator resumes of the no-contention fast path (see
:meth:`repro.sim.resources.Resource.hold`).
"""

from __future__ import annotations

import gc
from collections import deque
from heapq import heappop, heappush
from typing import Any, Callable, Deque, Generator, Iterable, List, Optional

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupted",
    "Process",
    "SimulationError",
    "Simulator",
    "Timeout",
]

#: Priority used for ordinary events.
NORMAL = 1
#: Priority used for urgent events (processed before normal events at
#: the same timestamp), e.g. process bootstrap.
URGENT = 0


class SimulationError(Exception):
    """Raised for misuse of the simulation kernel itself."""


class Interrupted(Exception):
    """Raised inside a process when one of its waited-on events fails.

    The original cause is available as ``exc.cause``.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause


_PENDING = object()


def _discard(event: "Event") -> None:
    """Callback placeholder for waiters detached by an interrupt."""


class Event:
    """A one-shot occurrence that processes can wait for.

    An event starts *pending*, is *triggered* exactly once with either a
    value (:meth:`succeed`) or an exception (:meth:`fail`) and then
    notifies all registered callbacks when the simulator processes it.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        #: Callables invoked with this event once it has been processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True
        self._scheduled = False

    @property
    def triggered(self) -> bool:
        """True once the event has a value or exception attached."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have run (the event is fully done)."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value not yet available")
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError("event has already been triggered")
        if delay < 0:
            raise SimulationError("negative delay")
        # _ok is True from construction and a failed event counts as
        # triggered, so it cannot be stale here.
        self._value = value
        self._scheduled = True
        sim = self.sim
        sim._seq += 1
        if delay == 0.0:
            sim._ready.append((sim.now, NORMAL, sim._seq, self))
        else:
            heappush(sim._heap, (sim.now + delay, NORMAL, sim._seq, self))
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Trigger the event with an exception.

        Waiting processes observe the exception being raised at their
        ``yield`` statement.
        """
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._value is not _PENDING:
            raise SimulationError("event has already been triggered")
        if delay < 0:
            raise SimulationError("negative delay")
        self._ok = False
        self._value = exception
        self._scheduled = True
        sim = self.sim
        sim._seq += 1
        if delay == 0.0:
            sim._ready.append((sim.now, NORMAL, sim._seq, self))
        else:
            heappush(sim._heap, (sim.now + delay, NORMAL, sim._seq, self))
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "pending"
        if self.callbacks is None:
            state = "processed"
        elif self._value is not _PENDING:
            state = "triggered"
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires automatically after a fixed delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._scheduled = True
        self.delay = delay
        sim._seq += 1
        if delay == 0.0:
            sim._ready.append((sim.now, NORMAL, sim._seq, self))
        else:
            heappush(sim._heap, (sim.now + delay, NORMAL, sim._seq, self))


class _Callback(Event):
    """A pre-armed plumbing event that never goes through succeed/fail.

    The creator installs a module-level dispatch function as the first
    (and initially only) callback and parks whatever state the dispatch
    needs in ``data``.  A process may still wait on it -- its resume
    callback is appended behind the dispatch function, so the dispatch
    always runs first when the entry is popped.

    This is the record behind the coalesced resource slice: one
    ``_Callback`` at the slice-end timestamp replaces the grant event
    plus hold timeout of the event-per-step formulation (the dispatch
    releases the resource before the holder resumes, exactly where the
    ``finally: release()`` of the two-event path ran).  A contended
    slice parks the entry on the resource's wait queue with its
    ``duration``; the grant arms the slice-end timer directly instead
    of waking the holder just to start it.
    """

    __slots__ = ("data", "duration")

    data: Any
    duration: float


class Process(Event):
    """A running model process.

    Wraps a generator; each value the generator yields must be an
    :class:`Event`.  The process resumes when that event is processed,
    receiving the event's value at the ``yield`` (or the event's
    exception raised at the ``yield`` wrapped in :class:`Interrupted`
    for failed non-process events, or re-raised directly for failed
    child processes).

    A process is itself an event: it triggers with the generator's
    return value, or fails if the generator raises.
    """

    __slots__ = ("generator", "name", "_waiting_on", "_send", "_throw", "_resume_cb")

    def __init__(
        self,
        sim: "Simulator",
        generator: Generator[Event, Any, Any],
        name: str = "",
    ) -> None:
        if not hasattr(generator, "send"):
            raise SimulationError("Process requires a generator")
        self.sim = sim
        self.callbacks = []
        self._value = _PENDING
        self._ok = True
        self._scheduled = False
        self.generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        # Bound once: every resume uses these, and a bound-method lookup
        # per event is measurable at this call frequency.
        self._send = generator.send
        self._throw = generator.throw
        resume = self._resume
        self._resume_cb: Callable[[Event], None] = resume
        # Bootstrap: resume the generator at the current simulation time.
        bootstrap = Event.__new__(Event)
        bootstrap.sim = sim
        bootstrap.callbacks = [resume]
        bootstrap._value = None
        bootstrap._ok = True
        bootstrap._scheduled = True
        self._waiting_on: Optional[Event] = bootstrap
        sim._seq += 1
        sim._urgent.append((sim.now, URGENT, sim._seq, bootstrap))

    @property
    def is_alive(self) -> bool:
        return self._value is _PENDING

    def interrupt(self, cause: BaseException) -> bool:
        """Tear the process off whatever event it is waiting on.

        ``cause`` is raised inside the generator at its current
        ``yield``, exactly as if the awaited event had failed.  Cleanup
        handlers (``try``/``finally``, resource cancel-on-throw) run as
        usual, so model state stays consistent.

        Returns ``False`` (and does nothing) when the process has
        already finished.  Interrupting a process twice before the
        first interrupt is delivered is a no-op on the second call.
        """
        if self._value is not _PENDING:
            return False
        target = self._waiting_on
        if target is None:
            # Interrupt already pending (or process mid-resume, which
            # cannot happen from model code: the event loop is single
            # threaded and only the interrupt relay clears _waiting_on).
            return False
        if target.callbacks is not None:
            try:
                index = target.callbacks.index(self._resume_cb)
            except ValueError:
                pass
            else:
                # Keep a placeholder so a later failure of the
                # abandoned event is discarded instead of surfacing as
                # an unhandled simulation error.
                target.callbacks[index] = _discard
        self._waiting_on = None
        sim = self.sim
        relay = Event.__new__(Event)
        relay.sim = sim
        relay.callbacks = [self._resume_cb]
        relay._value = cause
        relay._ok = False
        relay._scheduled = True
        sim._seq += 1
        sim._urgent.append((sim.now, URGENT, sim._seq, relay))
        return True

    def _resume(self, event: Event) -> None:
        self._waiting_on = None
        try:
            if event._ok:
                target = self._send(event._value)
            else:
                target = self._throw(event._value)
        except StopIteration as stop:
            # Break the instance -> bound-method -> instance cycle so a
            # finished process is freed by reference counting alone (the
            # run loop suspends the cyclic collector, see ``run``).
            self._resume_cb = _discard
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                raise
            self._resume_cb = _discard
            self.fail(exc)
            return
        sim = self.sim
        # Duck-typed in place of ``isinstance(target, Event)``: the
        # attribute loads are needed anyway and the try block is free
        # on the success path (3.11 zero-cost exceptions).
        try:
            target_sim = target.sim
            callbacks = target.callbacks
        except AttributeError:
            # Tell the generator off; this surfaces as a process failure.
            try:
                self._throw(
                    SimulationError(
                        f"process {self.name!r} yielded a non-event: {target!r}"
                    )
                )
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as exc:
                self.fail(exc)
            return
        if target_sim is not sim:
            self.fail(SimulationError("yielded event belongs to another simulator"))
            return
        if callbacks is None:
            # Already done: resume immediately (at current time, urgent).
            relay = Event.__new__(Event)
            relay.sim = sim
            relay.callbacks = [self._resume_cb]
            relay._value = target._value
            relay._ok = target._ok
            relay._scheduled = True
            self._waiting_on = relay
            sim._seq += 1
            sim._urgent.append((sim.now, URGENT, sim._seq, relay))
        else:
            self._waiting_on = target
            callbacks.append(self._resume_cb)


class _Condition(Event):
    """Base for AllOf / AnyOf composite events."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events = list(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition spans multiple simulators")
        self._remaining = 0
        self._arm()

    def _arm(self) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Triggers when *all* component events have been processed.

    Succeeds with the list of component values; fails as soon as any
    component fails.
    """

    __slots__ = ()

    def _arm(self) -> None:
        pending = [ev for ev in self.events if not ev.processed]
        for ev in self.events:
            if ev.processed and not ev._ok:
                self.fail(ev._value)
                return
        self._remaining = len(pending)
        if not self._remaining:
            self.succeed([ev._value for ev in self.events])
            return
        for ev in pending:
            ev.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            self.fail(event._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([ev._value for ev in self.events])


class AnyOf(_Condition):
    """Triggers when the *first* component event is processed.

    Succeeds with ``(index, value)`` of the first component; fails if
    that component failed.
    """

    __slots__ = ()

    def _arm(self) -> None:
        for index, ev in enumerate(self.events):
            if ev.processed:
                if ev._ok:
                    self.succeed((index, ev._value))
                else:
                    self.fail(ev._value)
                return
        for index, ev in enumerate(self.events):
            ev.callbacks.append(self._make_callback(index))

    def _make_callback(self, index: int) -> Callable[[Event], None]:
        def on_child(event: Event) -> None:
            if self.triggered:
                return
            if event._ok:
                self.succeed((index, event._value))
            else:
                self.fail(event._value)

        return on_child


class Simulator:
    """The simulation clock and event loop."""

    def __init__(self) -> None:
        #: Current simulation time (seconds).  Read-mostly for model
        #: code; only the run loop advances it.
        self.now = 0.0
        #: Number of events executed so far (for diagnostics).
        self.events_processed = 0
        self._heap: List[Any] = []
        #: Same-timestamp fast lanes (see module docstring): FIFO
        #: deques of the same ``(time, priority, seq, event)`` tuples
        #: as the heap.  Every entry in them is at the current clock
        #: value -- zero-delay schedules only -- so append order is seq
        #: order and the lane heads compare against the heap top with
        #: plain tuple comparison.
        self._urgent: Deque[Any] = deque()
        self._ready: Deque[Any] = deque()
        self._seq = 0

    # -- event construction helpers ------------------------------------

    def event(self) -> Event:
        """Create a new, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        # Manual construction (Timeout.__init__ inlined): timeouts are
        # the most common event kind and the __init__ frame is pure
        # overhead at this call frequency.
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay!r}")
        event = Timeout.__new__(Timeout)
        event.sim = self
        event.callbacks = []
        event._value = value
        event._ok = True
        event._scheduled = True
        event.delay = delay
        self._seq += 1
        if delay == 0.0:
            self._ready.append((self.now, NORMAL, self._seq, event))
        else:
            heappush(self._heap, (self.now + delay, NORMAL, self._seq, event))
        return event

    def process(self, generator: Generator[Event, Any, Any], name: str = "") -> Process:
        """Spawn a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling -----------------------------------------------------

    def _schedule(self, event: Event, delay: float, priority: int = NORMAL) -> None:
        if event._scheduled:
            raise SimulationError("event already scheduled")
        event._scheduled = True
        self._seq += 1
        if delay == 0.0:
            lane = self._urgent if priority == URGENT else self._ready
            lane.append((self.now, priority, self._seq, event))
        else:
            heappush(self._heap, (self.now + delay, priority, self._seq, event))

    # -- running --------------------------------------------------------

    def _pop_next(self) -> Any:
        """Pop the globally next ``(time, priority, seq, event)`` entry.

        The lane heads and the heap top are all valid heap tuples; the
        global minimum is the next event.  ``_urgent`` entries are at
        the current time with priority :data:`URGENT`, so they can only
        lose to a heap entry by ``seq`` (a delayed URGENT schedule
        landing on this exact timestamp); ``_ready`` entries can only
        lose to heap URGENTs or an earlier-``seq`` NORMAL landing now.
        Raises ``IndexError`` when no event is scheduled at all.
        """
        urgent = self._urgent
        if urgent:
            heap = self._heap
            if heap and heap[0] < urgent[0]:
                return heappop(heap)
            return urgent.popleft()
        ready = self._ready
        if ready:
            heap = self._heap
            if heap and heap[0] < ready[0]:
                return heappop(heap)
            return ready.popleft()
        return heappop(self._heap)

    def step(self) -> None:
        """Process a single event."""
        _time, _prio, _seq, event = self._pop_next()
        self.now = _time
        callbacks = event.callbacks
        event.callbacks = None
        self.events_processed += 1
        for callback in callbacks:
            callback(event)
        if (
            not event._ok
            and not callbacks
            and not getattr(event._value, "unhandled_ok", False)
        ):
            # A failed event (or crashed process) nobody waited for:
            # surface the error rather than losing it silently.
            # Exceptions marking themselves ``unhandled_ok`` (a process
            # torn down by fault injection) are a clean termination.
            raise event._value
        return

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event list is exhausted or ``until`` is reached.

        When ``until`` is given the clock is advanced to exactly
        ``until`` even if the last event fires earlier.

        The loop body is :meth:`step` inlined, with the processed-event
        counter kept in a local (flushed on every exit path).  The lane
        checks come first: while a same-timestamp cohort is draining,
        the next event is almost always a deque head, and the single
        tuple comparison against the heap top replaces a full heap
        sift.  The horizon check lives in the heap-only branch -- lane
        entries are always at the current clock value, which the loop
        never advances past ``until``.

        The cyclic garbage collector is suspended for the duration of
        the loop (restored on every exit path): the event churn would
        otherwise trigger hundreds of generation-0 scans per simulated
        second, and the dominant cycle -- a finished process holding
        its own bound resume method -- is broken explicitly in
        :meth:`Process._resume`, so reference counting reclaims the
        plumbing as it completes.
        """
        if until is not None and until < self.now:
            raise SimulationError("cannot run into the past")
        gc_enabled = gc.isenabled()
        if gc_enabled:
            gc.disable()
        heap = self._heap
        urgent = self._urgent
        ready = self._ready
        pop = heappop
        processed = self.events_processed
        # Two copies of the loop so the horizon check costs nothing
        # when no ``until`` is given (and no ``is not None`` test per
        # event when it is).
        try:
            if until is None:
                while True:
                    if urgent:
                        entry = urgent[0]
                        if heap and heap[0] < entry:
                            entry = pop(heap)
                        else:
                            urgent.popleft()
                    elif ready:
                        entry = ready[0]
                        if heap and heap[0] < entry:
                            entry = pop(heap)
                        else:
                            ready.popleft()
                    elif heap:
                        entry = pop(heap)
                    else:
                        break
                    time_, _prio, _seq, event = entry
                    self.now = time_
                    callbacks = event.callbacks
                    event.callbacks = None
                    processed += 1
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not callbacks and not getattr(
                        event._value, "unhandled_ok", False
                    ):
                        raise event._value
            else:
                while True:
                    if urgent:
                        entry = urgent[0]
                        if heap and heap[0] < entry:
                            entry = pop(heap)
                        else:
                            urgent.popleft()
                    elif ready:
                        entry = ready[0]
                        if heap and heap[0] < entry:
                            entry = pop(heap)
                        else:
                            ready.popleft()
                    elif heap:
                        if heap[0][0] > until:
                            self.now = until
                            return
                        entry = pop(heap)
                    else:
                        break
                    time_, _prio, _seq, event = entry
                    self.now = time_
                    callbacks = event.callbacks
                    event.callbacks = None
                    processed += 1
                    for callback in callbacks:
                        callback(event)
                    if not event._ok and not callbacks and not getattr(
                        event._value, "unhandled_ok", False
                    ):
                        raise event._value
        finally:
            self.events_processed = processed
            if gc_enabled:
                gc.enable()
        if until is not None:
            self.now = until

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        if self._urgent or self._ready:
            return self.now
        return self._heap[0][0] if self._heap else float("inf")
