"""Queued resources and mailboxes.

:class:`Resource` models a multi-server FCFS service station (CPUs, a
disk, the GEM store, the network).  It is a counted semaphore with a
FIFO wait queue plus built-in statistics: time-weighted busy-server and
queue-length curves, waiting-time and service-count tallies, so that
device utilizations and queuing delays can be reported directly.

:class:`Store` is an unbounded FIFO mailbox used for message passing
between model components (e.g. the communication subsystem delivering
lock requests to a remote node's lock-manager process).
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Deque, Generator, Optional, Tuple

from repro.sim.engine import (
    NORMAL,
    _PENDING,
    Event,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.stats import Tally, TimeWeighted

__all__ = ["Resource", "Store"]


class Resource:
    """A multi-server FCFS resource.

    Usage from a process::

        yield resource.request()
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()

    or, equivalently, the :meth:`acquire` helper::

        yield from resource.acquire(service_time)
    """

    __slots__ = (
        "sim",
        "capacity",
        "name",
        "_busy",
        "_queue",
        "busy_stat",
        "queue_stat",
        "wait_time",
        "services",
    )

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "resource"
        self._busy = 0
        self._queue: Deque[Tuple[Event, float]] = deque()
        # Statistics.
        self.busy_stat = TimeWeighted(f"{self.name}.busy", now=sim.now)
        self.queue_stat = TimeWeighted(f"{self.name}.queue", now=sim.now)
        self.wait_time = Tally(f"{self.name}.wait")
        self.services = 0

    @property
    def busy(self) -> int:
        """Number of units currently held."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._queue)

    def request(self) -> Event:
        """Request one unit; the returned event fires when granted."""
        # Manual Event construction: this is the hottest allocation in
        # the model (one per CPU slice / IO), and skipping the __init__
        # frame is measurable.
        sim = self.sim
        event = Event.__new__(Event)
        event.sim = sim
        event.callbacks = []
        event._value = _PENDING
        event._ok = True
        event._scheduled = False
        busy = self._busy
        if busy < self.capacity and not self._queue:
            # Uncontended grant: ``_grant(event, waited=0.0)`` inlined
            # (same float operations, see the comment there) -- this is
            # the overwhelmingly common case and saves a call per
            # request.
            self._busy = busy = busy + 1
            now = sim.now
            stat = self.busy_stat
            stat._area += stat._value * (now - stat._last_time)
            stat._last_time = now
            stat._value = busy
            if busy > stat.max:
                stat.max = busy
            tally = self.wait_time
            tally.count = count = tally.count + 1
            delta = 0.0 - tally._mean
            tally._mean += delta / count
            tally._m2 += delta * (0.0 - tally._mean)
            if 0.0 < tally._min:
                tally._min = 0.0
            if 0.0 > tally._max:
                tally._max = 0.0
            if tally._samples is not None:
                tally._samples.append(0.0)
            self.services += 1
            event._value = self
            event._scheduled = True
            sim._seq += 1
            heappush(sim._heap, (now, NORMAL, sim._seq, event))
        else:
            now = sim.now
            queue = self._queue
            queue.append((event, now))
            # Inlined queue_stat.update(len(queue), now); at high
            # utilization most requests queue, so this is hot too.
            stat = self.queue_stat
            stat._area += stat._value * (now - stat._last_time)
            stat._last_time = now
            depth = len(queue)
            stat._value = depth
            if depth > stat.max:
                stat.max = depth
        return event

    def release(self) -> None:
        """Return one unit, granting it to the next waiter if any."""
        busy = self._busy
        if busy <= 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        self._busy = busy = busy - 1
        now = self.sim.now
        # Inlined busy_stat.update(busy, now); the simulation clock is
        # monotone, so the backwards-time guard cannot fire.
        stat = self.busy_stat
        stat._area += stat._value * (now - stat._last_time)
        stat._last_time = now
        stat._value = busy
        queue = self._queue
        if queue:
            event, enqueued_at = queue.popleft()
            # Inlined queue_stat.update (see request); the queue only
            # shrinks here, so the max check would never fire.
            qstat = self.queue_stat
            qstat._area += qstat._value * (now - qstat._last_time)
            qstat._last_time = now
            qstat._value = len(queue)
            self._grant(event, waited=now - enqueued_at)

    def cancel(self, event: Event) -> None:
        """Withdraw a pending :meth:`request`.

        A requester that dies while waiting (e.g. a transaction aborted
        as a deadlock victim) must cancel its request: otherwise a later
        ``release`` grants the unit to the dead event and the unit leaks
        forever.  If the grant already happened, the unit is returned.
        """
        if event.triggered:
            self.release()
            return
        for index, (queued, _enqueued_at) in enumerate(self._queue):
            if queued is event:
                del self._queue[index]
                self.queue_stat.update(len(self._queue), self.sim.now)
                return
        raise ValueError(f"cancel() of unknown request on {self.name!r}")

    def grab(self) -> Generator[Event, Any, None]:
        """Request a unit and wait for the grant, cancel-safe.

        Unlike a bare ``yield resource.request()``, an exception thrown
        into the generator while queued (deadlock abort, node crash)
        cancels the pending request, so a later release cannot grant
        the unit to a dead event and leak it.  The caller holds the
        unit on return and must pair this with ``release()`` in a
        ``finally`` block.
        """
        request = self.request()
        try:
            yield request
        except BaseException:
            self.cancel(request)
            raise

    def acquire(self, duration: float) -> Generator[Event, Any, None]:
        """Request a unit, hold it for ``duration``, release it.

        If an exception is thrown into the generator while it waits for
        the grant, the request is cancelled so the unit cannot leak.
        """
        # `grab` inlined: this is the hottest generator in the model
        # (every CPU slice and I/O goes through here) and the extra
        # delegation frame costs a measurable fraction of each resume.
        request = self.request()
        try:
            yield request
        except BaseException:
            self.cancel(request)
            raise
        try:
            # Manual Timeout construction (its __init__ inlined): one
            # hold-timer per acquire, so the frame is pure overhead.
            if duration < 0:
                raise SimulationError(f"negative timeout delay: {duration!r}")
            sim = self.sim
            timer = Timeout.__new__(Timeout)
            timer.sim = sim
            timer.callbacks = []
            timer._value = None
            timer._ok = True
            timer._scheduled = True
            timer.delay = duration
            sim._seq += 1
            heappush(sim._heap, (sim.now + duration, NORMAL, sim._seq, timer))
            yield timer
        finally:
            self.release()

    def busy_time(self, now: Optional[float] = None) -> float:
        """Accumulated busy server-seconds since the last reset."""
        now = self.sim.now if now is None else now
        return self.busy_stat.integral(now)

    def utilization(self, now: Optional[float] = None) -> float:
        """Time-average fraction of units busy since the last reset."""
        now = self.sim.now if now is None else now
        return self.busy_stat.time_average(now) / self.capacity

    def mean_queue_length(self, now: Optional[float] = None) -> float:
        now = self.sim.now if now is None else now
        return self.queue_stat.time_average(now)

    def reset_stats(self) -> None:
        """Discard accumulated statistics (end of warm-up)."""
        now = self.sim.now
        self.busy_stat.reset(now)
        self.queue_stat.reset(now)
        self.wait_time.reset()
        self.services = 0

    def _grant(self, event: Event, waited: float) -> None:
        busy = self._busy + 1
        self._busy = busy
        sim = self.sim
        now = sim.now
        # Inlined busy_stat.update(busy, now) and
        # wait_time.record(waited): identical float operations in the
        # same order, minus the per-call overhead (this runs once per
        # CPU slice / IO).  The clock is monotone, so update's
        # backwards-time guard cannot fire; _max starts at -inf so the
        # comparisons match Tally.record exactly.
        stat = self.busy_stat
        stat._area += stat._value * (now - stat._last_time)
        stat._last_time = now
        stat._value = busy
        if busy > stat.max:
            stat.max = busy
        tally = self.wait_time
        tally.count = count = tally.count + 1
        delta = waited - tally._mean
        tally._mean += delta / count
        tally._m2 += delta * (waited - tally._mean)
        if waited < tally._min:
            tally._min = waited
        if waited > tally._max:
            tally._max = waited
        if tally._samples is not None:
            tally._samples.append(waited)
        self.services += 1
        # Inlined event.succeed(self): the event is freshly created or
        # came off the wait queue, so it cannot be triggered yet.
        event._value = self
        event._scheduled = True
        sim._seq += 1
        heappush(sim._heap, (now, NORMAL, sim._seq, event))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Resource({self.name!r}, busy={self._busy}/{self.capacity}, "
            f"queued={len(self._queue)})"
        )


class Store:
    """An unbounded FIFO mailbox.

    ``put`` never blocks; ``get`` returns an event that fires with the
    next item (immediately if one is already buffered).  Items are
    delivered to getters in FIFO order on both sides.
    """

    __slots__ = ("sim", "name", "_items", "_getters", "size_stat", "puts")

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name or "store"
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.size_stat = TimeWeighted(f"{self.name}.size", now=sim.now)
        self.puts = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        self.puts += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)
            self.size_stat.update(len(self._items), self.sim.now)

    def get(self) -> Event:
        event = Event(self.sim)
        if self._items:
            item = self._items.popleft()
            self.size_stat.update(len(self._items), self.sim.now)
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def clear(self) -> int:
        """Drop all buffered items (crash teardown); returns the count."""
        dropped = len(self._items)
        if dropped:
            self._items.clear()
            self.size_stat.update(0, self.sim.now)
        return dropped

    def reset_stats(self) -> None:
        self.size_stat.reset(self.sim.now)
        self.puts = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Store({self.name!r}, items={len(self._items)}, waiting={len(self._getters)})"
