"""Queued resources and mailboxes.

:class:`Resource` models a multi-server FCFS service station (CPUs, a
disk, the GEM store, the network).  It is a counted semaphore with a
FIFO wait queue plus built-in statistics: time-weighted busy-server and
queue-length curves, waiting-time and service-count tallies, so that
device utilizations and queuing delays can be reported directly.

:class:`Store` is an unbounded FIFO mailbox used for message passing
between model components (e.g. the communication subsystem delivering
lock requests to a remote node's lock-manager process).
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Deque, Generator, Optional, Tuple

from repro.sim.engine import (
    NORMAL,
    _PENDING,
    Event,
    SimulationError,
    Simulator,
    _Callback,
)
from repro.sim.stats import Tally, TimeWeighted

__all__ = [
    "Resource",
    "Store",
    "held_chain",
    "held_chain_cancel",
    "hold_seq",
    "hold_seq_cancel",
]


def _end_hold(event: Event) -> None:
    """Dispatch function of a coalesced slice-end (:meth:`Resource.hold`).

    Runs as the entry's first callback when the slice-end timestamp is
    reached: returns the held unit (granting the next waiter, if any)
    *before* the holding process resumes -- exactly where the
    ``finally: release()`` of the event-per-step formulation ran.  A
    slice cancelled early (holder interrupted mid-hold) already
    released and cleared ``data``, making this a no-op.
    """
    resource = event.data
    if resource is not None:
        event.data = None
        resource.release()


class Resource:
    """A multi-server FCFS resource.

    Usage from a process::

        yield resource.request()
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()

    or, equivalently, the :meth:`acquire` helper::

        yield from resource.acquire(service_time)
    """

    __slots__ = (
        "sim",
        "capacity",
        "name",
        "_busy",
        "_queue",
        "busy_stat",
        "queue_stat",
        "wait_time",
        "services",
    )

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "resource"
        self._busy = 0
        self._queue: Deque[Tuple[Event, float]] = deque()
        # Statistics.
        self.busy_stat = TimeWeighted(f"{self.name}.busy", now=sim.now)
        self.queue_stat = TimeWeighted(f"{self.name}.queue", now=sim.now)
        self.wait_time = Tally(f"{self.name}.wait")
        self.services = 0

    @property
    def busy(self) -> int:
        """Number of units currently held."""
        return self._busy

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._queue)

    def request(self) -> Event:
        """Request one unit; the returned event fires when granted."""
        # Manual Event construction: this is the hottest allocation in
        # the model (one per CPU slice / IO), and skipping the __init__
        # frame is measurable.
        sim = self.sim
        event = Event.__new__(Event)
        event.sim = sim
        event.callbacks = []
        event._value = _PENDING
        event._ok = True
        event._scheduled = False
        busy = self._busy
        if busy < self.capacity and not self._queue:
            # Uncontended grant: ``_grant(event, waited=0.0)`` inlined
            # (same float operations, see the comment there) -- this is
            # the overwhelmingly common case and saves a call per
            # request.
            self._busy = busy = busy + 1
            now = sim.now
            stat = self.busy_stat
            stat._area += stat._value * (now - stat._last_time)
            stat._last_time = now
            stat._value = busy
            if busy > stat.max:
                stat.max = busy
            # Deferred zero-wait record (Tally._fold): the count stays
            # eager, the moments fold in before the next read/record.
            tally = self.wait_time
            tally.count += 1
            tally._zeros += 1
            if tally._samples is not None:
                tally._samples.append(0.0)
            self.services += 1
            event._value = self
            event._scheduled = True
            sim._seq += 1
            sim._ready.append((now, NORMAL, sim._seq, event))
        else:
            now = sim.now
            queue = self._queue
            queue.append((event, now))
            # Inlined queue_stat.update(len(queue), now); at high
            # utilization most requests queue, so this is hot too.
            stat = self.queue_stat
            stat._area += stat._value * (now - stat._last_time)
            stat._last_time = now
            depth = len(queue)
            stat._value = depth
            if depth > stat.max:
                stat.max = depth
        return event

    def release(self) -> None:
        """Return one unit, granting it to the next waiter if any."""
        busy = self._busy
        if busy <= 0:
            raise RuntimeError(f"release() on idle resource {self.name!r}")
        queue = self._queue
        if not queue:
            self._busy = busy = busy - 1
            now = self.sim.now
            # Inlined busy_stat.update(busy, now); the simulation clock
            # is monotone, so the backwards-time guard cannot fire.
            stat = self.busy_stat
            stat._area += stat._value * (now - stat._last_time)
            stat._last_time = now
            stat._value = busy
            return
        # Handoff fusion: the released unit goes straight to the queue
        # head, so the busy level never changes at this instant -- the
        # down-then-up busy_stat double update is skipped entirely
        # (deferring the time-weighted accrual to the next real level
        # change integrates the identical area, since the level is
        # constant in between, and the max cannot move).  The grant
        # accounting runs inline: wait tally, service count, then
        # either the slice-end timer of a coalesced hold/chain entry
        # or the grant event of a plain request.
        sim = self.sim
        now = sim.now
        event, enqueued_at = queue.popleft()
        # Inlined queue_stat.update (see request); the queue only
        # shrinks here, so the max check would never fire.
        qstat = self.queue_stat
        qstat._area += qstat._value * (now - qstat._last_time)
        qstat._last_time = now
        qstat._value = len(queue)
        waited = now - enqueued_at
        # Inlined wait_time.record(waited), folding any deferred
        # zero-wait observations first (see Tally._fold).
        tally = self.wait_time
        if tally._zeros:
            tally._fold()
        tally.count = count = tally.count + 1
        delta = waited - tally._mean
        tally._mean += delta / count
        tally._m2 += delta * (waited - tally._mean)
        if waited < tally._min:
            tally._min = waited
        if waited > tally._max:
            tally._max = waited
        if tally._samples is not None:
            tally._samples.append(waited)
        self.services += 1
        if type(event) is _Callback:
            # Coalesced hold / chain leg: arm the slice-end timer
            # directly instead of waking the holder just to start it.
            data = event.data
            if type(data) is _ChainState:
                # A held_chain leg: advance the waiting stage to its
                # held twin (OUTER_QUEUED -> OUTER_HELD, INNER_QUEUED
                # -> INNER_HELD, deliberately adjacent codes) so a
                # cancel releases instead of trying to unqueue.
                data.stage += 1
            elif type(data) is _SeqState:
                # A hold_seq leg: the chain now holds this resource.
                data.holding = self
            event._scheduled = True
            duration = event.duration
            sim._seq += 1
            if duration:
                heappush(sim._heap, (now + duration, NORMAL, sim._seq, event))
            else:
                sim._ready.append((now, NORMAL, sim._seq, event))
        else:
            # Inlined event.succeed(self): the event came off the wait
            # queue, so it cannot be triggered yet.
            event._value = self
            event._scheduled = True
            sim._seq += 1
            sim._ready.append((now, NORMAL, sim._seq, event))

    def cancel(self, event: Event) -> None:
        """Withdraw a pending :meth:`request`.

        A requester that dies while waiting (e.g. a transaction aborted
        as a deadlock victim) must cancel its request: otherwise a later
        ``release`` grants the unit to the dead event and the unit leaks
        forever.  If the grant already happened, the unit is returned.
        """
        if event.triggered:
            self.release()
            return
        for index, (queued, _enqueued_at) in enumerate(self._queue):
            if queued is event:
                del self._queue[index]
                self.queue_stat.update(len(self._queue), self.sim.now)
                return
        raise ValueError(f"cancel() of unknown request on {self.name!r}")

    def grab(self) -> Generator[Event, Any, None]:
        """Request a unit and wait for the grant, cancel-safe.

        Unlike a bare ``yield resource.request()``, an exception thrown
        into the generator while queued (deadlock abort, node crash)
        cancels the pending request, so a later release cannot grant
        the unit to a dead event and leak it.  The caller holds the
        unit on return and must pair this with ``release()`` in a
        ``finally`` block.
        """
        # simlint: disable-next=RES002 -- grab() transfers the held unit to its caller by contract
        request = self.request()
        try:
            yield request
        except BaseException:
            self.cancel(request)
            raise

    def hold(self, duration: float) -> Event:
        """Coalesced slice: one scheduled entry for grant *and* end.

        When a unit is free and nobody queues ahead, the grant happens
        immediately (same statistics as an uncontended :meth:`request`,
        ``waited = 0.0``) and a single :class:`~repro.sim.engine._Callback`
        entry is scheduled at ``now + duration`` whose dispatch releases
        the unit before the holder resumes.  When the resource is
        contended, the entry joins the FIFO wait queue like a request
        would -- but the grant (in :meth:`release`) arms the slice-end
        timer directly instead of waking the holder just so it can
        start a timeout.  Either way the holder suspends exactly
        once per slice, on the slice-end entry, and the grant event of
        the event-per-step formulation never exists.

        The caller *must* guard the ``yield`` with :meth:`hold_cancel`
        so an interrupt thrown mid-wait or mid-hold returns the unit::

            entry = resource.hold(duration)
            try:
                yield entry
            except BaseException:
                resource.hold_cancel(entry)
                raise
        """
        if duration < 0:
            raise SimulationError(f"negative timeout delay: {duration!r}")
        sim = self.sim
        entry = _Callback.__new__(_Callback)
        entry.sim = sim
        entry.callbacks = [_end_hold]
        entry._value = None
        entry._ok = True
        entry.data = self
        busy = self._busy
        if busy < self.capacity and not self._queue:
            # Inlined uncontended grant (same float operations as the
            # request() fast path: busy_stat.update(busy+1, now) and
            # wait_time.record(0.0)).
            self._busy = busy = busy + 1
            now = sim.now
            stat = self.busy_stat
            stat._area += stat._value * (now - stat._last_time)
            stat._last_time = now
            stat._value = busy
            if busy > stat.max:
                stat.max = busy
            # Deferred zero-wait record (Tally._fold): the count stays
            # eager, the moments fold in before the next read/record.
            tally = self.wait_time
            tally.count += 1
            tally._zeros += 1
            if tally._samples is not None:
                tally._samples.append(0.0)
            self.services += 1
            entry._scheduled = True
            sim._seq += 1
            if duration:
                heappush(sim._heap, (now + duration, NORMAL, sim._seq, entry))
            else:
                sim._ready.append((now, NORMAL, sim._seq, entry))
        else:
            # Contended: park the entry on the wait queue; ``duration``
            # rides along for _grant_hold.  ``_scheduled`` doubles as
            # the waiting/armed discriminator for hold_cancel.
            entry._scheduled = False
            entry.duration = duration
            now = sim.now
            queue = self._queue
            queue.append((entry, now))
            # Inlined queue_stat.update(len(queue), now), as in request().
            stat = self.queue_stat
            stat._area += stat._value * (now - stat._last_time)
            stat._last_time = now
            depth = len(queue)
            stat._value = depth
            if depth > stat.max:
                stat.max = depth
        return entry

    def hold_cancel(self, entry: Event) -> None:
        """Tear down a coalesced slice mid-wait or mid-hold.

        Still queued: the entry is withdrawn, like :meth:`cancel` of a
        pending request.  Already holding: the unit is returned and the
        pending slice-end entry is disarmed in place (its dispatch
        becomes a no-op), so the unit cannot be returned twice.  The
        armed form is idempotent, mirroring the at-most-once
        ``finally: release()`` of the event-per-step path.
        """
        if not entry._scheduled:
            for index, (queued, _enqueued_at) in enumerate(self._queue):
                if queued is entry:
                    del self._queue[index]
                    self.queue_stat.update(len(self._queue), self.sim.now)
                    return
            raise ValueError(f"hold_cancel() of unknown entry on {self.name!r}")
        if entry.data is not None:
            entry.data = None
            self.release()

    def acquire(self, duration: float) -> Generator[Event, Any, None]:
        """Request a unit, hold it for ``duration``, release it.

        A thin cancel-safe wrapper over :meth:`hold`: the generator
        suspends exactly once, on the combined slice-end entry, whether
        or not the resource is contended.  An exception thrown into the
        generator while it waits (or holds) returns the unit.
        """
        entry = self.hold(duration)
        try:
            yield entry
        except BaseException:
            self.hold_cancel(entry)
            raise

    def busy_time(self, now: Optional[float] = None) -> float:
        """Accumulated busy server-seconds since the last reset."""
        now = self.sim.now if now is None else now
        return self.busy_stat.integral(now)

    def utilization(self, now: Optional[float] = None) -> float:
        """Time-average fraction of units busy since the last reset."""
        now = self.sim.now if now is None else now
        return self.busy_stat.time_average(now) / self.capacity

    def mean_queue_length(self, now: Optional[float] = None) -> float:
        now = self.sim.now if now is None else now
        return self.queue_stat.time_average(now)

    def reset_stats(self) -> None:
        """Discard accumulated statistics (end of warm-up)."""
        now = self.sim.now
        self.busy_stat.reset(now)
        self.queue_stat.reset(now)
        self.wait_time.reset()
        self.services = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Resource({self.name!r}, busy={self._busy}/{self.capacity}, "
            f"queued={len(self._queue)})"
        )


# -- compound held accesses -----------------------------------------------


class _ChainState:
    """Progress record of one :func:`held_chain` compound access."""

    __slots__ = ("outer", "inner", "inner_time", "done", "stage", "entry")

    outer: Resource
    inner: Resource
    inner_time: float
    done: _Callback
    stage: int
    entry: _Callback


#: :attr:`_ChainState.stage` values, in lifecycle order.
_CHAIN_OUTER_QUEUED = 1
_CHAIN_OUTER_HELD = 2
_CHAIN_INNER_QUEUED = 3
_CHAIN_INNER_HELD = 4
_CHAIN_DONE = 5


def _uncontended_grant(resource: Resource, now: float) -> None:
    """Inlined uncontended grant bookkeeping (see ``request`` fast path):
    ``busy_stat.update(busy + 1, now)``, ``wait_time.record(0.0)`` and the
    service count, exactly the float operations of ``_grant(waited=0)``."""
    resource._busy = busy = resource._busy + 1
    stat = resource.busy_stat
    stat._area += stat._value * (now - stat._last_time)
    stat._last_time = now
    stat._value = busy
    if busy > stat.max:
        stat.max = busy
    # Deferred zero-wait record (Tally._fold): the count stays eager,
    # the moments fold in before the next read/record.
    tally = resource.wait_time
    tally.count += 1
    tally._zeros += 1
    if tally._samples is not None:
        tally._samples.append(0.0)
    resource.services += 1


def _enqueue_entry(resource: Resource, entry: _Callback, duration: float) -> None:
    """Park a chain/hold entry on ``resource``'s FIFO wait queue."""
    entry._scheduled = False
    entry.duration = duration
    now = resource.sim.now
    queue = resource._queue
    queue.append((entry, now))
    # Inlined queue_stat.update(len(queue), now), as in request().
    stat = resource.queue_stat
    stat._area += stat._value * (now - stat._last_time)
    stat._last_time = now
    depth = len(queue)
    stat._value = depth
    if depth > stat.max:
        stat.max = depth


def _unqueue_entry(resource: Resource, entry: _Callback) -> None:
    """Withdraw a still-queued chain/hold entry (cancel path)."""
    for index, (queued, _enqueued_at) in enumerate(resource._queue):
        if queued is entry:
            del resource._queue[index]
            resource.queue_stat.update(len(resource._queue), resource.sim.now)
            return
    raise ValueError(f"cancel of unknown chain entry on {resource.name!r}")


def _chain_stage2(entry: Event) -> None:
    """Outer hold elapsed: acquire the inner resource, outer kept held.

    Runs as the chain entry's dispatch at ``outer-grant + outer_time``.
    The entry is re-armed for the inner leg: granted immediately when
    the inner resource is free, else parked on its FIFO queue (the
    outer stays busy throughout -- a CPU waiting synchronously on the
    GEM server, in the paper's terms).
    """
    state = entry.data
    if state is None:
        return
    entry.callbacks = [_chain_stage3]
    inner = state.inner
    duration = state.inner_time
    sim = inner.sim
    if inner._busy < inner.capacity and not inner._queue:
        now = sim.now
        _uncontended_grant(inner, now)
        state.stage = _CHAIN_INNER_HELD
        sim._seq += 1
        if duration:
            heappush(sim._heap, (now + duration, NORMAL, sim._seq, entry))
        else:
            sim._ready.append((now, NORMAL, sim._seq, entry))
    else:
        state.stage = _CHAIN_INNER_QUEUED
        _enqueue_entry(inner, entry, duration)


def _chain_stage3(entry: Event) -> None:
    """Inner hold elapsed: release both resources, complete the chain.

    Releases run innermost-first, exactly where the nested ``finally:
    release()`` blocks of the event-per-step formulation ran; the
    completion event's callbacks are then dispatched in place (the old
    final timeout resumed its waiter within the same dispatch, too),
    so the chain never schedules a separate completion event.
    """
    state = entry.data
    if state is None:
        return
    entry.data = None
    state.stage = _CHAIN_DONE
    state.inner.release()
    state.outer.release()
    done = state.done
    callbacks = done.callbacks
    done.callbacks = None
    if callbacks:
        for callback in callbacks:
            callback(done)


def held_chain(
    outer: Resource, inner: Resource, outer_time: float, inner_time: float
) -> Event:
    """Compound access: hold ``outer``, then ``inner`` on top of it.

    Models the paper's synchronous GEM access: the CPU (``outer``) is
    acquired and held for ``outer_time`` (the setup instructions), then
    -- with the CPU still held -- one unit of the GEM server
    (``inner``) is acquired, held for ``inner_time`` and released,
    after which the CPU is released too.  Queuing at either resource is
    FIFO alongside plain requests, and the outer stays busy while the
    chain waits for the inner, exactly as the request/timeout/release
    formulation behaved.

    The whole chain is driven by ONE re-armed scheduled entry walking
    grant -> outer elapsed -> inner grant -> inner elapsed through
    dispatch callbacks; the caller's process suspends exactly once, on
    the returned completion event, instead of once per leg.  The caller
    *must* guard the ``yield`` with :func:`held_chain_cancel` so an
    interrupt at any stage returns whatever is held or queued::

        done = held_chain(cpu, server, setup_time, access_time)
        try:
            yield done
        except BaseException:
            held_chain_cancel(done)
            raise
    """
    if outer_time < 0 or inner_time < 0:
        raise SimulationError(
            f"negative chain duration: {outer_time!r}, {inner_time!r}"
        )
    sim = outer.sim
    done = _Callback.__new__(_Callback)
    done.sim = sim
    done.callbacks = []
    done._value = None
    done._ok = True
    done._scheduled = True
    entry = _Callback.__new__(_Callback)
    entry.sim = sim
    entry.callbacks = [_chain_stage2]
    entry._value = None
    entry._ok = True
    state = _ChainState()
    state.outer = outer
    state.inner = inner
    state.inner_time = inner_time
    state.done = done
    state.entry = entry
    entry.data = state
    done.data = state
    if outer._busy < outer.capacity and not outer._queue:
        now = sim.now
        _uncontended_grant(outer, now)
        state.stage = _CHAIN_OUTER_HELD
        entry._scheduled = True
        sim._seq += 1
        if outer_time:
            heappush(sim._heap, (now + outer_time, NORMAL, sim._seq, entry))
        else:
            sim._ready.append((now, NORMAL, sim._seq, entry))
    else:
        state.stage = _CHAIN_OUTER_QUEUED
        _enqueue_entry(outer, entry, outer_time)
    return done


def held_chain_cancel(done: Event) -> None:
    """Tear down an in-flight :func:`held_chain` at any stage.

    Returns whatever the chain currently holds and withdraws whatever
    it queues, mirroring what the nested cancel/``finally`` blocks of
    the event-per-step formulation did at the same instant.  Idempotent
    and a no-op on a completed chain.
    """
    state = done.data
    if state is None:
        return
    done.data = None
    stage = state.stage
    entry = state.entry
    entry.data = None
    if stage == _CHAIN_OUTER_QUEUED:
        _unqueue_entry(state.outer, entry)
    elif stage == _CHAIN_OUTER_HELD:
        state.outer.release()
    elif stage == _CHAIN_INNER_QUEUED:
        _unqueue_entry(state.inner, entry)
        state.outer.release()
    elif stage == _CHAIN_INNER_HELD:
        state.inner.release()
        state.outer.release()


# -- sequential compound accesses -----------------------------------------


class _SeqState:
    """Progress record of one :func:`hold_seq` sequential access."""

    __slots__ = ("legs", "index", "holding", "done", "entry")

    legs: Tuple[Tuple[Optional[Resource], float, Any], ...]
    index: int
    holding: Optional[Resource]
    done: _Callback
    entry: _Callback


def _seq_advance(entry: Event) -> None:
    """A leg's timer fired: release its resource, start the next leg.

    Installed as the (sole) dispatch callback of the chain entry; a
    cancelled chain cleared ``data``, making the fire a no-op.
    """
    state = entry.data
    if state is None:
        return
    holding = state.holding
    if holding is not None:
        state.holding = None
        holding.release()
    _seq_start(state, entry)


def _seq_start(state: _SeqState, entry: _Callback) -> None:
    """Start leg ``state.index`` (or complete the chain past the end).

    A resource leg is granted immediately when free (arming the
    leg-end timer) or parked on the resource's FIFO queue -- the grant
    in :meth:`Resource.release` then arms the timer and records the
    grant in ``state.holding``.  A ``None`` resource is a pure delay.
    On completion the ``done`` event's callbacks run inline, exactly
    where the last leg's release of the step-per-leg formulation
    resumed its waiter.
    """
    legs = state.legs
    index = state.index
    if index == len(legs):
        entry.data = None
        done = state.done
        done.data = None
        callbacks = done.callbacks
        done.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(done)
        return
    state.index = index + 1
    # Re-arm: the run loop consumed the callbacks list when the entry
    # fired, so every leg installs a fresh dispatch.
    entry.callbacks = [_seq_advance]
    resource, duration, stream = legs[index]
    if stream is not None:
        # Lazy service-time draw, at the instant the event-per-step
        # formulation called ``acquire(stream.exponential(t))`` -- the
        # interleaving of draws on a shared stream is preserved.
        duration = stream.exponential(duration)
    if resource is None:
        sim = entry.sim
        now = sim.now
        entry._scheduled = True
        sim._seq += 1
        if duration:
            heappush(sim._heap, (now + duration, NORMAL, sim._seq, entry))
        else:
            sim._ready.append((now, NORMAL, sim._seq, entry))
    elif resource._busy < resource.capacity and not resource._queue:
        sim = resource.sim
        now = sim.now
        _uncontended_grant(resource, now)
        state.holding = resource
        entry._scheduled = True
        sim._seq += 1
        if duration:
            heappush(sim._heap, (now + duration, NORMAL, sim._seq, entry))
        else:
            sim._ready.append((now, NORMAL, sim._seq, entry))
    else:
        _enqueue_entry(resource, entry, duration)


def hold_seq(
    sim: Simulator, legs: Tuple[Tuple[Optional[Resource], float, Any], ...]
) -> Event:
    """Sequential compound access: hold each leg in turn, one resume.

    Each leg is ``(resource, time, stream)``: the resource is acquired
    (FIFO alongside plain requests), held and released before the next
    leg starts; a ``None`` resource is a plain delay.  With a ``None``
    stream the leg lasts exactly ``time``; otherwise the duration is
    drawn as ``stream.exponential(time)`` when the leg *starts* -- the
    same instant the event-per-step formulation sampled it -- so the
    interleaving of draws on a shared stream is unchanged.

    This is the disk I/O shape -- CPU setup slice, controller service,
    bus transfer, disk service -- where the event-per-step formulation
    suspends the caller once per leg.  The whole chain is driven by ONE
    re-armed scheduled entry; the caller suspends exactly once, on the
    returned completion event.  Queueing, grant statistics, RNG draws
    and release instants are identical to the step-per-leg formulation.

    The caller *must* guard the ``yield`` with :func:`hold_seq_cancel`
    so an interrupt at any stage returns whatever is held or queued::

        done = hold_seq(sim, ((cpu, setup, None), (ctrl, t1, s), (None, xfer, None)))
        try:
            yield done
        except BaseException:
            hold_seq_cancel(done)
            raise
    """
    for _resource, duration, stream in legs:
        if stream is None and duration < 0:
            raise SimulationError(f"negative leg duration: {duration!r}")
    done = _Callback.__new__(_Callback)
    done.sim = sim
    done.callbacks = []
    done._value = None
    done._ok = True
    done._scheduled = True
    entry = _Callback.__new__(_Callback)
    entry.sim = sim
    entry.callbacks = [_seq_advance]
    entry._value = None
    entry._ok = True
    entry._scheduled = False
    state = _SeqState()
    state.legs = legs
    state.index = 0
    state.holding = None
    state.done = done
    state.entry = entry
    entry.data = state
    done.data = state
    _seq_start(state, entry)
    return done


def hold_seq_cancel(done: Event) -> None:
    """Tear down an in-flight :func:`hold_seq` at any stage.

    Releases a held leg, withdraws a queued one, disarms a pure-delay
    leg in place.  Idempotent and a no-op on a completed chain.
    """
    state = done.data
    if state is None:
        return
    done.data = None
    entry = state.entry
    entry.data = None
    holding = state.holding
    if holding is not None:
        state.holding = None
        holding.release()
    elif not entry._scheduled:
        # Queued at the current leg's resource (only resource legs
        # enqueue, so the leg cannot be a pure delay).
        resource = state.legs[state.index - 1][0]
        assert resource is not None
        _unqueue_entry(resource, entry)
    # else: a pure-delay leg is in flight; the disarmed entry fires as
    # a no-op.


class Store:
    """An unbounded FIFO mailbox.

    ``put`` never blocks; ``get`` returns an event that fires with the
    next item (immediately if one is already buffered).  Items are
    delivered to getters in FIFO order on both sides.
    """

    __slots__ = ("sim", "name", "_items", "_getters", "size_stat", "puts")

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name or "store"
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.size_stat = TimeWeighted(f"{self.name}.size", now=sim.now)
        self.puts = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> None:
        self.puts += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)
            self.size_stat.update(len(self._items), self.sim.now)

    def get(self) -> Event:
        event = Event(self.sim)
        if self._items:
            item = self._items.popleft()
            self.size_stat.update(len(self._items), self.sim.now)
            event.succeed(item)
        else:
            self._getters.append(event)
        return event

    def clear(self) -> int:
        """Drop all buffered items (crash teardown); returns the count."""
        dropped = len(self._items)
        if dropped:
            self._items.clear()
            self.size_stat.update(0, self.sim.now)
        return dropped

    def reset_stats(self) -> None:
        self.size_stat.reset(self.sim.now)
        self.puts = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Store({self.name!r}, items={len(self._items)}, waiting={len(self._getters)})"
