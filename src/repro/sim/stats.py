"""Statistics collection for simulation models.

Three collector types cover everything the model reports:

* :class:`Counter` -- monotonically increasing occurrence counts.
* :class:`Tally` -- per-observation statistics (mean, variance, min,
  max, optional percentiles), e.g. response times.
* :class:`TimeWeighted` -- time-integrated statistics for state
  variables such as queue lengths or busy servers; its mean over an
  interval is the time average (utilization when the variable is the
  busy-server count divided by capacity).

All collectors support :meth:`reset` so that a warm-up period can be
discarded before measurement starts, as is standard practice for
steady-state simulation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

try:  # Optional vectorized path for bulk consumers (see update_many).
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is an optional extra
    _np = None  # type: ignore[assignment]

__all__ = ["Counter", "Tally", "TimeWeighted", "StatsRegistry"]


class Counter:
    """A simple occurrence counter."""

    __slots__ = ("name", "count")

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.count = 0

    def increment(self, amount: int = 1) -> None:
        self.count += amount

    def reset(self) -> None:
        self.count = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, count={self.count})"


class Tally:
    """Per-observation statistics with Welford's online algorithm.

    If ``keep_samples`` is true, all observations are retained so that
    percentiles can be computed; otherwise only the moments are kept.

    Zero-valued observations may be recorded *deferred*: a caller on a
    hot path increments ``count`` and ``_zeros`` instead of running the
    full Welford update (see ``Resource``'s uncontended grants, where
    the waiting time is 0.0 by construction).  The pending zeros are
    folded into the moments with the exact pairwise-merge formula
    before anything reads or records through them, so every property
    returns the same statistics as eager recording would (merging a
    block of equal observations is mathematically exact; only the
    float rounding of the intermediate sums differs).
    """

    __slots__ = ("name", "count", "_mean", "_m2", "_min", "_max", "_zeros", "_samples")

    def __init__(self, name: str = "", keep_samples: bool = False) -> None:
        self.name = name
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._zeros = 0
        self._samples: Optional[List[float]] = [] if keep_samples else None

    def _fold(self) -> None:
        """Fold deferred zero observations into the moments.

        Chan et al.'s parallel-merge formula for combining the running
        moments with a block of ``k`` zeros (mean 0, M2 0): with
        ``delta = -mean``, the merged mean is ``mean * n_old / n`` and
        ``M2 += delta^2 * n_old * k / n = mean * new_mean * k``.
        ``count`` already includes the zeros (it is kept eager so
        direct readers never see a stale total).
        """
        k = self._zeros
        if not k:
            return
        self._zeros = 0
        n = self.count
        n_old = n - k
        if n_old:
            mean = self._mean
            new_mean = mean * (n_old / n)
            self._m2 += mean * new_mean * k
            self._mean = new_mean
        if self._min > 0.0:
            self._min = 0.0
        if self._max < 0.0:
            self._max = 0.0

    def record(self, value: float) -> None:
        if self._zeros:
            self._fold()
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self._samples is not None:
            self._samples.append(value)

    def record_many(self, values: Sequence[float]) -> None:
        """Record a batch of observations in one call.

        Bit-identical to calling :meth:`record` per value (Welford's
        update is order-dependent, so there is no vectorized shortcut
        that preserves exactness); the win is one call and locals-bound
        accumulation instead of attribute traffic per observation.
        """
        if self._zeros:
            self._fold()
        count = self.count
        mean = self._mean
        m2 = self._m2
        lo = self._min
        hi = self._max
        for value in values:
            count += 1
            delta = value - mean
            mean += delta / count
            m2 += delta * (value - mean)
            if value < lo:
                lo = value
            if value > hi:
                hi = value
        self.count = count
        self._mean = mean
        self._m2 = m2
        self._min = lo
        self._max = hi
        if self._samples is not None:
            self._samples.extend(values)

    @property
    def mean(self) -> float:
        if self._zeros:
            self._fold()
        return self._mean if self.count else 0.0

    @property
    def min(self) -> Optional[float]:
        """Smallest observation, or None for an empty tally.

        None (JSON ``null``) rather than ``inf``: ``json.dump`` renders
        ``inf`` as the non-standard ``Infinity`` token, which strict
        JSON parsers reject.
        """
        if self._zeros:
            self._fold()
        return self._min if self.count else None

    @property
    def max(self) -> Optional[float]:
        """Largest observation, or None for an empty tally."""
        if self._zeros:
            self._fold()
        return self._max if self.count else None

    @property
    def variance(self) -> float:
        if self._zeros:
            self._fold()
        return self._m2 / (self.count - 1) if self.count > 1 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def percentile(self, q: float) -> float:
        """Return the ``q``-quantile (0 <= q <= 1) of retained samples."""
        if self._samples is None:
            raise ValueError("Tally was created without keep_samples=True")
        if not self._samples:
            return 0.0
        data = sorted(self._samples)
        if q <= 0:
            return data[0]
        if q >= 1:
            return data[-1]
        pos = q * (len(data) - 1)
        lower = int(pos)
        frac = pos - lower
        if lower + 1 >= len(data):
            return data[-1]
        # data[a] + frac * (data[b] - data[a]) is exact for equal
        # neighbours (the symmetric form can exceed them by one ulp).
        return data[lower] + frac * (data[lower + 1] - data[lower])

    def summary(self) -> Dict[str, Optional[float]]:
        """JSON-safe summary dict (no ``inf`` even when empty)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "stdev": self.stdev,
            "min": self.min,
            "max": self.max,
        }

    def reset(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self._min = math.inf
        self._max = -math.inf
        self._zeros = 0
        if self._samples is not None:
            self._samples = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tally({self.name!r}, n={self.count}, mean={self.mean:.6g})"


class TimeWeighted:
    """Time-weighted statistics for a piecewise-constant state variable.

    Call :meth:`update` whenever the variable changes.  The time-average
    over the observation interval is ``area / elapsed``.
    """

    __slots__ = ("name", "_value", "_last_time", "_start_time", "_area", "max")

    def __init__(self, name: str = "", initial: float = 0.0, now: float = 0.0) -> None:
        self.name = name
        self._value = initial
        self._last_time = now
        self._start_time = now
        self._area = 0.0
        self.max = initial

    @property
    def value(self) -> float:
        return self._value

    def update(self, value: float, now: float) -> None:
        if now < self._last_time:
            raise ValueError("time moved backwards")
        self._area += self._value * (now - self._last_time)
        self._last_time = now
        self._value = value
        if value > self.max:
            self.max = value

    def add(self, delta: float, now: float) -> None:
        self.update(self._value + delta, now)

    def update_many(
        self,
        values: Sequence[float],
        times: Sequence[float],
        exact: bool = True,
    ) -> None:
        """Apply a batch of ``(value, time)`` updates in one call.

        With ``exact=True`` (the default) the result is bit-identical
        to calling :meth:`update` pairwise; the accumulation just runs
        on locals.  With ``exact=False`` and numpy available, the area
        integral is computed as a vectorized dot product -- the value
        can differ from the sequential loop by floating-point summation
        order, so simulation code must never pass ``exact=False``; the
        relaxation exists for offline trace ingestion and the perf
        harness, where throughput matters and bit-replay does not.
        """
        if len(values) != len(times):
            raise ValueError("values and times must have equal length")
        if not len(values):
            return
        if exact or _np is None:
            value = self._value
            last = self._last_time
            area = self._area
            peak = self.max
            for new_value, now in zip(values, times):
                if now < last:
                    raise ValueError("time moved backwards")
                area += value * (now - last)
                last = now
                value = new_value
                if new_value > peak:
                    peak = new_value
            self._area = area
            self._last_time = last
            self._value = value
            self.max = peak
            return
        t = _np.asarray(times, dtype=float)
        v = _np.asarray(values, dtype=float)
        if t[0] < self._last_time or bool((_np.diff(t) < 0.0).any()):
            raise ValueError("time moved backwards")
        # The piecewise-constant value *before* times[i] applies over
        # the interval (times[i-1], times[i]).
        prev = _np.empty_like(v)
        prev[0] = self._value
        prev[1:] = v[:-1]
        starts = _np.empty_like(t)
        starts[0] = self._last_time
        starts[1:] = t[:-1]
        self._area += float(_np.dot(prev, t - starts))
        self._last_time = float(t[-1])
        self._value = float(v[-1])
        peak_batch = float(v.max())
        if peak_batch > self.max:
            self.max = peak_batch

    def time_average(self, now: float) -> float:
        elapsed = now - self._start_time
        if elapsed <= 0:
            return self._value
        return self.integral(now) / elapsed

    def integral(self, now: float) -> float:
        """Area under the curve since the last reset (value x seconds)."""
        return self._area + self._value * (now - self._last_time)

    def reset(self, now: float) -> None:
        """Discard history; the current value is kept as the new initial."""
        self._last_time = now
        self._start_time = now
        self._area = 0.0
        self.max = self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TimeWeighted({self.name!r}, value={self._value})"


class StatsRegistry:
    """A named collection of collectors with bulk reset.

    Model components create their collectors through a registry so a
    run controller can discard the warm-up phase for all of them at
    once and enumerate them for reporting.
    """

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.tallies: Dict[str, Tally] = {}
        self.time_weighted: Dict[str, TimeWeighted] = {}

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def tally(self, name: str, keep_samples: bool = False) -> Tally:
        if name not in self.tallies:
            self.tallies[name] = Tally(name, keep_samples=keep_samples)
        return self.tallies[name]

    def timeweighted(self, name: str, initial: float = 0.0, now: float = 0.0) -> TimeWeighted:
        if name not in self.time_weighted:
            self.time_weighted[name] = TimeWeighted(name, initial=initial, now=now)
        return self.time_weighted[name]

    def reset_all(self, now: float) -> None:
        """Reset every collector (used to discard the warm-up phase)."""
        for counter in self.counters.values():
            counter.reset()
        for tally in self.tallies.values():
            tally.reset()
        for stat in self.time_weighted.values():
            stat.reset(now)
