"""Discrete-event simulation kernel.

This subpackage is a from-scratch replacement for the DeNet simulation
language used by the paper.  It provides a process-oriented
discrete-event simulation core in the style familiar from SimPy:

* :class:`~repro.sim.engine.Simulator` -- the event loop and clock.
* :class:`~repro.sim.engine.Event` / :class:`~repro.sim.engine.Timeout` --
  one-shot occurrences that processes wait on.
* :class:`~repro.sim.engine.Process` -- a Python generator driven by the
  event loop; ``yield`` an event to wait for it.
* :class:`~repro.sim.resources.Resource` -- a multi-server FCFS station
  with built-in utilization and queue-length statistics.
* :class:`~repro.sim.resources.Store` -- an unbounded mailbox used for
  message passing between model components.
* :class:`~repro.sim.rng.StreamRegistry` -- named, independently seeded
  random-number streams so that model components draw from decoupled
  sequences and runs are reproducible.
* :mod:`~repro.sim.stats` -- tallies, counters and time-weighted
  statistics used throughout the model.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Interrupted,
    Process,
    SimulationError,
    Simulator,
    Timeout,
)
from repro.sim.resources import Resource, Store
from repro.sim.rng import StreamRegistry
from repro.sim.stats import Counter, StatsRegistry, Tally, TimeWeighted

__all__ = [
    "AllOf",
    "AnyOf",
    "Counter",
    "Event",
    "Interrupted",
    "Process",
    "Resource",
    "SimulationError",
    "Simulator",
    "StatsRegistry",
    "Store",
    "StreamRegistry",
    "Tally",
    "Timeout",
    "TimeWeighted",
]
