"""Named, reproducible random-number streams.

Each model component draws from its own stream derived from a master
seed, so that changing one component's consumption pattern does not
perturb the random sequences seen by the others (common random numbers
across configurations, a standard variance-reduction practice).
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import random
from typing import Callable, Dict, List, Sequence, Tuple, TypeVar

__all__ = ["StreamRegistry", "Stream", "derive_seed", "replicate_seed", "zipf_weights"]

T = TypeVar("T")


def derive_seed(master_seed: int, name: str) -> int:
    """Derive a child seed from ``master_seed`` for a named stream.

    Uses SHA-256 so the derivation is stable across Python versions and
    processes (``hash()`` is randomized per interpreter and would break
    reproducibility across worker processes).
    """
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


#: Backwards-compatible alias (pre-parallel-runner name).
_derive_seed = derive_seed


def replicate_seed(base_seed: int, replicate: int) -> int:
    """Master seed of replicate ``replicate`` of a multi-seed run.

    Replicate 0 keeps ``base_seed`` unchanged so that single-seed runs
    are bit-identical to runs that predate replication.  Higher
    replicates use an independent SHA-256 derivation, which makes the
    per-replicate seeds a pure function of ``(base_seed, replicate)``
    -- results do not depend on worker scheduling order.
    """
    if replicate < 0:
        raise ValueError("replicate must be >= 0")
    if replicate == 0:
        return base_seed
    return derive_seed(base_seed, f"replicate:{replicate}")


class Stream:
    """A single random stream with the distributions the model needs."""

    def __init__(self, seed: int, name: str = "") -> None:
        self.name = name
        self._rng = random.Random(seed)
        #: Bound fast path for hot callers that precompute the rate
        #: (``1.0 / mean``); bit-identical to :meth:`exponential` for
        #: ``mean > 0`` since that calls ``expovariate(1.0 / mean)``.
        self.expovariate: Callable[[float], float] = self._rng.expovariate

    def uniform(self, low: float, high: float) -> float:
        return self._rng.uniform(low, high)

    def random(self) -> float:
        return self._rng.random()

    def exponential(self, mean: float) -> float:
        """Exponentially distributed sample with the given *mean*."""
        if mean < 0:
            raise ValueError(f"negative mean: {mean!r}")
        if mean == 0:
            return 0.0
        return self._rng.expovariate(1.0 / mean)

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in [low, high] inclusive."""
        return self._rng.randint(low, high)

    def choice(self, seq: Sequence[T]) -> T:
        return self._rng.choice(seq)

    def shuffle(self, seq: List[T]) -> None:
        self._rng.shuffle(seq)

    def bernoulli(self, p: float) -> bool:
        return self._rng.random() < p

    def weighted_index(self, cumulative: Sequence[float]) -> int:
        """Sample an index given a cumulative weight table.

        ``cumulative`` must be non-decreasing with ``cumulative[-1]``
        equal to the total weight.
        """
        target = self._rng.random() * cumulative[-1]
        return bisect.bisect_right(cumulative, target)

    def geometric(self, p: float) -> int:
        """Number of trials until first success (>= 1)."""
        if not 0 < p <= 1:
            raise ValueError("p must be in (0, 1]")
        count = 1
        while self._rng.random() >= p:
            count += 1
        return count


#: Memoized cumulative tables: building one is O(n) with a float pow
#: per item, and every generator construction used to recompute the
#: same ``(n, theta)`` table per access spec.
_ZIPF_CACHE: Dict[Tuple[int, float], List[float]] = {}


def zipf_weights(n: int, theta: float) -> List[float]:
    """Cumulative weights of a Zipf-like distribution over ``n`` items.

    Item ``i`` (0-based) has weight ``1 / (i + 1) ** theta``.  With
    ``theta == 0`` this degenerates to the uniform distribution.  The
    returned list is cumulative, ready for
    :meth:`Stream.weighted_index`.

    Tables are cached per ``(n, theta)`` and shared between callers;
    treat the returned list as read-only.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    key = (n, theta)
    table = _ZIPF_CACHE.get(key)
    if table is None:
        weights = [1.0 / (i + 1) ** theta for i in range(n)]
        table = _ZIPF_CACHE[key] = list(itertools.accumulate(weights))
    return table


class StreamRegistry:
    """A factory of independently seeded :class:`Stream` objects."""

    def __init__(self, master_seed: int = 42) -> None:
        self.master_seed = master_seed
        self._streams: Dict[str, Stream] = {}

    def stream(self, name: str) -> Stream:
        """Return the stream for ``name``, creating it on first use."""
        if name not in self._streams:
            self._streams[name] = Stream(_derive_seed(self.master_seed, name), name)
        return self._streams[name]
