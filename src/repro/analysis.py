"""Analytic cross-checks: operational laws applied to the model.

For the debit-credit workload most first-order quantities follow from
the configuration by the utilization law (U = X * S).  This module
computes those predictions so tests and users can cross-validate the
simulation: a discrete-event simulator whose measured utilizations
disagree with the operational laws is wrong, full stop.

The predictions deliberately cover only the load-independent part
(service demands); queueing delays and buffer dynamics are what the
simulation exists to produce.
"""

from __future__ import annotations

import dataclasses
from typing import Dict

from repro.system.config import Coupling, RoutingStrategy, SystemConfig

__all__ = ["DebitCreditPrediction", "predict_debit_credit"]


@dataclasses.dataclass
class DebitCreditPrediction:
    """First-order per-node predictions for debit-credit."""

    #: Expected CPU utilization per node (path length + I/O overhead +
    #: message overhead, excluding queueing).
    cpu_utilization: float
    #: Expected log-disk utilization per node.
    log_disk_utilization: float
    #: Expected GEM utilization (entry traffic of GEM locking).
    gem_utilization: float
    #: Remote lock requests per transaction (PCL).
    remote_locks_per_txn: float
    #: Messages per transaction (sends; PCL lock traffic only).
    messages_per_txn: float
    #: Instructions per transaction, all sources.
    instructions_per_txn: float

    def as_dict(self) -> Dict[str, float]:
        return dataclasses.asdict(self)


def _locks_per_txn(config: SystemConfig) -> float:
    return 2.0 if config.debit_credit.cluster_branch_teller else 3.0


def _remote_lock_fraction(config: SystemConfig) -> float:
    """Fraction of lock requests a PCL node must send to a remote GLA."""
    n = config.num_nodes
    if n == 1:
        return 0.0
    if config.routing is RoutingStrategy.RANDOM:
        # The transaction's branch is independent of its node: only
        # 1/n of the GLA lookups are local.
        return (n - 1) / n
    # Affinity routing: BRANCH/TELLER is always local; ACCOUNT goes
    # remote only for the 15 % other-branch accesses, which land on a
    # remote node's partition with probability (n-1)/n.
    locks = _locks_per_txn(config)
    account_locks = 1.0
    remote_accounts = (
        (1.0 - config.debit_credit.account_local_probability) * (n - 1) / n
    )
    return account_locks * remote_accounts / locks


def predict_debit_credit(config: SystemConfig) -> DebitCreditPrediction:
    """Operational-law predictions for one node at the offered rate."""
    if config.workload != "debit_credit":
        raise ValueError("predictions cover the debit-credit workload")
    rate = config.arrival_rate_per_node
    locks = _locks_per_txn(config)
    accesses = 4.0  # record accesses
    pages = 3.0 if config.debit_credit.cluster_branch_teller else 4.0

    # -- I/O counts per transaction (ignoring buffer hits for writes
    #    that are certain: every update transaction logs once; FORCE
    #    forces each modified page).
    log_writes = 1.0
    force_writes = pages if config.force else 0.0

    # -- instruction budget per transaction -----------------------------
    instructions = config.path_length(int(accesses))
    instructions += log_writes * config.instructions_per_io
    instructions += force_writes * config.instructions_per_io
    # Read-miss I/O overhead: at least the ACCOUNT read misses (~100%).
    instructions += 1.0 * config.instructions_per_io

    remote_fraction = 0.0
    messages = 0.0
    gem_utilization = 0.0
    if config.coupling is Coupling.PCL:
        remote_fraction = _remote_lock_fraction(config)
        remote_locks = locks * remote_fraction
        # Request + reply per remote lock; one release message per
        # remote GLA group (~= per remote lock for debit-credit, since
        # the two lockable pages usually live at different GLAs).
        messages = remote_locks * 3.0
        # Sender + receiver overhead is split across the nodes; on
        # average each node pays one side of every message involving it
        # -- request (send), reply (receive), release (send) plus the
        # GLA-side work its own partition receives from others, which
        # by symmetry equals what it sends.
        instructions += remote_locks * (
            4.0 * config.instructions_msg_short  # request round
            + 2.0 * config.instructions_msg_short  # release one-way
        )
    elif config.coupling is Coupling.RDMA:
        # One-sided locking: 1 CAS to acquire + 1 CAS to release per
        # lock; under NOFORCE each transaction additionally installs
        # its modified pages into the pool (one write verb) and the
        # eventual write-back clears the residency word (one CAS).
        verbs = locks * 2.0
        if config.noforce:
            verbs += 2.0
        instructions += verbs * config.instructions_per_rdma_op
    else:
        # GEM locking: 2 entry accesses to acquire + 2 to release.
        entry_ops = locks * 4.0
        if config.noforce:
            # Each transaction leaves one dirty BRANCH/TELLER version
            # behind; under replacement pressure its eventual write-back
            # clears the ownership entry (read + Compare&Swap).
            entry_ops += 2.0
        instructions += entry_ops * config.instructions_per_gem_entry_op
        gem_utilization = (
            rate
            * config.num_nodes
            * entry_ops
            * config.gem_entry_access_time
            / config.gem_servers
        )

    cpu_capacity = config.cpus_per_node * config.cpu_speed
    cpu_utilization = rate * instructions / cpu_capacity

    log_service = (
        config.disk_time_log + config.controller_time + config.transfer_time
    )
    log_disk_utilization = (
        rate * log_writes * (config.disk_time_log) / config.log_disks_per_node
    )

    return DebitCreditPrediction(
        cpu_utilization=min(1.0, cpu_utilization),
        log_disk_utilization=min(1.0, log_disk_utilization),
        gem_utilization=gem_utilization,
        remote_locks_per_txn=locks * remote_fraction,
        messages_per_txn=messages,
        instructions_per_txn=instructions,
    )
