"""Synthetic "real-life" trace generator.

The paper's section 4.6 uses a proprietary database trace characterized
only by its aggregates: >17,500 transactions of twelve types, about one
million page references to 66,000 distinct pages in thirteen files,
the largest transaction (an ad-hoc query) with more than 11,000
references, 20 % update transactions but only 1.6 % write references,
and a highly non-uniform access distribution with limited
"partitionability".  This module synthesizes a trace matching those
aggregates (see DESIGN.md, substitutions).

Construction:

* Thirteen files with skewed sizes (a few large, several small).
* Twelve transaction types.  Type 11 is the rare ad-hoc query touching
  ``max_references`` pages across the big files, read-only.  The other
  types have exponential-ish size profiles calibrated so the overall
  mean matches ``mean_references``.
* Each type references 2-4 "home" files plus, with some probability,
  pages of a *shared* hot file -- the cross-type sharing is what limits
  partitionability, as in the original trace.
* Page popularity inside a file is Zipf-distributed; a per-type offset
  rotates the popularity ranking so types favour different hot sets
  while still overlapping.
* A subset of the types performs updates, calibrated to the target
  update-transaction fraction and write-reference fraction.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.sim.rng import Stream, zipf_weights
from repro.system.config import TraceWorkloadConfig
from repro.workload.trace import Trace, TraceReference, TraceTransaction

__all__ = ["TraceTypeProfile", "generate_trace", "file_sizes"]


class TraceTypeProfile:
    """Static description of one transaction type."""

    __slots__ = (
        "type_id",
        "frequency",
        "mean_size",
        "fixed_size",
        "home_files",
        "shared_file_probability",
        "write_probability",
        "rotation",
    )

    def __init__(
        self,
        type_id: int,
        frequency: float,
        mean_size: float,
        home_files: Sequence[int],
        write_probability: float = 0.0,
        shared_file_probability: float = 0.15,
        fixed_size: bool = False,
        rotation: int = 0,
    ):
        self.type_id = type_id
        self.frequency = frequency
        self.mean_size = mean_size
        self.fixed_size = fixed_size
        self.home_files = list(home_files)
        self.shared_file_probability = shared_file_probability
        self.write_probability = write_probability
        self.rotation = rotation


def file_sizes(config: TraceWorkloadConfig) -> List[int]:
    """Page-universe sizes of the trace's files (sums to about the
    distinct-page target; the Zipf sampling concentrates references so
    the realized distinct count lands near the target)."""
    total = config.distinct_pages
    # Shares: a few big files dominate, several small ones (shaped like
    # typical production databases).
    shares = [0.28, 0.20, 0.14, 0.10, 0.07, 0.05, 0.04, 0.03, 0.025, 0.02, 0.02, 0.015, 0.01]
    shares = shares[: config.num_files]
    scale = sum(shares)
    sizes = [max(16, int(total * share / scale)) for share in shares]
    return sizes


def _default_profiles(config: TraceWorkloadConfig) -> List[TraceTypeProfile]:
    """Twelve types calibrated to the paper's aggregates."""
    num_types = config.num_types
    adhoc_type = num_types - 1
    adhoc_frequency = 0.002
    # Contribution of the ad-hoc query to the overall mean size.
    adhoc_contribution = adhoc_frequency * config.max_references
    remaining_mean = max(
        4.0, (config.mean_references - adhoc_contribution) / (1.0 - adhoc_frequency)
    )
    # Size profile across the normal types: skewed, mean == remaining_mean.
    raw_sizes = [0.3, 0.4, 0.5, 0.7, 0.8, 1.0, 1.1, 1.3, 1.6, 2.0, 2.5]
    raw_sizes = raw_sizes[: num_types - 1]
    # Frequencies: smaller transactions are more frequent.
    raw_freq = [1.0 / s for s in raw_sizes]
    freq_scale = (1.0 - adhoc_frequency) / sum(raw_freq)
    frequencies = [f * freq_scale for f in raw_freq]
    weighted = sum(f * s for f, s in zip(frequencies, raw_sizes))
    size_scale = remaining_mean * (1.0 - adhoc_frequency) / weighted
    mean_sizes = [s * size_scale for s in raw_sizes]
    # Update types: chosen so that update txn fraction ~= target.  The
    # write probability per reference is calibrated afterwards.
    update_target = config.update_txn_fraction
    profiles: List[TraceTypeProfile] = []
    update_budget = update_target
    num_files = config.num_files
    for type_id in range(num_types - 1):
        is_update = update_budget > 0 and type_id % 3 == 0
        if is_update:
            update_budget -= frequencies[type_id]
        if is_update and num_files > 4:
            # Update types live outside the ad-hoc query's footprint
            # (files 0-2): the paper's trace exhibits no significant
            # lock conflicts, which requires writers not to collide
            # with the long read-only query's S locks.
            span = num_files - 3
            home = [3 + (type_id * 2 + k) % span for k in range(2 + type_id % 3)]
        else:
            home = [
                (type_id * 2 + k) % num_files for k in range(2 + type_id % 3)
            ]
        profiles.append(
            TraceTypeProfile(
                type_id,
                frequencies[type_id],
                mean_sizes[type_id],
                home_files=home,
                write_probability=0.0,  # calibrated below
                shared_file_probability=0.15,
                rotation=type_id * 97,
            )
        )
        profiles[-1].write_probability = 0.12 if is_update else 0.0
    profiles.append(
        TraceTypeProfile(
            adhoc_type,
            adhoc_frequency,
            float(config.max_references),
            home_files=[0, 1, 2],
            write_probability=0.0,
            shared_file_probability=0.05,
            fixed_size=True,
            rotation=13,
        )
    )
    # Calibrate write probability to the write-reference fraction.
    # Only references outside the shared hot file (file 0) are eligible
    # for writes, so scale by each type's eligible-reference share.
    def eligible_share(profile: TraceTypeProfile) -> float:
        eligible_home = sum(1 for f in profile.home_files if f >= 3)
        home_share = eligible_home / len(profile.home_files)
        return (1.0 - profile.shared_file_probability) * home_share

    write_refs = sum(
        p.frequency * p.mean_size * p.write_probability * eligible_share(p)
        for p in profiles
    )
    total_refs = sum(p.frequency * p.mean_size for p in profiles)
    if write_refs > 0:
        factor = config.write_reference_fraction * total_refs / write_refs
        for profile in profiles:
            profile.write_probability = min(0.9, profile.write_probability * factor)
    return profiles


def generate_trace(
    config: TraceWorkloadConfig, stream: Stream
) -> Tuple[Trace, List[TraceTypeProfile], List[int]]:
    """Generate a synthetic trace; returns (trace, profiles, file sizes)."""
    config = config.scaled()
    sizes = file_sizes(config)
    profiles = _default_profiles(config)
    cumulative_freq: List[float] = []
    running = 0.0
    for profile in profiles:
        running += profile.frequency
        cumulative_freq.append(running)
    zipf_tables: Dict[int, List[float]] = {
        file_id: zipf_weights(size, config.zipf_theta)
        for file_id, size in enumerate(sizes)
    }
    shared_file = 0  # the biggest file is the shared hot file
    # Reads live in the first three quarters of each file's page space;
    # writes allocate sequentially in the last quarter.  The paper's
    # trace exhibits essentially no lock conflicts and no significant
    # buffer invalidations despite 20 % update transactions, which
    # requires updates to fall on pages that other transactions rarely
    # touch (insert-like behaviour).
    read_region = [max(1, (3 * size) // 4) for size in sizes]
    write_cursor = [0] * len(sizes)
    transactions: List[TraceTransaction] = []
    for _ in range(config.num_transactions):
        type_index = stream.weighted_index(cumulative_freq)
        type_index = min(type_index, len(profiles) - 1)
        profile = profiles[type_index]
        if profile.fixed_size:
            size = int(profile.mean_size)
        else:
            size = max(1, int(round(stream.exponential(profile.mean_size))))
        references: List[TraceReference] = []
        for _ref in range(size):
            if (
                profile.shared_file_probability
                and stream.bernoulli(profile.shared_file_probability)
            ):
                file_id = shared_file
            else:
                file_id = profile.home_files[
                    stream.randint(0, len(profile.home_files) - 1)
                ]
            # Writes avoid the globally shared hot file and fall on
            # uniformly chosen (i.e. cold-tail) pages: the paper
            # observes that lock conflicts and buffer invalidations had
            # no significant impact on its trace, which requires
            # updates to hit narrowly shared pages.
            write = (
                profile.write_probability > 0
                and file_id >= 3
                and stream.bernoulli(profile.write_probability)
            )
            if write:
                write_span = max(1, sizes[file_id] - read_region[file_id])
                page_no = read_region[file_id] + (write_cursor[file_id] % write_span)
                write_cursor[file_id] += 1
            else:
                rank = stream.weighted_index(zipf_tables[file_id])
                # Rotate the popularity ranking per type so types
                # favour different hot pages while still overlapping;
                # reads stay inside the read region.
                page_no = (rank + profile.rotation) % read_region[file_id]
            references.append(TraceReference(file_id, page_no, write))
        transactions.append(TraceTransaction(profile.type_id, references))
    return Trace(transactions, config.num_files), profiles, sizes


def main(argv=None) -> int:  # pragma: no cover - thin CLI
    """Generate a trace file: ``python -m repro.workload.tracegen out.trace``."""
    import argparse

    from repro.sim.rng import StreamRegistry

    parser = argparse.ArgumentParser(
        description="Generate a synthetic 'real-life' database trace."
    )
    parser.add_argument("output", help="path of the trace file to write")
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)
    config = TraceWorkloadConfig(scale=args.scale)
    trace, _profiles, _sizes = generate_trace(
        config, StreamRegistry(args.seed).stream("tracegen")
    )
    trace.save(args.output)
    print(
        f"wrote {args.output}: {len(trace)} transactions, "
        f"{trace.num_references():,} references, "
        f"{trace.distinct_pages():,} distinct pages in {trace.num_files} files, "
        f"write fraction {trace.write_reference_fraction():.1%}"
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
