"""Trace workload world: database, replay generator, routing and GLA.

Binds the synthetic trace to the simulation: builds one partition per
trace file (the database size stays *constant* in the number of nodes,
unlike debit-credit -- section 4.6), computes the affinity routing
table and the coordinated GLA assignment, and replays the trace's
transactions cyclically as fresh :class:`Transaction` objects.
"""

from __future__ import annotations

from typing import Optional

from repro.db.pages import PageId
from repro.db.schema import Database, Partition
from repro.routing.gla import build_gla_map
from repro.routing.routing_table import build_routing_table
from repro.sim.rng import StreamRegistry
from repro.system.config import SystemConfig
from repro.workload.trace import Trace
from repro.workload.tracegen import generate_trace
from repro.workload.transaction import PageAccess, Transaction

__all__ = ["TraceWorld", "TraceReplayGenerator"]


class TraceWorld:
    """Everything the cluster needs to run a trace workload."""

    def __init__(
        self,
        config: SystemConfig,
        streams: StreamRegistry,
        trace: Optional[Trace] = None,
    ):
        self.config = config
        if trace is None:
            trace, self.profiles, self.file_sizes = generate_trace(
                config.trace, streams.stream("tracegen")
            )
        else:
            self.profiles = None
            extents = trace.pages_per_file()
            self.file_sizes = [
                extents.get(f, 0) + 1 for f in range(trace.num_files)
            ]
        self.trace = trace
        trace_config = config.trace.scaled()
        # Disk budget apportioned to the files by reference share (the
        # file sizes are generated proportionally to their traffic, so
        # they serve as the weight here).
        budget = max(
            trace.num_files,
            trace_config.disks_per_file_per_node * trace.num_files * config.num_nodes,
        )
        total_size = sum(self.file_sizes) or 1
        disks_for = [
            max(1, round(budget * size / total_size)) for size in self.file_sizes
        ]
        self.database = Database(
            [
                Partition(
                    f"FILE{file_id}",
                    index=file_id,
                    num_pages=max(1, self.file_sizes[file_id]),
                    blocking_factor=1,
                    disks=disks_for[file_id],
                )
                for file_id in range(trace.num_files)
            ]
        )
        self.routing_table = build_routing_table(trace, config.num_nodes)
        self._gla = build_gla_map(trace, self.routing_table, config.num_nodes)

    def gla_of_page(self, page: PageId) -> int:
        return self._gla(page)

    def make_generator(self) -> "TraceReplayGenerator":
        return TraceReplayGenerator(self.trace)


class TraceReplayGenerator:
    """Replays trace transactions cyclically.

    Every submission materializes a *fresh* :class:`Transaction` so
    runtime state never leaks between replays of the same recorded
    transaction.
    """

    def __init__(self, trace: Trace):
        if not len(trace):
            raise ValueError("empty trace")
        self.trace = trace
        self._position = 0
        self._next_id = 0
        self.replays = 0

    def next_transaction(self) -> Transaction:
        recorded = self.trace.transactions[self._position]
        self._position += 1
        if self._position >= len(self.trace.transactions):
            self._position = 0
            self.replays += 1
        self._next_id += 1
        accesses = [
            PageAccess((ref.file_id, ref.page_no), write=ref.write)
            for ref in recorded.references
        ]
        return Transaction(self._next_id, accesses, type_id=recorded.type_id)
