"""Workload generation (section 3.1 of the paper).

* :mod:`~repro.workload.transaction` -- transaction and page-access
  representation shared by all generators.
* :mod:`~repro.workload.debitcredit` -- synthetic debit-credit (TPC-A/B
  style) transactions with the 85 % local-branch ACCOUNT rule.
* :mod:`~repro.workload.trace` -- trace format with reader/writer.
* :mod:`~repro.workload.tracegen` -- synthetic "real-life" trace
  generator matching the aggregates the paper reports for its trace.
* :mod:`~repro.workload.arrivals` -- the SOURCE: open Poisson arrivals
  feeding the routing component.
"""

from repro.workload.transaction import PageAccess, Transaction

__all__ = ["PageAccess", "Transaction"]
