"""The SOURCE: open Poisson arrivals feeding the router.

The simulation uses an open queuing model (section 4): transactions
arrive according to a Poisson process with the configured aggregate
rate, independent of the system state.  Each arrival is routed to a
node by the workload-allocation strategy and submitted to that node's
transaction manager.
"""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Simulator
from repro.sim.rng import Stream
from repro.workload.transaction import Transaction

__all__ = ["Source"]


class Source:
    """Generates and distributes the workload of the system."""

    def __init__(
        self,
        sim: Simulator,
        generator,
        router,
        submit: Callable[[int, Transaction], None],
        total_rate: float,
        stream: Stream,
    ):
        if total_rate <= 0:
            raise ValueError("total_rate must be positive")
        self.sim = sim
        self.generator = generator
        self.router = router
        self.submit = submit
        self.mean_interarrival = 1.0 / total_rate
        self.stream = stream
        self.generated = 0
        #: Set by :meth:`stop`; the arrival loop exits at its next tick.
        self.stopped = False
        sim.process(self._run(), name="source")

    def stop(self) -> None:
        """Stop generating arrivals (takes effect at the next tick).

        Used to drain a system at the end of a run: with the source
        stopped, in-flight transactions complete and the cluster
        quiesces, so invariants can be checked without the noise of
        work truncated mid-flight by the simulation cutoff.
        """
        self.stopped = True

    def _run(self):
        while True:
            yield self.sim.timeout(self.stream.exponential(self.mean_interarrival))
            if self.stopped:
                return
            txn = self.generator.next_transaction()
            if txn is None:
                return  # finite workload (trace) exhausted
            node_id = self.router.route(txn)
            self.generated += 1
            self.submit(node_id, txn)
