"""Transaction and page-access representation.

A transaction is a sequence of :class:`PageAccess` steps.  For the
debit-credit workload each transaction has four record accesses (three
distinct pages when BRANCH/TELLER are clustered); trace transactions
replay the page references recorded in the trace.

The object also carries the per-execution runtime state used by the
transaction manager, buffer manager and the protocols (held locks,
modified page versions, restart count); :meth:`reset_runtime` clears
that state when a deadlock victim restarts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.db.pages import PageId

__all__ = ["PageAccess", "Transaction"]


class PageAccess:
    """One page reference of a transaction."""

    __slots__ = ("page", "write", "lockable", "append")

    def __init__(
        self, page: PageId, write: bool, lockable: bool = True, append: bool = False
    ):
        self.page = page
        self.write = write
        self.lockable = lockable
        #: Append to a sequential file: a miss allocates a fresh page
        #: in the buffer instead of reading it from storage.
        self.append = append

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "w" if self.write else "r"
        lock = "" if self.lockable else ",nolock"
        return f"PageAccess({self.page}, {mode}{lock})"


class Transaction:
    """A unit of work routed to one processing node."""

    __slots__ = (
        "txn_id",
        "type_id",
        "accesses",
        "branch",
        "node",
        "arrival_time",
        "start_time",
        "held_locks",
        "grants",
        "touched_pages",
        "modified",
        "modified_unlocked",
        "auth_read_pages",
        "restarts",
        "remote_lock_requests",
        "local_lock_requests",
        "page_requests",
        "begin_ts",
        "read_versions",
    )

    def __init__(
        self,
        txn_id: int,
        accesses: List[PageAccess],
        type_id: int = 0,
        branch: Optional[int] = None,
    ):
        self.txn_id = txn_id
        self.type_id = type_id
        self.accesses = accesses
        #: Home branch (debit-credit) used by affinity routing.
        self.branch = branch
        #: Node the router assigned the transaction to.
        self.node: Optional[int] = None
        self.arrival_time: float = 0.0
        self.start_time: float = 0.0
        # -- runtime state (reset on restart) --------------------------
        #: Pages on which locks are currently held -> True for X mode.
        self.held_locks: Dict[PageId, bool] = {}
        #: Cached lock grants (one protocol interaction per page/mode).
        self.grants: Dict[PageId, object] = {}
        #: Pages already touched in this execution.  Repeat record
        #: accesses to the same page (e.g. TELLER then BRANCH on one
        #: clustered page) are not separate *page* accesses -- the
        #: paper counts three page accesses per debit-credit
        #: transaction -- so they bypass the buffer statistics.
        self.touched_pages: Set[PageId] = set()
        #: Pages modified in this execution -> new version number.
        self.modified: Dict[PageId, int] = {}
        #: Modified pages of unlocked (latch-protected) partitions.
        self.modified_unlocked: Set[PageId] = set()
        #: Pages whose S lock is covered by a read authorization (PCL
        #: read optimization): released locally without a message.
        self.auth_read_pages: Set[PageId] = set()
        self.restarts: int = 0
        self.remote_lock_requests: int = 0
        self.local_lock_requests: int = 0
        self.page_requests: int = 0
        #: MVCC begin timestamp (None until the protocol assigns one).
        self.begin_ts: Optional[int] = None
        #: MVCC read set: page -> committed version observed at read
        #: time, validated against the current version at commit.
        self.read_versions: Dict[PageId, int] = {}

    @property
    def is_update(self) -> bool:
        return any(access.write for access in self.accesses)

    @property
    def num_accesses(self) -> int:
        return len(self.accesses)

    def lockable_pages(self) -> List[Tuple[PageId, bool]]:
        """Distinct lockable pages with their strongest access mode."""
        modes: Dict[PageId, bool] = {}
        for access in self.accesses:
            if access.lockable:
                modes[access.page] = modes.get(access.page, False) or access.write
        return list(modes.items())

    def reset_runtime(self) -> None:
        """Clear per-execution state before a restart."""
        self.held_locks.clear()
        self.grants.clear()
        self.touched_pages.clear()
        self.modified.clear()
        self.modified_unlocked.clear()
        self.auth_read_pages.clear()
        self.remote_lock_requests = 0
        self.local_lock_requests = 0
        self.page_requests = 0
        self.begin_ts = None
        self.read_versions.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Transaction(id={self.txn_id}, type={self.type_id}, "
            f"accesses={len(self.accesses)}, node={self.node})"
        )
