"""Database trace format with reader and writer.

A trace consists of transactions of different types; for every
transaction, the transaction type and all database page references
with their access mode (read or write) are recorded (section 3.1).

The on-disk format is a plain text file:

.. code-block:: text

    # repro-trace v1
    files 13
    txn 3 0:17:r,0:18:r,5:2:w
    txn 0 2:100:r

i.e. one ``txn`` line per transaction carrying its type id and a
comma-separated list of ``file:page:mode`` references.
"""

from __future__ import annotations

import io
from typing import Dict, List, Set, Tuple

__all__ = ["TraceReference", "TraceTransaction", "Trace"]


class TraceReference:
    """One recorded page reference."""

    __slots__ = ("file_id", "page_no", "write")

    def __init__(self, file_id: int, page_no: int, write: bool):
        self.file_id = file_id
        self.page_no = page_no
        self.write = write

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, TraceReference)
            and self.file_id == other.file_id
            and self.page_no == other.page_no
            and self.write == other.write
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TraceReference({self.file_id}, {self.page_no}, {'w' if self.write else 'r'})"


class TraceTransaction:
    """One recorded transaction."""

    __slots__ = ("type_id", "references")

    def __init__(self, type_id: int, references: List[TraceReference]):
        self.type_id = type_id
        self.references = references

    @property
    def is_update(self) -> bool:
        return any(ref.write for ref in self.references)

    def __len__(self) -> int:
        return len(self.references)


class Trace:
    """A complete trace with aggregate statistics."""

    def __init__(self, transactions: List[TraceTransaction], num_files: int):
        if num_files < 1:
            raise ValueError("num_files must be >= 1")
        self.transactions = transactions
        self.num_files = num_files

    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self):
        return iter(self.transactions)

    # -- aggregate statistics (the numbers the paper reports) ------------

    def num_references(self) -> int:
        return sum(len(txn) for txn in self.transactions)

    def mean_references(self) -> float:
        return self.num_references() / len(self.transactions) if self.transactions else 0.0

    def max_references(self) -> int:
        return max((len(txn) for txn in self.transactions), default=0)

    def num_types(self) -> int:
        return len({txn.type_id for txn in self.transactions})

    def distinct_pages(self) -> int:
        pages: Set[Tuple[int, int]] = set()
        for txn in self.transactions:
            for ref in txn.references:
                pages.add((ref.file_id, ref.page_no))
        return len(pages)

    def write_reference_fraction(self) -> float:
        total = self.num_references()
        if not total:
            return 0.0
        writes = sum(
            1 for txn in self.transactions for ref in txn.references if ref.write
        )
        return writes / total

    def update_transaction_fraction(self) -> float:
        if not self.transactions:
            return 0.0
        return sum(1 for txn in self.transactions if txn.is_update) / len(
            self.transactions
        )

    def pages_per_file(self) -> Dict[int, int]:
        """Highest referenced page number per file (file extent proxy)."""
        extents: Dict[int, int] = {}
        for txn in self.transactions:
            for ref in txn.references:
                extents[ref.file_id] = max(extents.get(ref.file_id, 0), ref.page_no)
        return extents

    # -- persistence ---------------------------------------------------------

    def save(self, path: str) -> None:
        with open(path, "w", encoding="ascii") as fh:
            self.write_to(fh)

    def write_to(self, fh: io.TextIOBase) -> None:
        fh.write("# repro-trace v1\n")
        fh.write(f"files {self.num_files}\n")
        for txn in self.transactions:
            refs = ",".join(
                f"{r.file_id}:{r.page_no}:{'w' if r.write else 'r'}"
                for r in txn.references
            )
            fh.write(f"txn {txn.type_id} {refs}\n")

    @classmethod
    def load(cls, path: str) -> "Trace":
        with open(path, "r", encoding="ascii") as fh:
            return cls.read_from(fh)

    @classmethod
    def read_from(cls, fh: io.TextIOBase) -> "Trace":
        header = fh.readline()
        if not header.startswith("# repro-trace"):
            raise ValueError("not a repro trace file")
        files_line = fh.readline().split()
        if len(files_line) != 2 or files_line[0] != "files":
            raise ValueError("malformed trace header")
        num_files = int(files_line[1])
        transactions: List[TraceTransaction] = []
        for line in fh:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(" ", 2)
            if parts[0] != "txn" or len(parts) < 2:
                raise ValueError(f"malformed trace line: {line!r}")
            type_id = int(parts[1])
            references: List[TraceReference] = []
            if len(parts) == 3 and parts[2]:
                for token in parts[2].split(","):
                    file_id, page_no, mode = token.split(":")
                    if mode not in ("r", "w"):
                        raise ValueError(f"bad access mode in {token!r}")
                    references.append(
                        TraceReference(int(file_id), int(page_no), mode == "w")
                    )
            transactions.append(TraceTransaction(type_id, references))
        return cls(transactions, num_files)
