"""General synthetic multi-class workload generator.

The paper's simulation system contains "several workload generators"
(section 3.1); besides debit-credit and trace replay, this module
provides a configurable generator for arbitrary transaction mixes:

* a database of named partitions with sizes and blocking factors;
* transaction classes with relative weights, each a list of
  :class:`AccessSpec` steps drawing pages from a partition with a
  uniform or Zipf-skewed distribution and a write probability;
* optional per-class node affinity for affinity-based routing.

Example::

    spec = SyntheticWorkloadSpec(
        partitions=[PartitionSpec("ORDERS", 50_000), PartitionSpec("STOCK", 5_000)],
        classes=[
            TransactionClass("new-order", weight=10, accesses=[
                AccessSpec("STOCK", count=10, write_probability=1.0,
                           distribution="zipf", zipf_theta=0.8),
                AccessSpec("ORDERS", count=1, write_probability=1.0),
            ]),
            TransactionClass("stock-level", weight=1, accesses=[
                AccessSpec("STOCK", count=200, distribution="zipf"),
            ]),
        ],
    )
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.db.pages import PageId
from repro.db.schema import Database, Partition
from repro.sim.rng import Stream, zipf_weights
from repro.workload.transaction import PageAccess, Transaction

__all__ = [
    "AccessSpec",
    "PartitionSpec",
    "SyntheticGenerator",
    "SyntheticWorkloadSpec",
    "TransactionClass",
]


@dataclasses.dataclass
class PartitionSpec:
    """A database file of the synthetic workload."""

    name: str
    num_pages: int
    blocking_factor: int = 1
    lockable: bool = True
    disks: int = 4


@dataclasses.dataclass
class AccessSpec:
    """One step of a transaction class.

    ``count`` pages are drawn from ``partition``; with
    ``fixed_count=False`` the count is sampled geometrically around the
    mean.  ``hot_fraction`` restricts the draw to the first fraction of
    the partition's pages (a hot set).
    """

    partition: str
    count: float = 1.0
    write_probability: float = 0.0
    distribution: str = "uniform"  # "uniform" | "zipf"
    zipf_theta: float = 0.8
    hot_fraction: float = 1.0
    fixed_count: bool = True

    def __post_init__(self):
        if self.distribution not in ("uniform", "zipf"):
            raise ValueError(f"unknown distribution {self.distribution!r}")
        if not 0 < self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in (0, 1]")
        if self.count <= 0:
            raise ValueError("count must be positive")


@dataclasses.dataclass
class TransactionClass:
    """A transaction type with a relative frequency."""

    name: str
    weight: float
    accesses: List[AccessSpec]
    #: Preferred node for affinity routing (None = spread round-robin).
    affinity_node: Optional[int] = None

    def __post_init__(self):
        if self.weight <= 0:
            raise ValueError("weight must be positive")
        if not self.accesses:
            raise ValueError("a transaction class needs at least one access")


@dataclasses.dataclass
class SyntheticWorkloadSpec:
    """Complete description of a synthetic workload."""

    partitions: List[PartitionSpec]
    classes: List[TransactionClass]

    def build_database(self) -> Database:
        return Database(
            [
                Partition(
                    spec.name,
                    index=index,
                    num_pages=spec.num_pages,
                    blocking_factor=spec.blocking_factor,
                    lockable=spec.lockable,
                    disks=spec.disks,
                )
                for index, spec in enumerate(self.partitions)
            ]
        )

    def class_by_name(self, name: str) -> TransactionClass:
        for cls in self.classes:
            if cls.name == name:
                return cls
        raise KeyError(name)


class SyntheticGenerator:
    """Generates transactions according to a workload spec."""

    def __init__(self, spec: SyntheticWorkloadSpec, database: Database, stream: Stream):
        self.spec = spec
        self.database = database
        self.stream = stream
        self._next_id = 0
        self._cumulative: List[float] = []
        total = 0.0
        for cls in spec.classes:
            total += cls.weight
            self._cumulative.append(total)
        self._zipf_tables: Dict[tuple, List[float]] = {}
        self.generated_per_class = [0] * len(spec.classes)

    def _pick_class(self) -> int:
        index = self.stream.weighted_index(self._cumulative)
        return min(index, len(self.spec.classes) - 1)

    def _zipf_table(self, partition_index: int, universe: int, theta: float):
        key = (partition_index, universe, theta)
        table = self._zipf_tables.get(key)
        if table is None:
            table = zipf_weights(universe, theta)
            self._zipf_tables[key] = table
        return table

    def _draw_page(self, access: AccessSpec) -> PageId:
        partition = self.database[access.partition]
        universe = max(1, int(partition.num_pages * access.hot_fraction))
        if access.distribution == "zipf":
            table = self._zipf_table(partition.index, universe, access.zipf_theta)
            page_no = min(self.stream.weighted_index(table), universe - 1)
        else:
            page_no = self.stream.randint(0, universe - 1)
        return partition.page_id(page_no)

    def next_transaction(self) -> Transaction:
        class_index = self._pick_class()
        cls = self.spec.classes[class_index]
        self.generated_per_class[class_index] += 1
        accesses: List[PageAccess] = []
        for access_spec in cls.accesses:
            if access_spec.fixed_count:
                count = max(1, int(round(access_spec.count)))
            else:
                count = self.stream.geometric(1.0 / max(1.0, access_spec.count))
            partition = self.database[access_spec.partition]
            for _ in range(count):
                write = access_spec.write_probability > 0 and self.stream.bernoulli(
                    access_spec.write_probability
                )
                accesses.append(
                    PageAccess(
                        self._draw_page(access_spec),
                        write=write,
                        lockable=partition.lockable,
                    )
                )
        self._next_id += 1
        return Transaction(self._next_id, accesses, type_id=class_index)
