"""Debit-credit transaction generator (section 3.1).

Each transaction:

* randomly selects a BRANCH;
* randomly selects a TELLER of that branch;
* selects an ACCOUNT of the same branch with probability 85 %, of a
  uniformly chosen *other* branch otherwise (TPC requirement);
* appends one HISTORY record (sequential file, no locks).

All transactions reference the record types in the same order --
ACCOUNT first, then HISTORY, with the small, hot TELLER and BRANCH
records last to keep their lock holding times short -- so no deadlocks
can occur.  All four record accesses are updates.
"""

from __future__ import annotations


from repro.db.debitcredit import DebitCreditLayout
from repro.node.transaction_manager import HISTORY_APPEND
from repro.sim.rng import Stream
from repro.workload.transaction import PageAccess, Transaction

__all__ = ["DebitCreditGenerator"]


class DebitCreditGenerator:
    """Generates debit-credit transactions over a scaled database."""

    def __init__(self, layout: DebitCreditLayout, stream: Stream):
        self.layout = layout
        self.stream = stream
        self._next_id = 0

    def next_transaction(self) -> Transaction:
        layout = self.layout
        stream = self.stream
        branch = stream.randint(0, layout.total_branches - 1)
        teller_index = stream.randint(0, layout.config.tellers_per_branch - 1)
        account = self._select_account(branch)
        accesses = [
            PageAccess(layout.account_page(account), write=True),
            PageAccess(
                (layout.history.index, HISTORY_APPEND),
                write=True,
                lockable=False,
                append=True,
            ),
            PageAccess(layout.teller_page(branch, teller_index), write=True),
            PageAccess(layout.branch_teller_page(branch), write=True),
        ]
        self._next_id += 1
        return Transaction(self._next_id, accesses, type_id=0, branch=branch)

    def _select_account(self, branch: int) -> int:
        layout = self.layout
        stream = self.stream
        local = stream.bernoulli(layout.config.account_local_probability)
        if local or layout.total_branches == 1:
            home = branch
        else:
            # Uniformly choose a *different* branch.
            home = stream.randint(0, layout.total_branches - 2)
            if home >= branch:
                home += 1
        offset = stream.randint(0, layout.accounts_per_branch - 1)
        return home * layout.accounts_per_branch + offset
