"""Shared exception types of the model."""

from __future__ import annotations

from repro.db.pages import CoherencyError

__all__ = [
    "CoherencyError",
    "NodeCrashed",
    "TransactionAborted",
    "BufferFullError",
    "UtilizationTargetError",
]


class UtilizationTargetError(Exception):
    """The utilization target of a throughput search is unreachable.

    Raised by :func:`repro.system.runner.find_throughput_at_utilization`
    when the binary search collapses onto a boundary of ``rate_bounds``
    with every probe on the same side of the target: no arrival rate
    inside the bounds can produce the requested utilization.  Carries
    the closest result observed so callers can still inspect it.
    """

    def __init__(self, message: str, best=None):
        super().__init__(message)
        self.best = best


class TransactionAborted(Exception):
    """A transaction was chosen as a deadlock victim and must restart.

    Raised at the ``yield`` where the transaction was blocked; the
    transaction manager catches it, releases all resources and retries
    the transaction after a back-off.
    """

    def __init__(self, txn_id: int, reason: str = "deadlock"):
        super().__init__(f"transaction {txn_id} aborted ({reason})")
        self.txn_id = txn_id
        self.reason = reason


class NodeCrashed(Exception):
    """The process's node crashed under fault injection.

    Raised inside every process running on a crashed node (transaction
    lifecycles, message handlers) at its current ``yield``; cleanup
    handlers unwind as usual so resource state stays consistent.  The
    transaction manager swallows it -- the work died with the node and
    is *not* restarted (unlike :class:`TransactionAborted`).

    ``unhandled_ok`` tells the simulation kernel that a process failing
    with this exception terminated cleanly: killed handler processes
    have no waiters, and their death must not surface as an unhandled
    simulation error.
    """

    unhandled_ok = True

    def __init__(self, node_id: int):
        super().__init__(f"node {node_id} crashed")
        self.node_id = node_id


class BufferFullError(Exception):
    """No evictable (unpinned) frame exists in a database buffer.

    Indicates a mis-configured run: the buffer must be large enough to
    pin the pages of all concurrently active transactions (the model
    uses a no-steal policy; see DESIGN.md).
    """
