"""RNG rules: stream discipline for reproducible randomness.

Every random draw in the simulator must come from a *named,
per-purpose* stream (:meth:`repro.sim.rng.StreamRegistry.stream`):
the name feeds a seed derivation, so adding a consumer never perturbs
the draws of existing ones, and replicates are bit-identical however
the sweep is parallelised.

* **RNG001** -- a raw generator is constructed outside the stream
  layer: ``random.Random(...)`` / ``SystemRandom`` or a direct
  ``Stream(...)`` call.  Ad-hoc generators either share global state
  or invent seeds, both of which break cross-run identity.  (The
  module that *defines* ``Stream``/``StreamRegistry`` is exempt -- it
  is the stream layer.)
* **RNG002** -- a stream draw sits inside a conditional guarded by
  cross-replicate state (worker counts, environment variables, host
  identity).  Even though the draw itself is seeded, making *whether*
  it happens depend on ``--jobs`` desynchronises the stream between
  ``--jobs 1`` and ``--jobs 4`` runs -- the exact class of bug the
  per-purpose streams exist to prevent.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from repro.lint.findings import Finding

__all__ = ["RngAnalyzer"]

#: Draw methods of repro.sim.rng.Stream (and the bound expovariate).
_DRAW_METHODS = {
    "random",
    "uniform",
    "exponential",
    "expovariate",
    "randint",
    "choice",
    "shuffle",
    "bernoulli",
    "weighted_index",
    "geometric",
    "zipf",
}

#: Identifier fragments that mark a value as cross-replicate state:
#: process/worker topology, environment, host identity -- anything
#: that differs between a ``--jobs 1`` and a ``--jobs 4`` run of the
#: same replicate.
_REPLICATE_VARIANT_FRAGMENTS = (
    "jobs",
    "worker",
    "nproc",
    "cpu_count",
    "environ",
    "getenv",
    "getpid",
    "hostname",
    "thread",
)


def _terminal_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _mentions_stream(node: ast.AST) -> bool:
    """Does the receiver expression look like a stream/rng object?"""
    for sub in ast.walk(node):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None:
            lowered = name.lower()
            if "stream" in lowered or "rng" in lowered or lowered == "rnd":
                return True
    return False


def _is_replicate_variant(test: ast.AST) -> bool:
    for sub in ast.walk(test):
        name = None
        if isinstance(sub, ast.Name):
            name = sub.id
        elif isinstance(sub, ast.Attribute):
            name = sub.attr
        if name is not None:
            lowered = name.lower()
            if any(frag in lowered for frag in _REPLICATE_VARIANT_FRAGMENTS):
                return True
    return False


class RngAnalyzer(ast.NodeVisitor):
    """Emit RNG findings for one module."""

    def __init__(self, path: str, tree: ast.AST):
        self.path = path
        self.tree = tree
        self.findings: List[Finding] = []
        self.module_aliases: Dict[str, str] = {}
        self.random_imports: Dict[str, str] = {}  # local name -> random member
        #: Local aliases of bound stream draw methods
        #: (``rnd = cpu.stream._rng.random``).
        self.draw_aliases: Dict[str, str] = {}
        #: The stream layer itself is exempt from RNG001.
        self.defines_stream_layer = any(
            isinstance(node, ast.ClassDef)
            and node.name in {"Stream", "StreamRegistry"}
            for node in ast.walk(tree)
        )
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def run(self) -> List[Finding]:
        self.visit(self.tree)
        self.findings.sort()
        return self.findings

    def _flag(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(
            Finding(
                self.path,
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", 0),
                rule,
                message,
            )
        )

    # -- imports and aliases --------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                alias.name.split(".")[0]
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                self.random_imports[alias.asname or alias.name] = alias.name
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        if (
            len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Attribute)
            and node.value.attr in _DRAW_METHODS
            and _mentions_stream(node.value)
        ):
            self.draw_aliases[node.targets[0].id] = node.value.attr
        self.generic_visit(node)

    # -- RNG001 / RNG002 ------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_raw_generator(node)
        self._check_guarded_draw(node)
        self.generic_visit(node)

    def _check_raw_generator(self, node: ast.Call) -> None:
        if self.defines_stream_layer:
            return
        func = node.func
        constructed: Optional[str] = None
        if isinstance(func, ast.Attribute):
            module = self.module_aliases.get(
                func.value.id if isinstance(func.value, ast.Name) else ""
            )
            if module == "random" and func.attr in {"Random", "SystemRandom"}:
                constructed = f"random.{func.attr}"
        elif isinstance(func, ast.Name):
            member = self.random_imports.get(func.id)
            if member in {"Random", "SystemRandom"}:
                constructed = f"random.{member}"
            elif func.id == "Stream":
                constructed = "Stream"
        if constructed is not None:
            self._flag(
                node,
                "RNG001",
                f"raw generator construction ({constructed}(...)); draw "
                "from a named per-purpose stream via "
                "StreamRegistry.stream(name) so seed derivation stays "
                "centralised",
            )

    def _check_guarded_draw(self, node: ast.Call) -> None:
        func = node.func
        is_draw = False
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _DRAW_METHODS
            and _mentions_stream(func.value)
        ):
            is_draw = True
        elif isinstance(func, ast.Name) and func.id in self.draw_aliases:
            is_draw = True
        if not is_draw:
            return
        current: Optional[ast.AST] = node
        while current is not None:
            parent = self._parents.get(current)
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
            if isinstance(parent, (ast.If, ast.While)) and (
                current in parent.body or current in parent.orelse
            ):
                if _is_replicate_variant(parent.test):
                    self._flag(
                        node,
                        "RNG002",
                        "stream draw guarded by cross-replicate state: "
                        "whether this draw happens depends on worker/"
                        "host configuration, desynchronising the stream "
                        "between --jobs 1 and --jobs N runs",
                    )
                    return
            current = parent
