"""Finding baselines: adopt ``simlint`` on a codebase incrementally.

A baseline file records the *accepted* findings of a tree so that CI
can fail on **new** findings only.  Entries are keyed on ``(path,
rule, message)`` with an occurrence count -- deliberately *not* on
line numbers, which shift with every unrelated edit.  A finding is
"new" when its key's count in the current report exceeds the baselined
count; fixing occurrences never makes unrelated ones new.

Workflow::

    simlint src tests --baseline .simlint-baseline.json            # check
    simlint src tests --baseline .simlint-baseline.json --baseline-update

The update form rewrites the file from the current findings (dropping
entries that no longer occur, so the baseline only ever shrinks unless
explicitly re-accepted).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.lint.findings import Finding

__all__ = ["Baseline", "BASELINE_SCHEMA_VERSION"]

#: Bumped whenever the baseline file layout changes incompatibly.
BASELINE_SCHEMA_VERSION = 1

_Key = Tuple[str, str, str]  # (path, rule, message)


class Baseline:
    """Accepted finding counts keyed on ``(path, rule, message)``."""

    def __init__(self, counts: Dict[_Key, int]):
        self._counts = counts

    # -- construction ----------------------------------------------------

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: Dict[_Key, int] = {}
        for finding in findings:
            key = (finding.path, finding.rule, finding.message)
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file; raises ``ValueError`` on a bad schema."""
        document = json.loads(path.read_text(encoding="utf-8"))
        version = document.get("version")
        if version != BASELINE_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported baseline schema version {version!r} in {path} "
                f"(expected {BASELINE_SCHEMA_VERSION})"
            )
        counts: Dict[_Key, int] = {}
        for entry in document.get("entries", []):
            key = (entry["path"], entry["rule"], entry["message"])
            count = int(entry.get("count", 1))
            if count < 1:
                raise ValueError(f"non-positive count in baseline entry {entry!r}")
            counts[key] = counts.get(key, 0) + count
        return cls(counts)

    # -- persistence -----------------------------------------------------

    def save(self, path: Path) -> None:
        """Write the baseline (sorted entries; byte-stable across runs)."""
        entries = [
            {"path": p, "rule": r, "message": m, "count": count}
            for (p, r, m), count in sorted(self._counts.items())
        ]
        document = {"version": BASELINE_SCHEMA_VERSION, "entries": entries}
        path.write_text(json.dumps(document, indent=2) + "\n", encoding="utf-8")

    # -- filtering -------------------------------------------------------

    def __len__(self) -> int:
        return sum(self._counts.values())

    def filter_new(self, findings: Iterable[Finding]) -> List[Finding]:
        """The findings not covered by the baseline.

        Findings sharing a key consume the baselined count in report
        order (path, line, col): the *earliest* occurrences are the
        accepted ones, so a newly added duplicate further down the
        file surfaces while the original stays baselined.
        """
        remaining = dict(self._counts)
        new: List[Finding] = []
        for finding in sorted(findings):
            key = (finding.path, finding.rule, finding.message)
            left = remaining.get(key, 0)
            if left > 0:
                remaining[key] = left - 1
            else:
                new.append(finding)
        return new
