"""``simlint`` command line interface (also ``python -m repro.lint``).

Exit codes: 0 clean, 1 findings reported, 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint.findings import render_json, render_text
from repro.lint.rules import RULES, is_known_rule
from repro.lint.runner import lint_paths

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description=(
            "Determinism & protocol-safety static analysis for the "
            "simulator (see docs/LINTING.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report (stable schema, for CI)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to report exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to drop from the report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _split_rules(raw: Optional[str], parser: argparse.ArgumentParser) -> Optional[List[str]]:
    if raw is None:
        return None
    rules = [r.strip() for r in raw.split(",") if r.strip()]
    unknown = [r for r in rules if not is_known_rule(r)]
    if unknown:
        parser.error(f"unknown rule id(s): {', '.join(unknown)}")
    return rules


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.id}  {rule.summary}")
            print(f"        {rule.rationale}")
        return 0
    select = _split_rules(args.select, parser)
    ignore = _split_rules(args.ignore, parser)
    paths = args.paths or ["src/repro"]
    try:
        findings, files_scanned = lint_paths(paths, select=select, ignore=ignore)
    except (FileNotFoundError, OSError) as exc:
        print(f"simlint: error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(render_json(findings, files_scanned))
    elif findings:
        print(render_text(findings))
        print(
            f"\nsimlint: {len(findings)} finding(s) in {files_scanned} file(s)",
            file=sys.stderr,
        )
    else:
        print(f"simlint: clean ({files_scanned} file(s))", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
