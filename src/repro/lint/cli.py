"""``simlint`` command line interface (also ``python -m repro.lint``).

Exit codes: 0 clean, 1 findings reported, 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.autofix import fix_paths
from repro.lint.baseline import Baseline
from repro.lint.findings import render_json, render_text
from repro.lint.rules import RULES, is_known_rule
from repro.lint.runner import lint_paths

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="simlint",
        description=(
            "Determinism & protocol-safety static analysis for the "
            "simulator (see docs/LINTING.md)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit a machine-readable JSON report (stable schema, for CI)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to report exclusively",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to drop from the report",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="report only findings not recorded in this baseline file",
    )
    parser.add_argument(
        "--baseline-update",
        action="store_true",
        help="rewrite --baseline FILE from the current findings and exit 0",
    )
    parser.add_argument(
        "--fix",
        action="store_true",
        help="apply mechanical autofixes (DET001, SUP001) in place, then lint",
    )
    return parser


def _split_rules(raw: Optional[str], parser: argparse.ArgumentParser) -> Optional[List[str]]:
    if raw is None:
        return None
    rules = [r.strip() for r in raw.split(",") if r.strip()]
    unknown = [r for r in rules if not is_known_rule(r)]
    if unknown:
        parser.error(f"unknown rule id(s): {', '.join(unknown)}")
    return rules


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in RULES.values():
            print(f"{rule.id}  {rule.summary}")
            print(f"        {rule.rationale}")
        return 0
    if args.baseline_update and not args.baseline:
        parser.error("--baseline-update requires --baseline FILE")
    select = _split_rules(args.select, parser)
    ignore = _split_rules(args.ignore, parser)
    paths = args.paths or ["src/repro"]
    if args.fix:
        try:
            changed = fix_paths(paths)
        except (FileNotFoundError, OSError) as exc:
            print(f"simlint: error: {exc}", file=sys.stderr)
            return 2
        for path, count in sorted(changed.items()):
            print(f"simlint: fixed {count} finding(s) in {path}", file=sys.stderr)
    try:
        findings, files_scanned = lint_paths(paths, select=select, ignore=ignore)
    except (FileNotFoundError, OSError) as exc:
        print(f"simlint: error: {exc}", file=sys.stderr)
        return 2
    if args.baseline:
        baseline_path = Path(args.baseline)
        if args.baseline_update:
            Baseline.from_findings(findings).save(baseline_path)
            print(
                f"simlint: baseline {baseline_path} updated "
                f"({len(findings)} finding(s))",
                file=sys.stderr,
            )
            return 0
        if baseline_path.exists():
            try:
                baseline = Baseline.load(baseline_path)
            except (ValueError, KeyError, json.JSONDecodeError) as exc:
                print(f"simlint: error: bad baseline: {exc}", file=sys.stderr)
                return 2
            findings = baseline.filter_new(findings)
    if args.json:
        print(render_json(findings, files_scanned))
    elif findings:
        print(render_text(findings))
        print(
            f"\nsimlint: {len(findings)} finding(s) in {files_scanned} file(s)",
            file=sys.stderr,
        )
    else:
        print(f"simlint: clean ({files_scanned} file(s))", file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
