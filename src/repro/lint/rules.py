"""Rule catalog for ``simlint``.

Every rule carries a structured identifier, a one-line summary and the
rationale that ties it to the repository's determinism guarantee (see
docs/LINTING.md for the full catalog and the suppression policy).

Rule identifiers are grouped by family:

* ``DET0xx`` -- nondeterminism hazards (ordering, wall clock, global
  randomness) that can break byte-identical reproduction across seeds,
  job counts and fresh interpreters.
* ``SIM0xx`` -- simulation-protocol safety (resource leaks, span stack
  corruption, heap tie-break hazards).
* ``SUP0xx`` -- problems with suppression comments themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Rule", "RULES", "is_known_rule"]


@dataclass(frozen=True)
class Rule:
    """One lint rule: identifier, summary and rationale."""

    id: str
    summary: str
    rationale: str


_RULE_LIST = [
    Rule(
        "DET001",
        "iteration over an unordered collection",
        "Iterating a set (or an OS-ordered listing such as os.listdir or "
        "glob) feeds arbitrary, process-dependent ordering into event "
        "scheduling, message delivery or victim selection.  Wrap the "
        "iterable in sorted() with a total-order key, or use an "
        "insertion-ordered dict.",
    ),
    Rule(
        "DET002",
        "wall clock, global randomness, or id()-based ordering",
        "The global random module, time.time/perf_counter, uuid and "
        "id()-keyed ordering differ across interpreters and runs.  Model "
        "code must draw from the seeded sim.rng streams and order by "
        "explicit sequence numbers.",
    ),
    Rule(
        "DET003",
        "float accumulation over an unordered iterable",
        "sum() of floats is not associative: summing over a set (or other "
        "unordered source) makes the total depend on iteration order.  "
        "Sort the iterable first, or use math.fsum for an exact, "
        "order-independent sum.",
    ),
    Rule(
        "SIM001",
        "Resource request without cancel/release on every exit path",
        "A process torn off a pending Resource.request() (deadlock abort, "
        "node crash) must cancel it; otherwise a later release grants the "
        "unit to a dead event and it leaks forever.  Guard the grant wait "
        "with try/except cancel (Resource.grab) and the hold with "
        "try/finally release (Resource.acquire does both).",
    ),
    Rule(
        "SIM002",
        "PhaseRecorder span used without a with-statement",
        "A span pushed outside a with-statement is not popped when an "
        "exception unwinds the process, corrupting the span stack and the "
        "response-time breakdown.  Always use `with recorder.span(...)`.",
    ),
    Rule(
        "SIM003",
        "heap entry without a total-order tie-break key",
        "heapq compares tuple elements left to right; a tuple ending in an "
        "arbitrary object with no unique sequence number before it falls "
        "back to object comparison on timestamp ties -- a TypeError at "
        "best, id()-dependent ordering at worst.  Put a monotonic sequence "
        "number before any non-comparable element.",
    ),
    Rule(
        "SUP001",
        "malformed simlint suppression",
        "A `# simlint: disable=...` comment must name known rule ids and "
        "carry a justification after ` -- `.  A malformed suppression is "
        "reported and does not suppress anything.",
    ),
]

#: rule id -> Rule, in catalog order.
RULES: Dict[str, Rule] = {rule.id: rule for rule in _RULE_LIST}


def is_known_rule(rule_id: str) -> bool:
    return rule_id in RULES
