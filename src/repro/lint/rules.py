"""Rule catalog for ``simlint``.

Every rule carries a structured identifier, a one-line summary and the
rationale that ties it to the repository's determinism guarantee (see
docs/LINTING.md for the full catalog and the suppression policy).

Rule identifiers are grouped by family:

* ``DET0xx`` -- nondeterminism hazards (ordering, wall clock, global
  randomness) that can break byte-identical reproduction across seeds,
  job counts and fresh interpreters.
* ``SIM0xx`` -- simulation-protocol safety (resource leaks, span stack
  corruption, heap tie-break hazards).
* ``RES0xx`` -- path-sensitive resource-obligation tracking over the
  control-flow graph (acquisitions whose release is not guaranteed on
  every path, including interrupt/exception edges; double release).
* ``MSG0xx`` -- cross-file protocol conformance against the
  ``WIRE_FORMATS`` declaration in ``repro.cc.messages`` (unknown
  kinds, payload shape, handler coverage).
* ``RNG0xx`` -- stream discipline (raw generator construction,
  replicate-variant guarded draws).
* ``SUP0xx`` -- problems with suppression comments themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["Rule", "RULES", "is_known_rule"]


@dataclass(frozen=True)
class Rule:
    """One lint rule: identifier, summary and rationale."""

    id: str
    summary: str
    rationale: str


_RULE_LIST = [
    Rule(
        "DET001",
        "iteration over an unordered collection",
        "Iterating a set (or an OS-ordered listing such as os.listdir or "
        "glob) feeds arbitrary, process-dependent ordering into event "
        "scheduling, message delivery or victim selection.  Wrap the "
        "iterable in sorted() with a total-order key, or use an "
        "insertion-ordered dict.",
    ),
    Rule(
        "DET002",
        "wall clock, global randomness, or id()-based ordering",
        "The global random module, time.time/perf_counter, uuid and "
        "id()-keyed ordering differ across interpreters and runs.  Model "
        "code must draw from the seeded sim.rng streams and order by "
        "explicit sequence numbers.",
    ),
    Rule(
        "DET003",
        "float accumulation over an unordered iterable",
        "sum() of floats is not associative: summing over a set (or other "
        "unordered source) makes the total depend on iteration order.  "
        "Sort the iterable first, or use math.fsum for an exact, "
        "order-independent sum.",
    ),
    Rule(
        "SIM001",
        "Resource request without cancel/release on every exit path",
        "A process torn off a pending Resource.request() (deadlock abort, "
        "node crash) must cancel it; otherwise a later release grants the "
        "unit to a dead event and it leaks forever.  Guard the grant wait "
        "with try/except cancel (Resource.grab) and the hold with "
        "try/finally release (Resource.acquire does both).",
    ),
    Rule(
        "SIM002",
        "PhaseRecorder span used without a with-statement",
        "A span pushed outside a with-statement is not popped when an "
        "exception unwinds the process, corrupting the span stack and the "
        "response-time breakdown.  Always use `with recorder.span(...)`.",
    ),
    Rule(
        "SIM003",
        "heap entry without a total-order tie-break key",
        "heapq compares tuple elements left to right; a tuple ending in an "
        "arbitrary object with no unique sequence number before it falls "
        "back to object comparison on timestamp ties -- a TypeError at "
        "best, id()-dependent ordering at worst.  Put a monotonic sequence "
        "number before any non-comparable element.",
    ),
    Rule(
        "RES001",
        "resource obligation not cancelled on every path",
        "hold()/held_chain()/hold_seq()/request() return an entry that "
        "must either complete (yield it) or be cancelled.  A path -- "
        "including the interrupt thrown into a suspension point by a "
        "deadlock abort or node crash -- that escapes the function while "
        "the entry is pending leaks the queued unit forever.  Guard the "
        "wait with try/except BaseException: cancel; raise.",
    ),
    Rule(
        "RES002",
        "held resource not released on every path",
        "After yield from grab() (or a completed request() wait) the unit "
        "is held; every exit from the function -- normal or exceptional -- "
        "must release() it.  A missing release on an exception path "
        "shrinks the resource's capacity for the rest of the run, "
        "silently serialising the simulated system.  Use try/finally.",
    ),
    Rule(
        "RES003",
        "double release of a resource obligation",
        "Releasing or cancelling an obligation that is already discharged "
        "on every incoming path grants a unit that was never acquired, "
        "inflating capacity and corrupting queue accounting.  Release "
        "exactly once; idempotent multi-owner teardown belongs in "
        "abort_release, which re-checks ownership before each pop.",
    ),
    Rule(
        "MSG001",
        "undeclared message kind",
        "Every message kind must be declared in WIRE_FORMATS "
        "(repro.cc.messages) with its payload TypedDict and receivers.  "
        "Sending an undeclared kind raises in the dispatcher at "
        "simulation time; registering a handler for one is dead code "
        "hiding a misspelling.",
    ),
    Rule(
        "MSG002",
        "payload does not match the declared wire format",
        "A send payload is checked field-by-field against the kind's "
        "TypedDict: a missing required field is a KeyError in the "
        "handler at simulation time, an unknown field is a silent "
        "protocol drift, and a mis-annotated payload type defeats mypy's "
        "checking at the construction site.",
    ),
    Rule(
        "MSG003",
        "handler coverage drift",
        "WIRE_FORMATS declares which protocol classes receive each kind.  "
        "A declared receiver that never registers the handler turns the "
        "first such message into a RuntimeError mid-simulation; a "
        "handler registered by an undeclared class means the declaration "
        "no longer describes the protocol.  Keep both in sync.",
    ),
    Rule(
        "RNG001",
        "raw random generator constructed outside the stream layer",
        "random.Random()/Stream() built ad hoc either shares global "
        "state or invents a seed, breaking the derive-seed discipline "
        "that keeps replicates bit-identical across job counts.  Draw "
        "from a named stream via StreamRegistry.stream(name).",
    ),
    Rule(
        "RNG002",
        "stream draw guarded by cross-replicate state",
        "A draw inside a conditional on worker count, environment or "
        "host identity desynchronises the stream between --jobs 1 and "
        "--jobs N runs even though every draw is seeded: the *number* "
        "of draws differs.  Hoist the draw out of the guard or give the "
        "conditional code its own named stream.",
    ),
    Rule(
        "SUP001",
        "malformed simlint suppression",
        "A `# simlint: disable=...` comment must name known rule ids and "
        "carry a justification after ` -- `.  A malformed suppression is "
        "reported and does not suppress anything.",
    ),
]

#: rule id -> Rule, in catalog order.
RULES: Dict[str, Rule] = {rule.id: rule for rule in _RULE_LIST}


def is_known_rule(rule_id: str) -> bool:
    return rule_id in RULES
